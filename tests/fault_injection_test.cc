#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "datagen/tpch.h"
#include "deployer/deployer.h"
#include "deployer/sql_generator.h"
#include "docstore/document_store.h"
#include "integrator/design_integrator.h"
#include "interpreter/interpreter.h"
#include "ontology/tpch_ontology.h"
#include "storage/sql.h"

namespace quarry {
namespace {

using deployer::Deployer;
using deployer::DeploymentOutcome;
using deployer::DeployOptions;
using fault::Injector;
using fault::SiteConfig;
using interpreter::Interpreter;
using req::InformationRequirement;

/// The fault matrix runs the full transactional deployment scenario — DDL,
/// ETL, integrity check, metadata record — against a TPC-H source, once per
/// discovered fault site, and asserts the robustness contract of
/// docs/ROBUSTNESS.md: a transient fault is absorbed by retries, an
/// unrecoverable one rolls the target database AND the metadata store back
/// bit-identically to their pre-deploy snapshots.
class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest()
      : onto_(ontology::BuildTpchOntology()),
        mapping_(ontology::BuildTpchMappings()),
        interpreter_(&onto_, &mapping_) {
    EXPECT_TRUE(datagen::PopulateTpch(&src_, {0.005, 23}).ok());
    auto design = interpreter_.Interpret(RevenueIr());
    EXPECT_TRUE(design.ok()) << design.status();
    design_ = std::move(*design);
  }

  void TearDown() override {
    Injector::Instance().Disable();
    Injector::Instance().ClearConfigs();
  }

  static InformationRequirement RevenueIr() {
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    return ir;
  }

  /// A metadata store with pre-existing content, so a rollback that merely
  /// cleared it would be caught by the fingerprint comparison.
  static docstore::DocumentStore SeededMetadata() {
    docstore::DocumentStore meta;
    json::Object doc;
    doc.emplace_back("_id", json::Value("onto"));
    doc.emplace_back("kind", json::Value("ontology"));
    EXPECT_TRUE(meta.GetOrCreate("ontologies")
                    ->Upsert("onto", json::Value(std::move(doc)))
                    .ok());
    return meta;
  }

  /// Gives the target a pre-existing table, so rollback must restore
  /// content, not just drop what the deployment created.
  static void SeedTarget(storage::Database* target) {
    storage::TableSchema schema("legacy");
    EXPECT_TRUE(
        schema.AddColumn({"id", storage::DataType::kInt64, false}).ok());
    storage::Table* table = *target->CreateTable(std::move(schema));
    EXPECT_TRUE(table->Insert({storage::Value::Int(7)}).ok());
  }

  DeploymentOutcome Deploy(storage::Database* target,
                           docstore::DocumentStore* meta,
                           DeployOptions options = {}) {
    options.metadata = meta;
    Deployer dep(&src_, target);
    auto outcome =
        dep.DeployTransactional(design_.schema, design_.flow, mapping_,
                                options);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return std::move(*outcome);
  }

  /// Runs the scenario once with injection enabled and no site configured:
  /// HitSites() then enumerates the deployment's entire fault surface.
  std::vector<std::string> DiscoverSites() {
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();
    Injector::Instance().ClearConfigs();
    Injector::Instance().Enable(/*seed=*/7);
    DeploymentOutcome outcome = Deploy(&target, &meta);
    EXPECT_TRUE(outcome.success);
    return Injector::Instance().HitSites();
  }

  ontology::Ontology onto_;
  ontology::SourceMapping mapping_;
  Interpreter interpreter_;
  storage::Database src_;
  interpreter::PartialDesign design_;
};

// ---------------------------------------------------------------------------
// Injector semantics.

TEST_F(FaultInjectionTest, TriggerSemantics) {
  Injector& inj = Injector::Instance();
  inj.Enable(1);
  inj.Configure("t", {.trigger_on_hit = 2});
  EXPECT_TRUE(fault::Check("t").ok());
  EXPECT_FALSE(fault::Check("t").ok());  // exactly the 2nd hit
  EXPECT_TRUE(fault::Check("t").ok());
  EXPECT_EQ(inj.FailureCount("t"), 1);

  inj.Configure("f", {.fail_from_hit = 3});
  EXPECT_TRUE(fault::Check("f").ok());
  EXPECT_TRUE(fault::Check("f").ok());
  EXPECT_FALSE(fault::Check("f").ok());  // every hit >= 3
  EXPECT_FALSE(fault::Check("f").ok());

  inj.Configure("capped", {.fail_from_hit = 1, .max_failures = 2});
  EXPECT_FALSE(fault::Check("capped").ok());
  EXPECT_FALSE(fault::Check("capped").ok());
  EXPECT_TRUE(fault::Check("capped").ok());  // cap reached

  // Unconfigured sites never fail but are still counted.
  EXPECT_TRUE(fault::Check("quiet").ok());
  EXPECT_EQ(inj.HitCount("quiet"), 1);

  inj.Disable();
  EXPECT_TRUE(fault::Check("f").ok() || true);  // macro path is a no-op
}

TEST_F(FaultInjectionTest, ProbabilityFaultsAreSeedDeterministic) {
  Injector& inj = Injector::Instance();
  inj.Configure("p", {.probability = 0.3});
  inj.Enable(99);
  for (int i = 0; i < 200; ++i) (void)fault::Check("p");
  std::vector<std::string> first = inj.FailureLog();
  EXPECT_GT(first.size(), 0u);
  EXPECT_LT(first.size(), 200u);

  inj.Enable(99);  // same seed, configs kept -> identical replay
  for (int i = 0; i < 200; ++i) (void)fault::Check("p");
  EXPECT_EQ(inj.FailureLog(), first);

  inj.Enable(100);  // different seed -> different sequence
  for (int i = 0; i < 200; ++i) (void)fault::Check("p");
  EXPECT_NE(inj.FailureLog(), first);
}

TEST_F(FaultInjectionTest, BackoffIsDeterministicExponentialWithJitter) {
  etl::RetryPolicy policy;
  policy.base_backoff_millis = 4.0;
  policy.max_backoff_millis = 64.0;
  policy.jitter_fraction = 0.5;
  policy.jitter_seed = 7;

  Prng a(policy.jitter_seed), b(policy.jitter_seed);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    double first = etl::RetryBackoffMillis(policy, attempt, &a);
    double second = etl::RetryBackoffMillis(policy, attempt, &b);
    EXPECT_DOUBLE_EQ(first, second);  // same seed -> same jitter
    double cap = std::min(4.0 * std::pow(2.0, attempt - 1), 64.0);
    EXPECT_GE(first, 0.5 * cap);  // jitter shrinks at most jitter_fraction
    EXPECT_LE(first, cap);
  }

  // Without jitter the schedule is exactly base * 2^(n-1), capped.
  policy.jitter_fraction = 0.0;
  Prng c(policy.jitter_seed);
  EXPECT_DOUBLE_EQ(etl::RetryBackoffMillis(policy, 1, &c), 4.0);
  EXPECT_DOUBLE_EQ(etl::RetryBackoffMillis(policy, 2, &c), 8.0);
  EXPECT_DOUBLE_EQ(etl::RetryBackoffMillis(policy, 5, &c), 64.0);
  EXPECT_DOUBLE_EQ(etl::RetryBackoffMillis(policy, 9, &c), 64.0);

  // A zero base disables sleeping but still consumes one draw per retry,
  // so enabling backoff later does not shift the fault sequence.
  policy.base_backoff_millis = 0.0;
  Prng d(11), e(11);
  EXPECT_DOUBLE_EQ(etl::RetryBackoffMillis(policy, 1, &d), 0.0);
  (void)e.UniformDouble();
  EXPECT_EQ(d.Next(), e.Next());
}

// ---------------------------------------------------------------------------
// Executor resilience.

TEST_F(FaultInjectionTest, ExecutionErrorsCarryNodeIdAndOperatorType) {
  Injector::Instance().Enable(1);
  Injector::Instance().Configure("etl.exec.Join", {.fail_from_hit = 1});

  storage::Database target;
  Deployer dep(&src_, &target);
  auto report = dep.Deploy(design_.schema, design_.flow, mapping_);
  ASSERT_FALSE(report.ok());
  std::string message = report.status().ToString();
  EXPECT_NE(message.find("node '"), std::string::npos) << message;
  EXPECT_NE(message.find("(Join)"), std::string::npos) << message;
  EXPECT_NE(message.find("deployment stage 'etl'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("injected fault at 'etl.exec.Join'"),
            std::string::npos)
      << message;
}

TEST_F(FaultInjectionTest, RetriesAbsorbTransientFaultAndReportIt) {
  Injector::Instance().Enable(2);
  Injector::Instance().Configure("etl.exec.Aggregation",
                                 {.trigger_on_hit = 1, .max_failures = 1});

  storage::Database target;
  SeedTarget(&target);
  docstore::DocumentStore meta = SeededMetadata();
  DeployOptions options;
  options.retry.max_attempts = 3;
  DeploymentOutcome outcome = Deploy(&target, &meta, options);
  ASSERT_TRUE(outcome.success);
  EXPECT_TRUE(outcome.report.etl.recovered);
  EXPECT_EQ(outcome.report.etl.retried_nodes.size(), 1u);
  EXPECT_GT(outcome.report.etl.attempts,
            static_cast<int64_t>(outcome.report.etl.nodes.size()));
  bool found = false;
  for (const etl::NodeStats& stats : outcome.report.etl.nodes) {
    if (stats.attempts > 1) {
      EXPECT_EQ(stats.type, etl::OpType::kAggregation);
      EXPECT_EQ(stats.attempts, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FaultInjectionTest, ResumeContinuesFromCheckpoint) {
  // Pre-create the warehouse schema, then fail the flow mid-way.
  storage::Database target;
  auto sql = deployer::GenerateSql(design_.schema, mapping_, src_);
  ASSERT_TRUE(sql.ok());
  ASSERT_TRUE(storage::ExecuteSql(&target, *sql).ok());

  // Reference: node count and loaded rows of a clean run.
  storage::Database reference;
  ASSERT_TRUE(storage::ExecuteSql(&reference, *sql).ok());
  etl::Executor ref_exec(&src_, &reference);
  auto clean = ref_exec.Run(design_.flow);
  ASSERT_TRUE(clean.ok()) << clean.status();

  Injector::Instance().Enable(3);
  Injector::Instance().Configure("etl.exec.Loader", {.fail_from_hit = 1});

  etl::Executor executor(&src_, &target);
  etl::Checkpoint checkpoint;
  auto failed = executor.Run(design_.flow, etl::RetryPolicy{}, &checkpoint);
  ASSERT_FALSE(failed.ok());
  ASSERT_TRUE(checkpoint.valid);
  EXPECT_FALSE(checkpoint.failed_node.empty());
  EXPECT_GT(checkpoint.completed.size(), 0u);
  EXPECT_GT(checkpoint.datasets.size(), 0u);

  // The fault clears; resuming runs only the remaining operators and the
  // final state matches the clean run.
  Injector::Instance().Disable();
  auto resumed = executor.Resume(design_.flow, &checkpoint);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->recovered);
  EXPECT_EQ(resumed->nodes.size() + (clean->nodes.size() -
                                     resumed->nodes.size()),
            clean->nodes.size());
  EXPECT_LT(resumed->nodes.size(), clean->nodes.size());
  EXPECT_EQ(resumed->loaded, clean->loaded);
  EXPECT_EQ(target.Fingerprint(), reference.Fingerprint());
}

// ---------------------------------------------------------------------------
// The fault matrix.

TEST_F(FaultInjectionTest, EverySiteRecoversFromOneTransientFault) {
  std::vector<std::string> sites = DiscoverSites();
  ASSERT_GT(sites.size(), 0u);
  // The deployment path exercises storage, ETL and docstore sites.
  std::set<std::string> surface(sites.begin(), sites.end());
  EXPECT_TRUE(surface.count("storage.sql.statement")) << sites.size();
  EXPECT_TRUE(surface.count("storage.database.create_table"));
  EXPECT_TRUE(surface.count("etl.exec.Loader.write"));
  EXPECT_TRUE(surface.count("docstore.collection.upsert"));

  for (const std::string& site : sites) {
    // Seed the stores before arming the injector: the setup's own writes
    // must not draw the fault meant for the deployment.
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();

    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure(site,
                                   {.trigger_on_hit = 1, .max_failures = 1});
    Injector::Instance().Enable(7);

    DeployOptions options;
    options.retry.max_attempts = 4;
    DeploymentOutcome outcome = Deploy(&target, &meta, options);
    EXPECT_TRUE(outcome.success) << "site " << site << ": "
                                 << (outcome.failure
                                         ? outcome.failure->cause.ToString()
                                         : "no failure");
    EXPECT_EQ(Injector::Instance().FailureCount(site), 1)
        << "fault at " << site << " never fired";
    EXPECT_TRUE(target.CheckReferentialIntegrity().ok()) << "site " << site;
  }
}

TEST_F(FaultInjectionTest, UnrecoverableFaultRollsBackByteIdentically) {
  std::vector<std::string> sites = DiscoverSites();
  ASSERT_GT(sites.size(), 0u);

  for (const std::string& site : sites) {
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();
    const uint64_t db_before = target.Fingerprint();
    const uint64_t meta_before = meta.Fingerprint();

    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure(site, {.fail_from_hit = 1});
    Injector::Instance().Enable(7);

    DeployOptions options;
    options.retry.max_attempts = 2;
    DeploymentOutcome outcome = Deploy(&target, &meta, options);
    ASSERT_FALSE(outcome.success) << "site " << site;
    ASSERT_TRUE(outcome.failure.has_value()) << "site " << site;
    EXPECT_TRUE(outcome.failure->rolled_back) << "site " << site;
    EXPECT_FALSE(outcome.failure->stage.empty()) << "site " << site;
    EXPECT_FALSE(outcome.failure->cause.ok()) << "site " << site;
    EXPECT_EQ(target.Fingerprint(), db_before)
        << "site " << site << " left the target modified (stage "
        << outcome.failure->stage << ")";
    EXPECT_EQ(meta.Fingerprint(), meta_before)
        << "site " << site << " left the metadata store modified";
  }
}

TEST_F(FaultInjectionTest, TenPercentFaultRateEverywhereStillDeploys) {
  std::vector<std::string> sites = DiscoverSites();
  ASSERT_GT(sites.size(), 0u);
  Injector::Instance().ClearConfigs();
  for (const std::string& site : sites) {
    Injector::Instance().Configure(site, {.probability = 0.1});
  }

  DeployOptions options;
  options.retry.max_attempts = 10;

  Injector::Instance().Disable();
  storage::Database target;
  SeedTarget(&target);
  docstore::DocumentStore meta = SeededMetadata();
  Injector::Instance().Enable(1234);
  DeploymentOutcome outcome = Deploy(&target, &meta, options);
  ASSERT_TRUE(outcome.success)
      << (outcome.failure ? outcome.failure->cause.ToString() : "");
  std::vector<std::string> log = Injector::Instance().FailureLog();
  EXPECT_GT(log.size(), 0u) << "faults never fired";
  EXPECT_TRUE(outcome.report.etl.recovered ||
              outcome.report.etl.retried_nodes.empty());
  EXPECT_GT(outcome.report.etl.loaded.at("fact_table_revenue"), 0);
  EXPECT_TRUE(target.CheckReferentialIntegrity().ok());

  // Same seed + same configs => the identical failure sequence, end to end.
  Injector::Instance().Disable();
  storage::Database target2;
  SeedTarget(&target2);
  docstore::DocumentStore meta2 = SeededMetadata();
  Injector::Instance().Enable(1234);
  DeploymentOutcome outcome2 = Deploy(&target2, &meta2, options);
  ASSERT_TRUE(outcome2.success);
  EXPECT_EQ(Injector::Instance().FailureLog(), log);
  EXPECT_EQ(target2.Fingerprint(), target.Fingerprint());
  EXPECT_EQ(meta2.Fingerprint(), meta.Fingerprint());
}

// ---------------------------------------------------------------------------
// Best-effort degraded mode.

TEST_F(FaultInjectionTest, BestEffortKeepsFullyLoadedTables) {
  // Count loader completions of a clean run, then make the LAST loader's
  // write fail permanently: every table except its own loads fully.
  std::vector<std::string> sites = DiscoverSites();
  const int64_t loader_writes =
      Injector::Instance().HitCount("etl.exec.Loader.write");
  ASSERT_GE(loader_writes, 2) << "scenario needs >= 2 loaders";

  Injector::Instance().ClearConfigs();
  Injector::Instance().Configure("etl.exec.Loader.write",
                                 {.fail_from_hit = loader_writes});
  Injector::Instance().Enable(5);

  storage::Database target;  // empty pre-deploy: rollback erases tables
  docstore::DocumentStore meta = SeededMetadata();
  DeployOptions options;
  options.best_effort = true;
  DeploymentOutcome outcome = Deploy(&target, &meta, options);

  ASSERT_FALSE(outcome.success);
  EXPECT_TRUE(outcome.partial);
  ASSERT_TRUE(outcome.failure.has_value());
  EXPECT_EQ(outcome.failure->stage, "etl");
  EXPECT_FALSE(outcome.failure->failed_node.empty());
  EXPECT_FALSE(outcome.failure->rolled_back);
  EXPECT_EQ(outcome.failure->kept_tables.size(),
            static_cast<size_t>(loader_writes - 1));
  // Only the kept tables survive; the half-loaded one was restored away.
  EXPECT_EQ(target.TableNames().size(), outcome.failure->kept_tables.size());
  for (const std::string& name : outcome.failure->kept_tables) {
    ASSERT_TRUE(target.HasTable(name)) << name;
    EXPECT_GT((*target.GetTable(name))->num_rows(), 0u) << name;
    EXPECT_GT(outcome.failure->rows_loaded.at(name), 0) << name;
  }
  // The deployment is recorded as partial in the metadata store.
  auto deployments = meta.Get("deployments");
  ASSERT_TRUE(deployments.ok());
  auto record = (*deployments)->Get("deployment");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->GetString("status"), "partial");
}

// ---------------------------------------------------------------------------
// The fault matrix under the wavefront scheduler (docs/ROBUSTNESS.md §8):
// identical contracts when the ETL stage runs with max_workers = 4.

/// Executor-owned fault sites: the ones a parallel ETL run can hit from
/// several workers at once. Deployer/storage/docstore sites run outside the
/// scheduler and are covered by the serial matrix above.
std::vector<std::string> ExecutorSites(const std::vector<std::string>& all) {
  std::vector<std::string> out;
  for (const std::string& site : all) {
    if (site.rfind("etl.exec.", 0) == 0) out.push_back(site);
  }
  return out;
}

TEST_F(FaultInjectionTest, ParallelEverySiteRecoversFromOneTransientFault) {
  std::vector<std::string> sites = ExecutorSites(DiscoverSites());
  ASSERT_GT(sites.size(), 0u);

  for (const std::string& site : sites) {
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();

    // Count-based triggers only: which worker draws the Nth hit varies,
    // but exactly one fault fires and must be absorbed by that worker's
    // retry loop regardless of who it is.
    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure(site,
                                   {.trigger_on_hit = 1, .max_failures = 1});
    Injector::Instance().Enable(7);

    DeployOptions options;
    options.retry.max_attempts = 4;
    options.exec.max_workers = 4;
    DeploymentOutcome outcome = Deploy(&target, &meta, options);
    EXPECT_TRUE(outcome.success) << "site " << site << ": "
                                 << (outcome.failure
                                         ? outcome.failure->cause.ToString()
                                         : "no failure");
    EXPECT_EQ(Injector::Instance().FailureCount(site), 1)
        << "fault at " << site << " never fired";
    EXPECT_TRUE(target.CheckReferentialIntegrity().ok()) << "site " << site;
  }
}

TEST_F(FaultInjectionTest, ParallelUnrecoverableFaultRollsBackByteIdentically) {
  std::vector<std::string> sites = ExecutorSites(DiscoverSites());
  ASSERT_GT(sites.size(), 0u);

  for (const std::string& site : sites) {
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();
    const uint64_t db_before = target.Fingerprint();
    const uint64_t meta_before = meta.Fingerprint();

    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure(site, {.fail_from_hit = 1});
    Injector::Instance().Enable(7);

    DeployOptions options;
    options.retry.max_attempts = 2;
    options.exec.max_workers = 4;
    DeploymentOutcome outcome = Deploy(&target, &meta, options);
    ASSERT_FALSE(outcome.success) << "site " << site;
    ASSERT_TRUE(outcome.failure.has_value()) << "site " << site;
    EXPECT_TRUE(outcome.failure->rolled_back) << "site " << site;
    // In-flight siblings drained before rollback; nothing they wrote may
    // survive, including half-written loader targets.
    EXPECT_EQ(target.Fingerprint(), db_before)
        << "site " << site << " left the target modified (stage "
        << outcome.failure->stage << ")";
    EXPECT_EQ(meta.Fingerprint(), meta_before)
        << "site " << site << " left the metadata store modified";
  }
}

TEST_F(FaultInjectionTest, ParallelKillAndResumeWithConcurrentSiblings) {
  // The parallel analogue of ResumeContinuesFromCheckpoint: a loader dies
  // while sibling branches are in flight. The drained siblings' work is
  // checkpointed, the resumed run (also parallel) executes strictly fewer
  // nodes, and the final warehouse is byte-identical to a clean serial run.
  storage::Database target;
  auto sql = deployer::GenerateSql(design_.schema, mapping_, src_);
  ASSERT_TRUE(sql.ok());
  ASSERT_TRUE(storage::ExecuteSql(&target, *sql).ok());

  storage::Database reference;
  ASSERT_TRUE(storage::ExecuteSql(&reference, *sql).ok());
  etl::Executor ref_exec(&src_, &reference);
  auto clean = ref_exec.Run(design_.flow);
  ASSERT_TRUE(clean.ok()) << clean.status();

  Injector::Instance().Enable(3);
  Injector::Instance().Configure("etl.exec.Loader.write",
                                 {.fail_from_hit = 1});

  etl::Executor executor(&src_, &target);
  etl::ExecOptions exec;
  exec.max_workers = 4;
  etl::Checkpoint checkpoint;
  auto failed =
      executor.Run(design_.flow, exec, etl::RetryPolicy{}, &checkpoint);
  ASSERT_FALSE(failed.ok());
  ASSERT_TRUE(checkpoint.valid);
  EXPECT_FALSE(checkpoint.failed_node.empty());
  EXPECT_GT(checkpoint.completed.size(), 0u);

  Injector::Instance().Disable();
  auto resumed =
      executor.Resume(design_.flow, exec, &checkpoint, etl::RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->recovered);
  EXPECT_LT(resumed->nodes.size(), clean->nodes.size());
  EXPECT_EQ(resumed->loaded, clean->loaded);
  EXPECT_EQ(target.Fingerprint(), reference.Fingerprint());
}

// ---------------------------------------------------------------------------
// The fault matrix under the vectorized chunk runtime (DESIGN.md §8): the
// chunked kernels keep the row path's per-operator fault sites and add a
// per-chunk one (`etl.exec.vec.chunk`), so the same transient/unrecoverable
// contracts must hold with ExecOptions::vectorized set — including a fault
// that fires mid-stream, after some chunks of a node already processed.

class VectorizedFaultTest : public FaultInjectionTest {
 protected:
  static deployer::DeployOptions VectorizedOptions() {
    deployer::DeployOptions options;
    options.exec.vectorized = true;
    options.exec.chunk_size = 32;  // many chunks per node at sf 0.005
    return options;
  }

  /// Fault surface of a vectorized deployment: the per-operator sites plus
  /// the per-chunk gate the row path does not have.
  std::vector<std::string> DiscoverVectorizedSites() {
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();
    Injector::Instance().ClearConfigs();
    Injector::Instance().Enable(/*seed=*/7);
    DeploymentOutcome outcome = Deploy(&target, &meta, VectorizedOptions());
    EXPECT_TRUE(outcome.success);
    return Injector::Instance().HitSites();
  }
};

TEST_F(VectorizedFaultTest, ChunkGateIsPartOfTheFaultSurface) {
  std::vector<std::string> sites = DiscoverVectorizedSites();
  std::set<std::string> surface(sites.begin(), sites.end());
  EXPECT_TRUE(surface.count("etl.exec.vec.chunk"));
  EXPECT_TRUE(surface.count("etl.exec.Loader.write"));
  // Many chunks flowed through the gate, not one per node.
  EXPECT_GT(Injector::Instance().HitCount("etl.exec.vec.chunk"),
            static_cast<int64_t>(design_.flow.num_nodes()));
}

TEST_F(VectorizedFaultTest, EverySiteRecoversFromOneTransientFault) {
  std::vector<std::string> sites = ExecutorSites(DiscoverVectorizedSites());
  ASSERT_GT(sites.size(), 0u);

  for (const std::string& site : sites) {
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();

    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure(site,
                                   {.trigger_on_hit = 1, .max_failures = 1});
    Injector::Instance().Enable(7);

    deployer::DeployOptions options = VectorizedOptions();
    options.retry.max_attempts = 4;
    DeploymentOutcome outcome = Deploy(&target, &meta, options);
    EXPECT_TRUE(outcome.success) << "site " << site << ": "
                                 << (outcome.failure
                                         ? outcome.failure->cause.ToString()
                                         : "no failure");
    EXPECT_EQ(Injector::Instance().FailureCount(site), 1)
        << "fault at " << site << " never fired";
    EXPECT_TRUE(target.CheckReferentialIntegrity().ok()) << "site " << site;
  }
}

TEST_F(VectorizedFaultTest, UnrecoverableFaultRollsBackByteIdentically) {
  std::vector<std::string> sites = ExecutorSites(DiscoverVectorizedSites());
  ASSERT_GT(sites.size(), 0u);

  for (const std::string& site : sites) {
    Injector::Instance().Disable();
    storage::Database target;
    SeedTarget(&target);
    docstore::DocumentStore meta = SeededMetadata();
    const uint64_t db_before = target.Fingerprint();
    const uint64_t meta_before = meta.Fingerprint();

    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure(site, {.fail_from_hit = 1});
    Injector::Instance().Enable(7);

    deployer::DeployOptions options = VectorizedOptions();
    options.retry.max_attempts = 2;
    DeploymentOutcome outcome = Deploy(&target, &meta, options);
    ASSERT_FALSE(outcome.success) << "site " << site;
    ASSERT_TRUE(outcome.failure.has_value()) << "site " << site;
    EXPECT_TRUE(outcome.failure->rolled_back) << "site " << site;
    EXPECT_EQ(target.Fingerprint(), db_before)
        << "site " << site << " left the target modified (stage "
        << outcome.failure->stage << ")";
    EXPECT_EQ(meta.Fingerprint(), meta_before)
        << "site " << site << " left the metadata store modified";
  }
}

TEST_F(VectorizedFaultTest, MidChunkTransientFaultRetriesTheWholeNode) {
  // The 3rd chunk-gate hit fails once: the node dies mid-stream with some
  // chunks already processed, rolls back to its input boundary, and the
  // retry replays it from the first chunk — absorbed, not surfaced.
  Injector::Instance().ClearConfigs();
  Injector::Instance().Configure("etl.exec.vec.chunk",
                                 {.trigger_on_hit = 3, .max_failures = 1});
  Injector::Instance().Enable(11);

  storage::Database target;
  SeedTarget(&target);
  docstore::DocumentStore meta = SeededMetadata();
  deployer::DeployOptions options = VectorizedOptions();
  options.retry.max_attempts = 3;
  DeploymentOutcome outcome = Deploy(&target, &meta, options);
  ASSERT_TRUE(outcome.success)
      << (outcome.failure ? outcome.failure->cause.ToString() : "");
  EXPECT_TRUE(outcome.report.etl.recovered);
  EXPECT_EQ(outcome.report.etl.retried_nodes.size(), 1u);
  EXPECT_EQ(Injector::Instance().FailureCount("etl.exec.vec.chunk"), 1);
}

TEST_F(VectorizedFaultTest, MidChunkFaultResumesFromChunkBoundaryCheckpoint) {
  // A permanent mid-stream chunk fault kills the run after upstream nodes
  // completed. Checkpoints are cut at chunk boundaries (the gate runs
  // between chunks), so the checkpoint holds every node that finished all
  // its chunks; the half-done node rolled back to its input boundary and
  // re-runs in full on resume — converging on the clean run's bytes.
  storage::Database target;
  auto sql = deployer::GenerateSql(design_.schema, mapping_, src_);
  ASSERT_TRUE(sql.ok());
  ASSERT_TRUE(storage::ExecuteSql(&target, *sql).ok());

  etl::ExecOptions exec;
  exec.vectorized = true;
  exec.chunk_size = 32;

  // Clean vectorized reference run with the injector armed but unconfigured:
  // its chunk-gate hit count tells us where the stream ends, so the fault
  // below can be pinned to the LAST gate hit — guaranteed mid-run (upstream
  // nodes complete) and guaranteed mid-stream of whatever node draws it.
  storage::Database reference;
  ASSERT_TRUE(storage::ExecuteSql(&reference, *sql).ok());
  etl::Executor ref_exec(&src_, &reference);
  Injector::Instance().ClearConfigs();
  Injector::Instance().Enable(13);
  auto clean = ref_exec.Run(design_.flow, exec, etl::RetryPolicy{}, nullptr);
  ASSERT_TRUE(clean.ok()) << clean.status();
  const int64_t gate_hits =
      Injector::Instance().HitCount("etl.exec.vec.chunk");
  ASSERT_GT(gate_hits, static_cast<int64_t>(design_.flow.num_nodes()));

  Injector::Instance().Configure("etl.exec.vec.chunk",
                                 {.fail_from_hit = gate_hits});
  Injector::Instance().Enable(13);  // reset counters, keep the config

  etl::Executor executor(&src_, &target);
  etl::Checkpoint checkpoint;
  auto failed =
      executor.Run(design_.flow, exec, etl::RetryPolicy{}, &checkpoint);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().ToString().find("etl.exec.vec.chunk"),
            std::string::npos)
      << failed.status();
  ASSERT_TRUE(checkpoint.valid);
  EXPECT_FALSE(checkpoint.failed_node.empty());
  EXPECT_GT(checkpoint.completed.size(), 0u);

  Injector::Instance().Disable();
  auto resumed =
      executor.Resume(design_.flow, exec, &checkpoint, etl::RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->recovered);
  EXPECT_LT(resumed->nodes.size(), clean->nodes.size());
  EXPECT_EQ(resumed->loaded, clean->loaded);
  EXPECT_EQ(target.Fingerprint(), reference.Fingerprint());
}

}  // namespace
}  // namespace quarry
