#include "core/quarry.h"

#include "deployer/pdi_generator.h"
#include "deployer/sql_generator.h"
#include "etl/xlm.h"
#include "obs/trace.h"
#include "requirements/query_parser.h"

namespace quarry::core {

Quarry::Quarry(ontology::Ontology onto, ontology::SourceMapping mapping,
               const storage::Database* source, QuarryConfig config)
    : onto_(std::make_unique<ontology::Ontology>(std::move(onto))),
      mapping_(std::make_unique<ontology::SourceMapping>(std::move(mapping))),
      source_(source),
      config_(std::move(config)) {
  elicitor_ = std::make_unique<req::Elicitor>(onto_.get());
  interpreter_ =
      std::make_unique<interpreter::Interpreter>(onto_.get(), mapping_.get());
  etl::TableColumns columns;
  std::map<std::string, int64_t> rows;
  for (const std::string& name : source_->TableNames()) {
    const storage::Table& table = **source_->GetTable(name);
    std::vector<std::string> cols;
    for (const storage::Column& c : table.schema().columns()) {
      cols.push_back(c.name);
    }
    columns[name] = std::move(cols);
    rows[name] = static_cast<int64_t>(table.num_rows());
  }
  design_ = std::make_unique<integrator::DesignIntegrator>(
      onto_.get(), std::move(columns), std::move(rows), config_.md_options,
      config_.etl_cost);
  admission_ = std::make_unique<AdmissionController>(config_.admission);
}

Result<std::unique_ptr<Quarry>> Quarry::Create(
    ontology::Ontology onto, ontology::SourceMapping mapping,
    const storage::Database* source, QuarryConfig config) {
  if (source == nullptr) {
    return Status::InvalidArgument("source database is null");
  }
  QUARRY_RETURN_NOT_OK(
      mapping.Validate(onto).WithContext("source schema mappings"));
  auto quarry = std::unique_ptr<Quarry>(
      new Quarry(std::move(onto), std::move(mapping), source,
                 std::move(config)));

  // Persist the semantic metadata (paper §2.5: the repository holds domain
  // ontologies and source schema mappings).
  QUARRY_RETURN_NOT_OK(quarry->repository_.StoreXml(
      "ontologies", quarry->onto_->name(), *quarry->onto_->ToXml()));
  QUARRY_RETURN_NOT_OK(quarry->repository_.StoreXml(
      "mappings", quarry->onto_->name(), *quarry->mapping_->ToXml()));

  // Built-in export parsers.
  const storage::Database* source_db = quarry->source_;
  const ontology::SourceMapping* mapping_ptr = quarry->mapping_.get();
  std::string db_name = quarry->config_.database_name;
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "sql", [source_db, mapping_ptr, db_name](const xml::Element& doc)
                 -> Result<std::string> {
        QUARRY_ASSIGN_OR_RETURN(md::MdSchema schema, md::MdSchema::FromXml(doc));
        return deployer::GenerateSql(schema, *mapping_ptr, *source_db,
                                     db_name);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "pdi", [db_name](const xml::Element& doc) -> Result<std::string> {
        QUARRY_ASSIGN_OR_RETURN(etl::Flow flow, etl::FlowFromXlm(doc));
        return deployer::GeneratePdiText(flow, db_name);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "xmd", [](const xml::Element& doc) -> Result<std::string> {
        return xml::Write(doc);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "xlm", [](const xml::Element& doc) -> Result<std::string> {
        return xml::Write(doc);
      }));
  // Built-in import parsers (paper §2.5: "plug-in capabilities for adding
  // import and export parsers").
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterImporter(
      "arq",
      [](std::string_view text) -> Result<std::unique_ptr<xml::Element>> {
        QUARRY_ASSIGN_OR_RETURN(req::InformationRequirement ir,
                                req::ParseRequirementQuery(text));
        return req::ToXrq(ir);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterImporter(
      "xrq",
      [](std::string_view text) -> Result<std::unique_ptr<xml::Element>> {
        return xml::Parse(text);
      }));
  return quarry;
}

Status Quarry::EnableDurability(const std::string& dir) {
  return repository_.EnableDurability(dir);
}

Status Quarry::RefreshUnifiedArtifacts() {
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("unified_xmd", "unified",
                                            *design_->schema().ToXml()));
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("unified_xlm", "unified",
                                            *etl::FlowToXlm(design_->flow())));
  return Status::OK();
}

Result<integrator::IntegrationOutcome> Quarry::AddRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_NAMED_SPAN(span, "quarry.add_requirement");
  QUARRY_SPAN_ATTR(span, "ir_id", ir.id);
  QUARRY_ASSIGN_OR_RETURN(interpreter::PartialDesign partial,
                          interpreter_->Interpret(ir, ctx));
  QUARRY_ASSIGN_OR_RETURN(integrator::IntegrationOutcome outcome,
                          design_->AddRequirement(ir, partial, ctx));
  // Record every artifact of this step.
  QUARRY_SPAN("quarry.store_artifacts");
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("xrq", ir.id, *req::ToXrq(ir)));
  QUARRY_RETURN_NOT_OK(
      repository_.StoreXml("partial_xmd", ir.id, *partial.schema.ToXml()));
  QUARRY_RETURN_NOT_OK(
      repository_.StoreXml("partial_xlm", ir.id,
                           *etl::FlowToXlm(partial.flow)));
  QUARRY_RETURN_NOT_OK(RefreshUnifiedArtifacts());
  return outcome;
}

Result<integrator::IntegrationOutcome> Quarry::AddRequirementFromQuery(
    std::string_view query_text, const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(auto xrq, repository_.Import("arq", query_text));
  QUARRY_ASSIGN_OR_RETURN(req::InformationRequirement ir,
                          req::FromXrq(*xrq));
  return AddRequirement(ir, ctx);
}

Status Quarry::RemoveRequirement(const std::string& ir_id) {
  QUARRY_RETURN_NOT_OK(design_->RemoveRequirement(ir_id));
  (void)repository_.Remove("xrq", ir_id);
  (void)repository_.Remove("partial_xmd", ir_id);
  (void)repository_.Remove("partial_xlm", ir_id);
  return RefreshUnifiedArtifacts();
}

Result<integrator::IntegrationOutcome> Quarry::ChangeRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "change of requirement '" + ir.id + "'"));
  QUARRY_RETURN_NOT_OK(design_->RemoveRequirement(ir.id));
  return AddRequirement(ir, ctx);
}

Result<deployer::DeploymentReport> Quarry::Deploy(storage::Database* target) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  deployer::Deployer dep(source_, target);
  return dep.Deploy(design_->schema(), design_->flow(), *mapping_,
                    config_.database_name);
}

Result<deployer::DeploymentOutcome> Quarry::DeployResilient(
    storage::Database* target, deployer::DeployOptions options) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  options.database_name = config_.database_name;
  options.metadata = &repository_.store();
  // The instance-wide scheduler config applies unless this deployment's
  // options already ask for parallelism themselves.
  if (options.exec.max_workers <= 1) options.exec = config_.etl_exec;
  deployer::Deployer dep(source_, target);
  return dep.DeployTransactional(design_->schema(), design_->flow(),
                                 *mapping_, options);
}

Result<etl::ExecutionReport> Quarry::Refresh(storage::Database* target,
                                             const ExecContext* ctx) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  QUARRY_SPAN("quarry.refresh");
  deployer::Deployer dep(source_, target);
  return dep.Refresh(design_->flow(), {}, ctx, config_.etl_exec);
}

Result<integrator::IntegrationOutcome> Quarry::SubmitRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return AddRequirement(ir, ctx);
}

Result<integrator::IntegrationOutcome> Quarry::SubmitRequirementFromQuery(
    std::string_view query_text, const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return AddRequirementFromQuery(query_text, ctx);
}

Status Quarry::SubmitRemoveRequirement(const std::string& ir_id,
                                       const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  QUARRY_RETURN_NOT_OK(CheckContext(ctx, "removal of '" + ir_id + "'"));
  return RemoveRequirement(ir_id);
}

Result<deployer::DeploymentOutcome> Quarry::SubmitDeploy(
    storage::Database* target, deployer::DeployOptions options,
    const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  options.context = ctx;
  return DeployResilient(target, std::move(options));
}

Result<etl::ExecutionReport> Quarry::SubmitRefresh(storage::Database* target,
                                                   const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(AdmissionController::Ticket ticket,
                          admission_->Admit(ctx));
  std::lock_guard<std::mutex> lock(submit_mu_);
  return Refresh(target, ctx);
}

Result<std::string> Quarry::ExportSchema(const std::string& format) const {
  return repository_.Export(format, *design_->schema().ToXml());
}

Result<std::string> Quarry::ExportFlow(const std::string& format) const {
  return repository_.Export(format, *etl::FlowToXlm(design_->flow()));
}

}  // namespace quarry::core
