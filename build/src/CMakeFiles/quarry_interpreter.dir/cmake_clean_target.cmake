file(REMOVE_RECURSE
  "libquarry_interpreter.a"
)
