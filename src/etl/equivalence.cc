#include "etl/equivalence.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/str_util.h"
#include "etl/expr.h"

namespace quarry::etl {

namespace {

bool Covers(const std::vector<std::string>& columns,
            const std::set<std::string>& needed) {
  for (const std::string& c : needed) {
    if (std::find(columns.begin(), columns.end(), c) == columns.end()) {
      return false;
    }
  }
  return true;
}

/// Detaches unary node `id` from the graph (predecessor is wired to all
/// successors, each keeping its edge position); the node stays in the flow
/// with no edges.
Status Detach(Flow* flow, const std::string& id) {
  std::vector<std::string> preds = flow->Predecessors(id);
  std::vector<std::string> succs = flow->Successors(id);
  if (preds.size() != 1) {
    return Status::Internal("Detach expects a single-input node");
  }
  QUARRY_RETURN_NOT_OK(flow->RemoveEdge(preds[0], id));
  for (const std::string& succ : succs) {
    // Keep the successor's input position (joins are order-sensitive).
    QUARRY_RETURN_NOT_OK(flow->ReplaceEdge(id, succ, preds[0], succ));
  }
  return Status::OK();
}

/// Inserts detached unary node `id` on the edge from -> to, preserving the
/// position of `to`'s input.
Status InsertOnEdge(Flow* flow, const std::string& id, const std::string& from,
                    const std::string& to) {
  QUARRY_RETURN_NOT_OK(flow->ReplaceEdge(from, to, id, to));
  QUARRY_RETURN_NOT_OK(flow->AddEdge(from, id));
  return Status::OK();
}

}  // namespace

Result<bool> PushSelectionDown(Flow* flow, const TableColumns& sources) {
  QUARRY_ASSIGN_OR_RETURN(auto columns, InferColumns(*flow, sources));
  for (const auto& [id, node] : flow->nodes()) {
    if (node.type != OpType::kSelection) continue;
    std::vector<std::string> preds = flow->Predecessors(id);
    if (preds.size() != 1) continue;
    const std::string& upstream_id = preds[0];
    const Node& upstream = *flow->GetNode(upstream_id).value();
    // Only safe when the selection is the upstream's sole consumer.
    if (flow->Successors(upstream_id).size() != 1) continue;
    auto pred_it = node.params.find("predicate");
    if (pred_it == node.params.end()) continue;
    auto parsed = ParseExpr(pred_it->second);
    if (!parsed.ok()) return parsed.status();
    std::set<std::string> needed = (*parsed)->ReferencedColumns();

    if (upstream.type == OpType::kJoin) {
      std::vector<std::string> join_inputs = flow->Predecessors(upstream_id);
      if (join_inputs.size() != 2) continue;
      for (const std::string& side : join_inputs) {
        if (!Covers(columns.at(side), needed)) continue;
        QUARRY_RETURN_NOT_OK(Detach(flow, id));
        QUARRY_RETURN_NOT_OK(InsertOnEdge(flow, id, side, upstream_id));
        return true;
      }
      continue;
    }

    bool swappable_unary =
        upstream.type == OpType::kFunction || upstream.type == OpType::kSort ||
        upstream.type == OpType::kSurrogateKey ||
        upstream.type == OpType::kProjection;
    if (!swappable_unary) continue;
    std::vector<std::string> upstream_preds = flow->Predecessors(upstream_id);
    if (upstream_preds.size() != 1) continue;
    // The predicate must be evaluable on the upstream's *input* columns
    // (e.g. it must not reference a Function's derived column).
    if (!Covers(columns.at(upstream_preds[0]), needed)) continue;
    QUARRY_RETURN_NOT_OK(Detach(flow, id));
    QUARRY_RETURN_NOT_OK(
        InsertOnEdge(flow, id, upstream_preds[0], upstream_id));
    return true;
  }
  return false;
}

Result<bool> CanonicalizeSelectionOrder(Flow* flow) {
  for (const auto& [id, node] : flow->nodes()) {
    if (node.type != OpType::kSelection) continue;
    std::vector<std::string> preds = flow->Predecessors(id);
    if (preds.size() != 1) continue;
    const std::string& upstream_id = preds[0];
    Node* upstream = *flow->GetMutableNode(upstream_id);
    if (upstream->type != OpType::kSelection) continue;
    if (flow->Successors(upstream_id).size() != 1) continue;
    if (node.params.count("predicate") == 0 ||
        upstream->params.count("predicate") == 0) {
      continue;
    }
    const std::string& p_down = node.params.at("predicate");
    const std::string& p_up = upstream->params.at("predicate");
    if (p_down < p_up) {
      // Swap the predicates (and traces follow the predicates, so swap
      // those too): cheaper than rewiring and preserves node ids' roles.
      Node* down = *flow->GetMutableNode(id);
      std::swap(down->params.at("predicate"), upstream->params.at("predicate"));
      std::swap(down->requirement_ids, upstream->requirement_ids);
      return true;
    }
  }
  return false;
}

Result<bool> MergeAdjacentSelections(Flow* flow) {
  for (const auto& [id, node] : flow->nodes()) {
    if (node.type != OpType::kSelection) continue;
    std::vector<std::string> preds = flow->Predecessors(id);
    if (preds.size() != 1) continue;
    const std::string upstream_id = preds[0];
    const Node& upstream = *flow->GetNode(upstream_id).value();
    if (upstream.type != OpType::kSelection) continue;
    if (flow->Successors(upstream_id).size() != 1) continue;
    if (node.params.count("predicate") == 0 ||
        upstream.params.count("predicate") == 0) {
      continue;
    }
    std::string merged = "(" + upstream.params.at("predicate") + ") AND (" +
                         node.params.at("predicate") + ")";
    std::set<std::string> merged_reqs = upstream.requirement_ids;
    const std::string down_id = id;
    Node* down = *flow->GetMutableNode(down_id);
    down->params["predicate"] = merged;
    down->requirement_ids.insert(merged_reqs.begin(), merged_reqs.end());
    QUARRY_RETURN_NOT_OK(Detach(flow, upstream_id));
    QUARRY_RETURN_NOT_OK(flow->RemoveNode(upstream_id));
    return true;
  }
  return false;
}

Result<bool> RemoveRedundantProjection(Flow* flow,
                                       const TableColumns& sources) {
  QUARRY_ASSIGN_OR_RETURN(auto columns, InferColumns(*flow, sources));
  for (const auto& [id, node] : flow->nodes()) {
    if (node.type != OpType::kProjection) continue;
    std::vector<std::string> preds = flow->Predecessors(id);
    if (preds.size() != 1) continue;
    if (columns.at(id) != columns.at(preds[0])) continue;
    const std::string doomed = id;
    QUARRY_RETURN_NOT_OK(Detach(flow, doomed));
    QUARRY_RETURN_NOT_OK(flow->RemoveNode(doomed));
    return true;
  }
  return false;
}

Result<int> InsertEarlyProjections(Flow* flow, const TableColumns& sources) {
  QUARRY_ASSIGN_OR_RETURN(auto columns, InferColumns(*flow, sources));
  QUARRY_ASSIGN_OR_RETURN(auto order, flow->TopologicalOrder());

  // Backward liveness: required[n] = columns of n's output that some
  // successor consumes.
  std::map<std::string, std::set<std::string>> required;
  auto parse_csv = [](const std::string& text) {
    std::set<std::string> out;
    for (const std::string& part : Split(text, ',')) {
      std::string trimmed(Trim(part));
      if (!trimmed.empty()) out.insert(std::move(trimmed));
    }
    return out;
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const Node& node = *flow->GetNode(*it).value();
    const std::set<std::string>& downstream = required[node.id];
    std::vector<std::string> preds = flow->Predecessors(node.id);
    auto add_to = [&](const std::string& pred,
                      const std::set<std::string>& wanted) {
      for (const std::string& c : wanted) {
        // Only columns the predecessor actually produces.
        const auto& pred_cols = columns.at(pred);
        if (std::find(pred_cols.begin(), pred_cols.end(), c) !=
            pred_cols.end()) {
          required[pred].insert(c);
        }
      }
    };
    switch (node.type) {
      case OpType::kLoader: {
        // The target binding is resolved at run time: keep everything.
        if (!preds.empty()) {
          const auto& in = columns.at(preds[0]);
          required[preds[0]].insert(in.begin(), in.end());
        }
        break;
      }
      case OpType::kSelection: {
        if (preds.empty()) break;
        std::set<std::string> wanted = downstream;
        auto pred_it = node.params.find("predicate");
        if (pred_it != node.params.end()) {
          auto parsed = ParseExpr(pred_it->second);
          if (!parsed.ok()) return parsed.status();
          auto refs = (*parsed)->ReferencedColumns();
          wanted.insert(refs.begin(), refs.end());
        }
        add_to(preds[0], wanted);
        break;
      }
      case OpType::kProjection: {
        if (preds.empty()) break;
        auto cols = node.params.find("columns");
        add_to(preds[0], parse_csv(cols == node.params.end() ? ""
                                                             : cols->second));
        break;
      }
      case OpType::kJoin: {
        if (preds.size() != 2) break;
        auto left = node.params.find("left");
        auto right = node.params.find("right");
        std::set<std::string> left_wanted = downstream;
        std::set<std::string> right_wanted = downstream;
        if (left != node.params.end()) {
          for (const std::string& k : parse_csv(left->second)) {
            left_wanted.insert(k);
          }
        }
        if (right != node.params.end()) {
          for (const std::string& k : parse_csv(right->second)) {
            right_wanted.insert(k);
          }
        }
        add_to(preds[0], left_wanted);
        add_to(preds[1], right_wanted);
        break;
      }
      case OpType::kAggregation: {
        if (preds.empty()) break;
        std::set<std::string> wanted;
        auto group = node.params.find("group");
        if (group != node.params.end()) {
          wanted = parse_csv(group->second);
        }
        auto aggs = node.params.find("aggs");
        if (aggs != node.params.end()) {
          auto specs = ParseAggSpecs(aggs->second);
          if (!specs.ok()) return specs.status();
          for (const AggSpec& s : *specs) {
            if (s.input != "*") wanted.insert(s.input);
          }
        }
        add_to(preds[0], wanted);
        break;
      }
      case OpType::kFunction: {
        if (preds.empty()) break;
        std::set<std::string> wanted = downstream;
        auto expr = node.params.find("expr");
        if (expr != node.params.end()) {
          auto parsed = ParseExpr(expr->second);
          if (!parsed.ok()) return parsed.status();
          auto refs = (*parsed)->ReferencedColumns();
          wanted.insert(refs.begin(), refs.end());
        }
        add_to(preds[0], wanted);
        break;
      }
      case OpType::kSort: {
        if (preds.empty()) break;
        std::set<std::string> wanted = downstream;
        auto by = node.params.find("by");
        if (by != node.params.end()) {
          for (const std::string& c : parse_csv(by->second)) {
            wanted.insert(c);
          }
        }
        add_to(preds[0], wanted);
        break;
      }
      case OpType::kSurrogateKey: {
        if (preds.empty()) break;
        std::set<std::string> wanted = downstream;
        auto keys = node.params.find("keys");
        if (keys != node.params.end()) {
          for (const std::string& c : parse_csv(keys->second)) {
            wanted.insert(c);
          }
        }
        add_to(preds[0], wanted);
        break;
      }
      case OpType::kUnion: {
        // Union inputs must keep identical schemas; per-branch pruning
        // could diverge (different branches need different extras), so the
        // union is a liveness barrier.
        for (const std::string& pred : preds) {
          const auto& in = columns.at(pred);
          required[pred].insert(in.begin(), in.end());
        }
        break;
      }
      case OpType::kDatastore:
      case OpType::kExtraction: {
        if (!preds.empty()) add_to(preds[0], downstream);
        break;
      }
    }
  }

  // Insert a narrow projection after each extraction that carries more
  // than its consumers need (in original table column order, so repeated
  // runs are stable).
  int inserted = 0;
  std::vector<std::string> extraction_ids;
  for (const auto& [id, node] : flow->nodes()) {
    if (node.type == OpType::kExtraction) extraction_ids.push_back(id);
  }
  for (const std::string& id : extraction_ids) {
    const std::set<std::string>& wanted = required[id];
    const std::vector<std::string>& produced = columns.at(id);
    if (wanted.empty() || wanted.size() >= produced.size()) continue;
    std::vector<std::string> keep;
    for (const std::string& c : produced) {
      if (wanted.count(c) > 0) keep.push_back(c);
    }
    std::string keep_csv = Join(keep, ",");
    // Idempotence: skip if the sole consumer is already this projection.
    std::vector<std::string> succs = flow->Successors(id);
    if (succs.size() == 1) {
      const Node& succ = *flow->GetNode(succs[0]).value();
      if (succ.type == OpType::kProjection &&
          succ.params.count("columns") > 0 &&
          succ.params.at("columns") == keep_csv) {
        continue;
      }
    }
    Node proj;
    proj.id = "EARLYPROJ_" + id;
    int suffix = 2;
    while (flow->HasNode(proj.id)) {
      proj.id = "EARLYPROJ_" + id + "#" + std::to_string(suffix++);
    }
    proj.type = OpType::kProjection;
    proj.params["columns"] = keep_csv;
    proj.requirement_ids = flow->GetNode(id).value()->requirement_ids;
    std::string proj_id = proj.id;
    QUARRY_RETURN_NOT_OK(flow->AddNode(std::move(proj)));
    for (const std::string& succ : succs) {
      QUARRY_RETURN_NOT_OK(flow->ReplaceEdge(id, succ, proj_id, succ));
    }
    QUARRY_RETURN_NOT_OK(flow->AddEdge(id, proj_id));
    ++inserted;
  }
  return inserted;
}

Result<int> Normalize(Flow* flow, const TableColumns& sources) {
  int rewrites = 0;
  const int kMaxRewrites = 10'000;  // Defensive bound; rules terminate.
  while (rewrites < kMaxRewrites) {
    QUARRY_ASSIGN_OR_RETURN(bool pushed, PushSelectionDown(flow, sources));
    if (pushed) {
      ++rewrites;
      continue;
    }
    QUARRY_ASSIGN_OR_RETURN(bool reordered, CanonicalizeSelectionOrder(flow));
    if (reordered) {
      ++rewrites;
      continue;
    }
    QUARRY_ASSIGN_OR_RETURN(bool pruned,
                            RemoveRedundantProjection(flow, sources));
    if (pruned) {
      ++rewrites;
      continue;
    }
    break;
  }
  return rewrites;
}

}  // namespace quarry::etl
