#include "core/quarry.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <utility>

#include "deployer/pdi_generator.h"
#include "deployer/sql_generator.h"
#include "etl/xlm.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "requirements/query_parser.h"
#include "xml/xml.h"

namespace quarry::core {

namespace {

/// RAII marker of "a build of the next generation is in flight" — the
/// precondition for degrading a shed query to a stale read (§9.3).
class BuildInFlight {
 public:
  explicit BuildInFlight(std::atomic<int>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~BuildInFlight() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  BuildInFlight(const BuildInFlight&) = delete;
  BuildInFlight& operator=(const BuildInFlight&) = delete;

 private:
  std::atomic<int>* counter_;
};

// --- request attribution (docs/OBSERVABILITY.md) --------------------------

obs::Counter& RequestsTotal(const std::string& kind) {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_requests_total", "Requests completed through Quarry entry "
      "points, by kind",
      {{"kind", kind}});
}

obs::Counter& RequestFailuresTotal(const std::string& kind) {
  return obs::MetricsRegistry::Instance().counter(
      "quarry_request_failures_total",
      "Requests that completed with a non-OK status, by kind",
      {{"kind", kind}});
}

obs::Histogram& RequestMicrosHistogram(const std::string& kind) {
  return obs::MetricsRegistry::Instance().histogram(
      "quarry_request_micros",
      "End-to-end request latency (admission wait included), by kind",
      obs::LatencyBucketsMicros(), {{"kind", kind}});
}

// Collect (name-pointer, micros) pairs, sort, and copy only the three
// strings that survive — this runs on every request completion, so the
// other N-3 operator names are never copied.
using OpRef = std::pair<const std::string*, double>;

void CollectOpRefs(const std::vector<obs::ProfileNode>& nodes,
                   std::vector<OpRef>* out) {
  for (const obs::ProfileNode& node : nodes) {
    out->push_back({&node.id, node.wall_micros});
    CollectOpRefs(node.children, out);
  }
}

std::vector<obs::OpTiming> KeepSlowestThree(std::vector<OpRef> ops) {
  std::sort(ops.begin(), ops.end(), [](const OpRef& a, const OpRef& b) {
    return a.second > b.second;
  });
  if (ops.size() > 3) ops.resize(3);
  std::vector<obs::OpTiming> out;
  out.reserve(ops.size());
  for (const OpRef& op : ops) out.push_back({*op.first, op.second});
  return out;
}

std::vector<obs::OpTiming> SlowestOps(
    const std::vector<obs::ProfileNode>& roots) {
  std::vector<OpRef> ops;
  CollectOpRefs(roots, &ops);
  return KeepSlowestThree(std::move(ops));
}

std::vector<obs::OpTiming> SlowestOpsFromReport(
    const etl::ExecutionReport& report) {
  std::vector<OpRef> ops;
  ops.reserve(report.nodes.size());
  for (const etl::NodeStats& stats : report.nodes) {
    ops.push_back({&stats.node_id, stats.millis * 1000.0});
  }
  return KeepSlowestThree(std::move(ops));
}

/// Attribution scope of one entry-point invocation: supplies a fallback
/// ExecContext when the caller passed none (the request id must travel
/// regardless), stamps the monotonic request id, times the request end to
/// end and — via Finish(), exactly once — writes the per-kind metrics and
/// the event-log completion record.
class RequestScope {
 public:
  RequestScope(std::string kind, const ExecContext** ctx) {
    if (*ctx == nullptr) {
      owned_ = std::make_unique<ExecContext>();
      *ctx = owned_.get();
    }
    record_.kind = std::move(kind);
    record_.id = (*ctx)->EnsureRequestId();
    record_.tenant = (*ctx)->tenant();
  }

  uint64_t id() const { return record_.id; }
  obs::RequestRecord& record() { return record_; }
  void set_admission_wait(double micros) {
    record_.admission_wait_micros = micros;
  }

  /// Defers profile-JSON rendering to Finish: the string is only built when
  /// the request's latency crosses the slow threshold and the record will
  /// actually keep it. Rendering eagerly on every fast query would charge
  /// ~10% serialization tax to requests whose profile is dropped anyway.
  /// The callable must stay valid until Finish runs.
  void set_profile_renderer(std::function<std::string()> renderer) {
    profile_renderer_ = std::move(renderer);
  }

  /// Completes the request: per-kind metrics + the event-log record.
  void Finish(const Status& status) {
    record_.latency_micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();
    record_.status =
        status.ok() ? "ok" : StatusCodeToString(status.code());
    if (profile_renderer_ &&
        record_.latency_micros >=
            obs::RequestLog::Instance().slow_threshold_micros()) {
      record_.profile_json = profile_renderer_();
    }
    RequestsTotal(record_.kind).Increment();
    if (!status.ok()) RequestFailuresTotal(record_.kind).Increment();
    RequestMicrosHistogram(record_.kind).Observe(record_.latency_micros);
    obs::RequestLog::Instance().Record(std::move(record_));
  }

 private:
  std::unique_ptr<ExecContext> owned_;
  obs::RequestRecord record_;
  std::function<std::string()> profile_renderer_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// The status a deployment effectively completed with: a Result that is
/// "ok" but rolled back logically carries its DeploymentFailure cause. Both
/// the request record and the tenant circuit breaker see this status.
Status EffectiveDeploymentStatus(
    const Result<deployer::DeploymentOutcome>& outcome) {
  if (!outcome.ok()) return outcome.status();
  const deployer::DeploymentOutcome& o = *outcome;
  if (!o.success && !o.partial && o.failure.has_value()) {
    return o.failure->cause;
  }
  return Status::OK();
}

/// Folds a deployment outcome into the scope's record — rows, generation,
/// slowest operators, and the full ETL profile (kept by the event log only
/// when the request crosses the slow threshold) — then finishes it. A
/// deployment that "succeeded" as a Result but rolled back logically
/// reports its DeploymentFailure cause as the request status.
void FinishDeploymentScope(RequestScope* scope,
                           const Result<deployer::DeploymentOutcome>& outcome,
                           const etl::Flow* flow) {
  Status status = EffectiveDeploymentStatus(outcome);
  if (outcome.ok()) {
    const deployer::DeploymentOutcome& o = *outcome;
    scope->record().rows = o.report.etl.rows_processed;
    scope->record().generation = o.published_generation;
    scope->record().slowest_ops = SlowestOpsFromReport(o.report.etl);
    if (flow != nullptr) {
      // Rendered only if Finish finds the deployment slow; `outcome` and
      // `flow` outlive the Finish call below.
      scope->set_profile_renderer([scope, status, &o, flow] {
        obs::RequestProfile profile;
        profile.request_id = scope->id();
        profile.kind = scope->record().kind;
        profile.status =
            status.ok() ? "ok" : StatusCodeToString(status.code());
        profile.generation = o.published_generation;
        profile.rows = o.report.etl.rows_processed;
        profile.admission_wait_micros =
            scope->record().admission_wait_micros;
        profile.total_micros = o.report.etl.total_millis * 1000.0;
        profile.roots = etl::BuildProfileTrees(*flow, o.report.etl);
        return profile.ToJson();
      });
    }
  }
  scope->Finish(status);
}

}  // namespace

Quarry::Quarry(ontology::Ontology onto, ontology::SourceMapping mapping,
               const storage::Database* source, QuarryConfig config)
    : onto_(std::make_unique<ontology::Ontology>(std::move(onto))),
      mapping_(std::make_unique<ontology::SourceMapping>(std::move(mapping))),
      source_(source),
      config_(std::move(config)),
      warehouse_(config_.database_name) {
  elicitor_ = std::make_unique<req::Elicitor>(onto_.get());
  interpreter_ =
      std::make_unique<interpreter::Interpreter>(onto_.get(), mapping_.get());
  etl::TableColumns columns;
  std::map<std::string, int64_t> rows;
  for (const std::string& name : source_->TableNames()) {
    const storage::Table& table = **source_->GetTable(name);
    std::vector<std::string> cols;
    for (const storage::Column& c : table.schema().columns()) {
      cols.push_back(c.name);
    }
    columns[name] = std::move(cols);
    rows[name] = static_cast<int64_t>(table.num_rows());
  }
  design_ = std::make_unique<integrator::DesignIntegrator>(
      onto_.get(), std::move(columns), std::move(rows), config_.md_options,
      config_.etl_cost);
  admission_ = std::make_unique<AdmissionController>(config_.admission);
  // Serving lanes (§9.4): the lane names are fixed here — they are metric
  // identities (quarry_admission_*{lane=...}), not configuration. The
  // design lane keeps whatever the caller set (empty by default, i.e. the
  // unlabeled pre-lane identities).
  AdmissionOptions query_opts = config_.serving.query_admission;
  query_opts.lane = "query";
  // Serving-lane defaults (§11): a query carrying a deadline should neither
  // wait past the point where finishing on time is possible (derived queue
  // timeout) nor enter a queue whose expected wait already exceeds its
  // remaining deadline (eviction). Both only bite for bounded deadlines, so
  // deadline-less callers keep the wait-forever semantics.
  query_opts.derive_queue_timeout_from_deadline = true;
  query_opts.deadline_eviction = true;
  query_admission_ = std::make_unique<AdmissionController>(query_opts);
  AdmissionOptions stale_opts = config_.serving.stale_admission;
  stale_opts.lane = "stale";
  stale_admission_ = std::make_unique<AdmissionController>(stale_opts);

  auto& registry = obs::MetricsRegistry::Instance();
  // Both modes registered eagerly so dashboards see explicit zeros.
  queries_fresh_total_ = &registry.counter(
      "quarry_serving_queries_total",
      "Cube queries served from a pinned warehouse generation, by mode.",
      {{"mode", "fresh"}});
  queries_stale_total_ = &registry.counter(
      "quarry_serving_queries_total",
      "Cube queries served from a pinned warehouse generation, by mode.",
      {{"mode", "stale"}});
  query_micros_ = &registry.histogram(
      "quarry_serving_query_micros",
      "End-to-end latency of served cube queries (pin + compile + execute).",
      obs::LatencyBucketsMicros());
  // Request-attribution families, one instance per entry-point kind, plus
  // the event-log counters (RequestLog registers its own) — all eager so
  // the first scrape shows zeros, not gaps.
  for (const char* kind :
       {"requirement", "requirement_remove", "deploy", "refresh",
        "deploy_serving", "refresh_serving", "query"}) {
    RequestsTotal(kind);
    RequestFailuresTotal(kind);
    RequestMicrosHistogram(kind);
  }
  obs::RequestLog::Instance();
}

Result<std::unique_ptr<Quarry>> Quarry::Create(
    ontology::Ontology onto, ontology::SourceMapping mapping,
    const storage::Database* source, QuarryConfig config) {
  if (source == nullptr) {
    return Status::InvalidArgument("source database is null");
  }
  QUARRY_RETURN_NOT_OK(
      mapping.Validate(onto).WithContext("source schema mappings"));
  auto quarry = std::unique_ptr<Quarry>(
      new Quarry(std::move(onto), std::move(mapping), source,
                 std::move(config)));

  // Persist the semantic metadata (paper §2.5: the repository holds domain
  // ontologies and source schema mappings).
  QUARRY_RETURN_NOT_OK(quarry->repository_.StoreXml(
      "ontologies", quarry->onto_->name(), *quarry->onto_->ToXml()));
  QUARRY_RETURN_NOT_OK(quarry->repository_.StoreXml(
      "mappings", quarry->onto_->name(), *quarry->mapping_->ToXml()));

  // Built-in export parsers.
  const storage::Database* source_db = quarry->source_;
  const ontology::SourceMapping* mapping_ptr = quarry->mapping_.get();
  std::string db_name = quarry->config_.database_name;
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "sql", [source_db, mapping_ptr, db_name](const xml::Element& doc)
                 -> Result<std::string> {
        QUARRY_ASSIGN_OR_RETURN(md::MdSchema schema, md::MdSchema::FromXml(doc));
        return deployer::GenerateSql(schema, *mapping_ptr, *source_db,
                                     db_name);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "pdi", [db_name](const xml::Element& doc) -> Result<std::string> {
        QUARRY_ASSIGN_OR_RETURN(etl::Flow flow, etl::FlowFromXlm(doc));
        return deployer::GeneratePdiText(flow, db_name);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "xmd", [](const xml::Element& doc) -> Result<std::string> {
        return xml::Write(doc);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterExporter(
      "xlm", [](const xml::Element& doc) -> Result<std::string> {
        return xml::Write(doc);
      }));
  // Built-in import parsers (paper §2.5: "plug-in capabilities for adding
  // import and export parsers").
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterImporter(
      "arq",
      [](std::string_view text) -> Result<std::unique_ptr<xml::Element>> {
        QUARRY_ASSIGN_OR_RETURN(req::InformationRequirement ir,
                                req::ParseRequirementQuery(text));
        return req::ToXrq(ir);
      }));
  QUARRY_RETURN_NOT_OK(quarry->repository_.RegisterImporter(
      "xrq",
      [](std::string_view text) -> Result<std::unique_ptr<xml::Element>> {
        return xml::Parse(text);
      }));
  return quarry;
}

Status Quarry::EnableDurability(const std::string& dir) {
  return repository_.EnableDurability(dir);
}

Status Quarry::EnableServingDurability(const std::string& dir) {
  // The annex persisted with each generation is the serialized xMD
  // document; recovery parses it back into the immutable schema snapshot
  // that SubmitQuery compiles cube queries against.
  storage::GenerationStore::AnnexDecoder decoder =
      [](const std::string& bytes) -> Result<std::shared_ptr<const void>> {
    QUARRY_ASSIGN_OR_RETURN(auto root, xml::Parse(bytes));
    QUARRY_ASSIGN_OR_RETURN(md::MdSchema schema, md::MdSchema::FromXml(*root));
    return std::shared_ptr<const void>(
        std::make_shared<const md::MdSchema>(std::move(schema)));
  };
  return warehouse_.EnableDurability(dir, std::move(decoder),
                                     &recovery_report_.warehouse);
}

std::string RecoveryReport::ToString() const {
  return "metadata{" + metadata.ToString() + "} warehouse{" +
         warehouse.ToString() + "}";
}

Status Quarry::RefreshUnifiedArtifacts() {
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("unified_xmd", "unified",
                                            *design_->schema().ToXml()));
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("unified_xlm", "unified",
                                            *etl::FlowToXlm(design_->flow())));
  return Status::OK();
}

Result<integrator::IntegrationOutcome> Quarry::AddRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_NAMED_SPAN(span, "quarry.add_requirement");
  QUARRY_SPAN_ATTR(span, "ir_id", ir.id);
  if (RequestId(ctx) != 0) {
    QUARRY_SPAN_ATTR(span, "request_id",
                     static_cast<int64_t>(RequestId(ctx)));
  }
  if (!TenantId(ctx).empty()) {
    QUARRY_SPAN_ATTR(span, "tenant", TenantId(ctx));
  }
  QUARRY_ASSIGN_OR_RETURN(interpreter::PartialDesign partial,
                          interpreter_->Interpret(ir, ctx));
  QUARRY_ASSIGN_OR_RETURN(integrator::IntegrationOutcome outcome,
                          design_->AddRequirement(ir, partial, ctx));
  // Record every artifact of this step.
  QUARRY_SPAN("quarry.store_artifacts");
  QUARRY_RETURN_NOT_OK(repository_.StoreXml("xrq", ir.id, *req::ToXrq(ir)));
  QUARRY_RETURN_NOT_OK(
      repository_.StoreXml("partial_xmd", ir.id, *partial.schema.ToXml()));
  QUARRY_RETURN_NOT_OK(
      repository_.StoreXml("partial_xlm", ir.id,
                           *etl::FlowToXlm(partial.flow)));
  QUARRY_RETURN_NOT_OK(RefreshUnifiedArtifacts());
  return outcome;
}

Result<integrator::IntegrationOutcome> Quarry::AddRequirementFromQuery(
    std::string_view query_text, const ExecContext* ctx) {
  QUARRY_ASSIGN_OR_RETURN(auto xrq, repository_.Import("arq", query_text));
  QUARRY_ASSIGN_OR_RETURN(req::InformationRequirement ir,
                          req::FromXrq(*xrq));
  return AddRequirement(ir, ctx);
}

Status Quarry::RemoveRequirement(const std::string& ir_id) {
  QUARRY_RETURN_NOT_OK(design_->RemoveRequirement(ir_id));
  (void)repository_.Remove("xrq", ir_id);
  (void)repository_.Remove("partial_xmd", ir_id);
  (void)repository_.Remove("partial_xlm", ir_id);
  return RefreshUnifiedArtifacts();
}

Result<integrator::IntegrationOutcome> Quarry::ChangeRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  QUARRY_RETURN_NOT_OK(
      CheckContext(ctx, "change of requirement '" + ir.id + "'"));
  QUARRY_RETURN_NOT_OK(design_->RemoveRequirement(ir.id));
  return AddRequirement(ir, ctx);
}

Result<deployer::DeploymentReport> Quarry::Deploy(storage::Database* target) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  deployer::Deployer dep(source_, target);
  return dep.Deploy(design_->schema(), design_->flow(), *mapping_,
                    config_.database_name);
}

Result<deployer::DeploymentOutcome> Quarry::DeployResilient(
    storage::Database* target, deployer::DeployOptions options) {
  const ExecContext* ctx = options.context;
  RequestScope scope("deploy", &ctx);
  options.context = ctx;
  // Tenant quota gate first (§11): a tenant over its rate / in-flight share
  // or behind a tripped breaker is shed before it can touch the shared
  // design lane.
  Result<TenantRegistry::Lease> lease = tenants_.Admit(ctx);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  // Admission-gated like every other design-mutating entry point (§7): the
  // direct call and SubmitDeploy pass the same single gate. (Only the
  // legacy non-transactional Deploy() stays ungated.)
  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket = admission_->Admit(ctx, &wait);
  scope.set_admission_wait(wait);
  if (!ticket.ok()) {
    lease->Complete(ticket.status());
    scope.Finish(ticket.status());
    return ticket.status();
  }
  std::lock_guard<std::mutex> lock(submit_mu_);
  Result<deployer::DeploymentOutcome> outcome =
      DeployResilientInternal(target, std::move(options));
  lease->Complete(EffectiveDeploymentStatus(outcome));
  FinishDeploymentScope(&scope, outcome, &design_->flow());
  return outcome;
}

Result<deployer::DeploymentOutcome> Quarry::DeployResilientInternal(
    storage::Database* target, deployer::DeployOptions options) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  options.database_name = config_.database_name;
  options.metadata = &repository_.store();
  // The instance-wide scheduler config applies unless this deployment's
  // options already ask for parallelism themselves.
  if (options.exec.max_workers <= 1) options.exec = config_.etl_exec;
  deployer::Deployer dep(source_, target);
  return dep.DeployTransactional(design_->schema(), design_->flow(),
                                 *mapping_, options);
}

Result<etl::ExecutionReport> Quarry::Refresh(storage::Database* target,
                                             const ExecContext* ctx) {
  RequestScope scope("refresh", &ctx);
  Result<TenantRegistry::Lease> lease = tenants_.Admit(ctx);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket = admission_->Admit(ctx, &wait);
  scope.set_admission_wait(wait);
  if (!ticket.ok()) {
    lease->Complete(ticket.status());
    scope.Finish(ticket.status());
    return ticket.status();
  }
  std::lock_guard<std::mutex> lock(submit_mu_);
  Result<etl::ExecutionReport> report = RefreshInternal(target, ctx);
  if (report.ok()) {
    scope.record().rows = report->rows_processed;
    scope.record().slowest_ops = SlowestOpsFromReport(*report);
  }
  lease->Complete(report.status());
  scope.Finish(report.status());
  return report;
}

Result<etl::ExecutionReport> Quarry::RefreshInternal(storage::Database* target,
                                                     const ExecContext* ctx) {
  if (target == nullptr) {
    return Status::InvalidArgument("target database is null");
  }
  QUARRY_NAMED_SPAN(span, "quarry.refresh");
  if (RequestId(ctx) != 0) {
    QUARRY_SPAN_ATTR(span, "request_id",
                     static_cast<int64_t>(RequestId(ctx)));
  }
  if (!TenantId(ctx).empty()) {
    QUARRY_SPAN_ATTR(span, "tenant", TenantId(ctx));
  }
  deployer::Deployer dep(source_, target);
  return dep.Refresh(design_->flow(), {}, ctx, config_.etl_exec);
}

Result<integrator::IntegrationOutcome> Quarry::SubmitRequirement(
    const req::InformationRequirement& ir, const ExecContext* ctx) {
  RequestScope scope("requirement", &ctx);
  Result<TenantRegistry::Lease> lease = tenants_.Admit(ctx);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket = admission_->Admit(ctx, &wait);
  scope.set_admission_wait(wait);
  if (!ticket.ok()) {
    lease->Complete(ticket.status());
    scope.Finish(ticket.status());
    return ticket.status();
  }
  std::lock_guard<std::mutex> lock(submit_mu_);
  Result<integrator::IntegrationOutcome> outcome = AddRequirement(ir, ctx);
  lease->Complete(outcome.status());
  scope.Finish(outcome.status());
  return outcome;
}

Result<integrator::IntegrationOutcome> Quarry::SubmitRequirementFromQuery(
    std::string_view query_text, const ExecContext* ctx) {
  RequestScope scope("requirement", &ctx);
  Result<TenantRegistry::Lease> lease = tenants_.Admit(ctx);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket = admission_->Admit(ctx, &wait);
  scope.set_admission_wait(wait);
  if (!ticket.ok()) {
    lease->Complete(ticket.status());
    scope.Finish(ticket.status());
    return ticket.status();
  }
  std::lock_guard<std::mutex> lock(submit_mu_);
  Result<integrator::IntegrationOutcome> outcome =
      AddRequirementFromQuery(query_text, ctx);
  lease->Complete(outcome.status());
  scope.Finish(outcome.status());
  return outcome;
}

Status Quarry::SubmitRemoveRequirement(const std::string& ir_id,
                                       const ExecContext* ctx) {
  RequestScope scope("requirement_remove", &ctx);
  Result<TenantRegistry::Lease> lease = tenants_.Admit(ctx);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket = admission_->Admit(ctx, &wait);
  scope.set_admission_wait(wait);
  if (!ticket.ok()) {
    lease->Complete(ticket.status());
    scope.Finish(ticket.status());
    return ticket.status();
  }
  Status status = [&] {
    std::lock_guard<std::mutex> lock(submit_mu_);
    QUARRY_RETURN_NOT_OK(CheckContext(ctx, "removal of '" + ir_id + "'"));
    return RemoveRequirement(ir_id);
  }();
  lease->Complete(status);
  scope.Finish(status);
  return status;
}

Result<deployer::DeploymentOutcome> Quarry::SubmitDeploy(
    storage::Database* target, deployer::DeployOptions options,
    const ExecContext* ctx) {
  // DeployResilient admits + locks itself — forwarding keeps one gate pass.
  options.context = ctx;
  return DeployResilient(target, std::move(options));
}

Result<etl::ExecutionReport> Quarry::SubmitRefresh(storage::Database* target,
                                                   const ExecContext* ctx) {
  return Refresh(target, ctx);
}

Result<deployer::DeploymentOutcome> Quarry::DeployServing(
    deployer::DeployOptions options, const ExecContext* ctx) {
  if (ctx != nullptr) options.context = ctx;
  const ExecContext* attributed = options.context;
  RequestScope scope("deploy_serving", &attributed);
  options.context = attributed;
  Result<TenantRegistry::Lease> lease = tenants_.Admit(options.context);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket =
      admission_->Admit(options.context, &wait);
  scope.set_admission_wait(wait);
  if (!ticket.ok()) {
    lease->Complete(ticket.status());
    scope.Finish(ticket.status());
    return ticket.status();
  }
  std::lock_guard<std::mutex> lock(submit_mu_);
  Result<deployer::DeploymentOutcome> outcome =
      DeployServingInternal(std::move(options));
  lease->Complete(EffectiveDeploymentStatus(outcome));
  FinishDeploymentScope(&scope, outcome, &design_->flow());
  return outcome;
}

Result<deployer::DeploymentOutcome> Quarry::DeployServingInternal(
    deployer::DeployOptions options) {
  QUARRY_NAMED_SPAN(span, "quarry.deploy_serving");
  if (RequestId(options.context) != 0) {
    QUARRY_SPAN_ATTR(span, "request_id",
                     static_cast<int64_t>(RequestId(options.context)));
  }
  if (!TenantId(options.context).empty()) {
    QUARRY_SPAN_ATTR(span, "tenant", TenantId(options.context));
  }
  BuildInFlight build(&serving_builds_in_flight_);
  std::unique_ptr<storage::Database> scratch = warehouse_.BeginEmptyBuild();
  options.target_is_scratch = true;
  QUARRY_ASSIGN_OR_RETURN(
      deployer::DeploymentOutcome outcome,
      DeployResilientInternal(scratch.get(), std::move(options)));
  // A failed build never publishes: the scratch dies with this scope and
  // the currently-served generation is untouched. Best-effort partials do
  // publish — the stale lane and the metadata record mark them degraded.
  if (!outcome.success && !outcome.partial) return outcome;
  // The schema snapshot is published atomically with the data so queries
  // never read a schema newer (or older) than the tables they scan. Its
  // serialized form rides along so a durable store can persist it and
  // recovery can serve queries straight from disk (§10).
  auto annex = std::make_shared<const md::MdSchema>(design_->schema());
  const std::string annex_bytes = xml::Write(*annex->ToXml());
  Result<uint64_t> published =
      warehouse_.Publish(std::move(scratch), std::move(annex), annex_bytes);
  if (published.ok()) {
    outcome.published_generation = *published;
  }
  if (!published.ok()) {
    // O(1) rollback: nothing to restore — the built scratch is simply
    // discarded and readers keep the previously published generation.
    deployer::DeploymentFailure failure;
    failure.stage = "publish";
    failure.rolled_back = true;
    failure.cause = published.status();
    outcome.success = false;
    outcome.partial = false;
    outcome.failure = std::move(failure);
  }
  return outcome;
}

Result<etl::ExecutionReport> Quarry::RefreshServing(const ExecContext* ctx) {
  RequestScope scope("refresh_serving", &ctx);
  Result<TenantRegistry::Lease> lease = tenants_.Admit(ctx);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket = admission_->Admit(ctx, &wait);
  scope.set_admission_wait(wait);
  if (!ticket.ok()) {
    lease->Complete(ticket.status());
    scope.Finish(ticket.status());
    return ticket.status();
  }
  std::lock_guard<std::mutex> lock(submit_mu_);
  Result<etl::ExecutionReport> report = [&]() -> Result<etl::ExecutionReport> {
    if (!warehouse_.has_generation()) {
      return Status::NotFound(
          "no published warehouse generation to refresh — run DeployServing "
          "first");
    }
    QUARRY_NAMED_SPAN(span, "quarry.refresh_serving");
    QUARRY_SPAN_ATTR(span, "request_id", static_cast<int64_t>(scope.id()));
    if (!TenantId(ctx).empty()) {
      QUARRY_SPAN_ATTR(span, "tenant", TenantId(ctx));
    }
    BuildInFlight build(&serving_builds_in_flight_);
    // Clone-merge-publish: readers keep serving generation N from their
    // pins while the loaders merge the source delta into the clone.
    std::unique_ptr<storage::Database> scratch = warehouse_.BeginBuild();
    deployer::Deployer dep(source_, scratch.get());
    QUARRY_ASSIGN_OR_RETURN(
        etl::ExecutionReport result,
        dep.Refresh(design_->flow(), {}, ctx, config_.etl_exec));
    auto annex = std::make_shared<const md::MdSchema>(design_->schema());
    const std::string annex_bytes = xml::Write(*annex->ToXml());
    QUARRY_RETURN_NOT_OK(
        warehouse_.Publish(std::move(scratch), std::move(annex), annex_bytes)
            .status());
    return result;
  }();
  if (report.ok()) {
    scope.record().rows = report->rows_processed;
    scope.record().generation = warehouse_.current_generation();
    scope.record().slowest_ops = SlowestOpsFromReport(*report);
  }
  lease->Complete(report.status());
  scope.Finish(report.status());
  return report;
}

Result<QueryResult> Quarry::SubmitQuery(const olap::CubeQuery& query,
                                        const QueryOptions& opts,
                                        const ExecContext* ctx) {
  RequestScope scope("query", &ctx);
  scope.record().lane = "query";
  // Tenant quota gate before the query lane (§11): a flooding tenant burns
  // its own token bucket / in-flight share and is shed with a retry-after
  // hint here, so it never occupies shared queue slots.
  Result<TenantRegistry::Lease> lease = tenants_.Admit(ctx);
  if (!lease.ok()) {
    scope.Finish(lease.status());
    return lease.status();
  }
  auto finish_query = [&scope](const Result<QueryResult>& result) {
    if (result.ok()) {
      scope.record().rows = static_cast<int64_t>(result->data.rows.size());
      scope.record().generation = result->generation;
      scope.record().stale = result->stale;
      if (!result->profile.roots.empty()) {
        scope.record().slowest_ops = SlowestOps(result->profile.roots);
        scope.set_profile_renderer(
            [&result] { return result->profile.ToJson(); });
      }
    }
    scope.Finish(result.status());
  };

  double wait = 0.0;
  Result<AdmissionController::Ticket> ticket =
      query_admission_->Admit(ctx, &wait);
  if (ticket.ok()) {
    scope.set_admission_wait(wait);
    Result<QueryResult> result = ExecutePinnedQuery(
        query, /*stale=*/false, ctx, opts.collect_profile, wait);
    lease->Complete(result.status());
    finish_query(result);
    return result;
  }
  // Graceful degradation (§9.3): under overload while a publish is pending,
  // an opted-in caller may still be served generation N-1 through the
  // bounded stale lane instead of being turned away.
  if (ticket.status().IsOverloaded() && opts.allow_stale &&
      serving_builds_in_flight_.load(std::memory_order_relaxed) > 0) {
    Result<AdmissionController::Ticket> stale_ticket =
        stale_admission_->Admit(ctx, &wait);
    if (stale_ticket.ok()) {
      scope.record().lane = "stale";
      scope.set_admission_wait(wait);
      Result<QueryResult> stale = ExecutePinnedQuery(
          query, /*stale=*/true, ctx, opts.collect_profile, wait);
      // Nothing to degrade onto (single published generation): surface the
      // original overload, not the fallback's NotFound.
      if (stale.ok() || !stale.status().IsNotFound()) {
        lease->Complete(stale.status());
        finish_query(stale);
        return stale;
      }
      scope.record().lane = "query";
    }
  }
  lease->Complete(ticket.status());
  scope.Finish(ticket.status());
  return ticket.status();
}

Result<QueryResult> Quarry::ExecutePinnedQuery(const olap::CubeQuery& query,
                                               bool stale,
                                               const ExecContext* ctx,
                                               bool collect_profile,
                                               double admission_wait_micros) {
  QUARRY_NAMED_SPAN(span, "quarry.submit_query");
  if (RequestId(ctx) != 0) {
    QUARRY_SPAN_ATTR(span, "request_id",
                     static_cast<int64_t>(RequestId(ctx)));
  }
  if (!TenantId(ctx).empty()) {
    QUARRY_SPAN_ATTR(span, "tenant", TenantId(ctx));
  }
  const auto start = std::chrono::steady_clock::now();
  QUARRY_ASSIGN_OR_RETURN(
      storage::GenerationStore::Pin pin,
      stale ? warehouse_.AcquirePrevious() : warehouse_.Acquire());
  QUARRY_SPAN_ATTR(span, "generation", std::to_string(pin.generation()));
  // The schema snapshot travels with the generation — reading the live
  // design_->schema() here would race with concurrent requirement changes.
  auto schema = std::static_pointer_cast<const md::MdSchema>(pin.annex());
  if (schema == nullptr) {
    return Status::Internal("generation " + std::to_string(pin.generation()) +
                            " was published without a schema annex");
  }
  olap::CubeQueryEngine engine(schema.get(), mapping_.get(), &pin.db());
  olap::QueryProfile query_profile;
  QUARRY_ASSIGN_OR_RETURN(
      etl::Dataset data,
      engine.Execute(query, ctx,
                     collect_profile ? &query_profile : nullptr));
  (stale ? queries_stale_total_ : queries_fresh_total_)->Increment();
  const double total_micros = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  query_micros_->Observe(total_micros);
  QueryResult result;
  result.generation = pin.generation();
  result.stale = stale;
  result.request_id = RequestId(ctx);
  if (collect_profile) {
    result.profile.request_id = result.request_id;
    result.profile.kind = "query";
    result.profile.lane = stale ? "stale" : "query";
    result.profile.generation = pin.generation();
    result.profile.stale = stale;
    result.profile.admission_wait_micros = admission_wait_micros;
    result.profile.total_micros = total_micros;
    result.profile.rows = static_cast<int64_t>(data.rows.size());
    result.profile.roots = std::move(query_profile.plan);
  }
  result.data = std::move(data);
  return result;
}

Result<std::string> Quarry::ExportSchema(const std::string& format) const {
  return repository_.Export(format, *design_->schema().ToXml());
}

Result<std::string> Quarry::ExportFlow(const std::string& format) const {
  return repository_.Export(format, *etl::FlowToXlm(design_->flow()));
}

}  // namespace quarry::core
