#ifndef QUARRY_STORAGE_TABLE_H_
#define QUARRY_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/chunk.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace quarry::storage {

/// \brief A row-store table with optional hash indexes.
///
/// Rows are validated against the schema on insertion: arity, types (ints
/// are silently widened to DOUBLE columns and vice versa when lossless),
/// NOT NULL constraints and primary-key uniqueness.
class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  /// Deep copy (schema, rows, indexes, PK bookkeeping). Recovery paths
  /// snapshot a table before a risky mutation and restore it on failure.
  std::unique_ptr<Table> Clone() const;

  /// Deterministic content hash over schema and rows; equal state yields
  /// equal fingerprints across runs (used by rollback tests to assert a
  /// restored table is bit-identical to its snapshot).
  uint64_t Fingerprint() const;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Columnar scan: the table's rows sliced into typed chunks of at most
  /// `chunk_size` rows each (storage/chunk.h). The chunks snapshot the
  /// current contents — later mutations don't show through. Feeds the
  /// vectorized ETL runtime's Datastore kernel (DESIGN.md §8).
  std::vector<Chunk> ScanChunks(int64_t chunk_size) const;

  /// Validates and appends a row.
  Status Insert(Row row);

  /// Appends many rows; stops at the first failure.
  Status InsertAll(std::vector<Row> rows);

  /// Appends a column to the schema (ALTER TABLE ADD COLUMN): existing
  /// rows get NULL, so the column must be nullable.
  Status AddColumn(Column column);

  /// Builds (or rebuilds) a hash index over the given columns.
  Status CreateIndex(const std::vector<std::string>& columns);

  /// True if an index over exactly these columns exists.
  bool HasIndex(const std::vector<std::string>& columns) const;

  /// Row positions matching `key` via the index over `columns`.
  /// Fails with NotFound when no such index exists.
  Result<std::vector<size_t>> IndexLookup(
      const std::vector<std::string>& columns, const Row& key) const;

  /// Full-scan lookup of rows where column `name` SameAs `value`.
  std::vector<size_t> ScanEquals(const std::string& column,
                                 const Value& value) const;

  /// Removes all rows (indexes stay defined but empty).
  void Truncate();

  /// Overwrites one cell in place. Refuses primary-key and indexed columns
  /// (their hashes are baked into the index structures) and validates the
  /// new value against the column's type and nullability. Used by the ETL
  /// loader's merge semantics (fill NULLs of an existing row on key match).
  Status SetCell(size_t row, size_t column, Value value);

 private:
  struct RowKeyHash {
    size_t operator()(const Row& r) const { return HashRow(r); }
  };
  struct RowKeyEq {
    bool operator()(const Row& a, const Row& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].SameAs(b[i])) return false;
      }
      return true;
    }
  };
  using HashIndex = std::unordered_map<Row, std::vector<size_t>, RowKeyHash,
                                       RowKeyEq>;

  struct Index {
    std::vector<std::string> columns;
    std::vector<size_t> positions;
    HashIndex map;
  };

  Status ValidateAndCoerce(Row* row) const;
  Row ExtractKey(const Row& row, const std::vector<size_t>& positions) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<Index> indexes_;
  // Primary-key uniqueness check; empty when the table has no PK.
  HashIndex pk_set_;
  std::vector<size_t> pk_positions_;
};

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_TABLE_H_
