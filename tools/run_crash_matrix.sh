#!/usr/bin/env bash
# Runs the robustness suites — the fault-injection matrix (`-L fault`) and
# the durability crash matrix (`-L crash`) — in a dedicated ASan-instrumented
# build, so the QUARRY_SANITIZE wiring is actually exercised and every
# injected crash/recovery path is checked for memory errors too.
#
# The crash label covers both durable substrates: the docstore WAL
# (wal_crash_test, docs/ROBUSTNESS.md §6) and the warehouse generation
# store (generation_persist_test, §10) — the latter's kill-and-recover
# matrix exercises every storage.generation.persist.* / recover.* fault
# site. New crash/fault tests are picked up automatically via the labels.
#
# Each matrix entry (ctest test) runs individually so one failure cannot
# mask another: the script prints a per-entry pass/fail summary at the end
# and exits non-zero if any entry failed.
#
# Usage: tools/run_crash_matrix.sh [build-dir] [sanitizer]
#   build-dir  defaults to build-asan (kept separate from the plain build)
#   sanitizer  defaults to address ('undefined' also works)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
sanitizer="${2:-address}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQUARRY_SANITIZE="${sanitizer}"
cmake --build "${build_dir}" -j

# abort_on_error makes an ASan report fail the ctest run instead of only
# printing; detect_leaks catches WAL fds / buffers dropped on crash paths.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"

# Enumerate the matrix entries; `ctest -N` prints lines like
# "  Test  #4: wal_crash_test" (the '#' column is space-aligned).
mapfile -t entries < <(ctest --test-dir "${build_dir}" -L 'fault|crash' -N |
  sed -n 's/^ *Test *#[0-9]*: //p')
if [ "${#entries[@]}" -eq 0 ]; then
  echo "run_crash_matrix: no tests matched -L 'fault|crash'" >&2
  exit 1
fi

declare -a results=()
failures=0
for entry in "${entries[@]}"; do
  # Individual entries must not abort the loop (set -e): capture the exit
  # code explicitly and keep going so the summary covers every entry.
  if ctest --test-dir "${build_dir}" -R "^${entry}\$" --output-on-failure; then
    results+=("PASS ${entry}")
  else
    results+=("FAIL ${entry}")
    failures=$((failures + 1))
  fi
done

echo
echo "==== crash matrix summary (${sanitizer} sanitizer) ===="
for line in "${results[@]}"; do
  echo "  ${line}"
done
echo "  ${#entries[@]} entries, ${failures} failed"

if [ "${failures}" -gt 0 ]; then
  exit 1
fi
