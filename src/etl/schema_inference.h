#ifndef QUARRY_ETL_SCHEMA_INFERENCE_H_
#define QUARRY_ETL_SCHEMA_INFERENCE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "etl/flow.h"

namespace quarry::etl {

/// Column lists of the source tables a flow may extract from.
using TableColumns = std::map<std::string, std::vector<std::string>>;

/// One aggregate of an Aggregation node's "aggs" parameter.
struct AggSpec {
  std::string function;  ///< SUM, AVG, MIN, MAX, COUNT
  std::string input;     ///< Column name; "*" only for COUNT.
  std::string output;    ///< Result column name.
};

/// Parses "SUM(x) AS sx;AVG(y) AS ay;COUNT(*) AS n".
Result<std::vector<AggSpec>> ParseAggSpecs(const std::string& text);

/// Renders specs back to the parameter encoding.
std::string AggSpecsToString(const std::vector<AggSpec>& specs);

/// \brief Computes the output column list of every node in `flow`.
///
/// Needed by the equivalence rules (to decide which join side a selection
/// may be pushed to), by the executor (to bind expressions), and by flow
/// validation. Fails when an operator references a column its input does
/// not provide, when a join would produce duplicate column names, or when
/// union inputs disagree.
Result<std::map<std::string, std::vector<std::string>>> InferColumns(
    const Flow& flow, const TableColumns& sources);

}  // namespace quarry::etl

#endif  // QUARRY_ETL_SCHEMA_INFERENCE_H_
