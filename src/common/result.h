#ifndef QUARRY_COMMON_RESULT_H_
#define QUARRY_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace quarry {

/// \brief Either a value of type T or a non-OK Status.
///
/// The moral equivalent of arrow::Result / absl::StatusOr. A Result holding
/// an OK status is a logic error and is normalized to kInternal.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// Returns OK when holding a value, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(state_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or, when holding an error, the given fallback.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> state_;
};

/// Evaluates an expression yielding Result<T>; on error returns the Status,
/// otherwise assigns the unwrapped value to `lhs` (which must be declared by
/// the caller, e.g. `QUARRY_ASSIGN_OR_RETURN(auto x, MakeX());`).
#define QUARRY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define QUARRY_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define QUARRY_ASSIGN_OR_RETURN_CONCAT(a, b) \
  QUARRY_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define QUARRY_ASSIGN_OR_RETURN(lhs, expr)                                  \
  QUARRY_ASSIGN_OR_RETURN_IMPL(                                             \
      QUARRY_ASSIGN_OR_RETURN_CONCAT(_quarry_result_, __LINE__), lhs, expr)

}  // namespace quarry

#endif  // QUARRY_COMMON_RESULT_H_
