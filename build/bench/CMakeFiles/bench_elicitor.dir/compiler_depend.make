# Empty compiler generated dependencies file for bench_elicitor.
# This may be replaced when dependencies are built.
