#ifndef QUARRY_ONTOLOGY_ONTOLOGY_H_
#define QUARRY_ONTOLOGY_ONTOLOGY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"
#include "xml/xml.h"

namespace quarry::ontology {

/// How instances of the `from` concept of an association relate to instances
/// of its `to` concept. kManyToOne means each `from` instance maps to exactly
/// one `to` instance (the step from→to is *functional*); kOneToMany is the
/// inverse; kOneToOne is functional both ways; kManyToMany neither.
///
/// Functional steps are what make a concept usable as an aggregation level:
/// MD integrity (summarizability) requires fact→level paths to be
/// functional at every hop [Mazón et al., ref 9 in the paper].
enum class Multiplicity {
  kOneToOne,
  kManyToOne,
  kOneToMany,
  kManyToMany,
};

const char* MultiplicityToString(Multiplicity m);
Result<Multiplicity> MultiplicityFromString(const std::string& text);

/// A class of the domain (e.g. Lineitem, Part, Nation).
struct Concept {
  std::string id;         ///< Unique; doubles as the display name.
  std::string parent_id;  ///< Superclass ("" when none).
};

/// A datatype property (attribute) of a concept.
struct DataProperty {
  std::string id;  ///< "<concept>.<name>", unique.
  std::string concept_id;
  std::string name;
  storage::DataType type = storage::DataType::kString;

  bool is_numeric() const {
    return type == storage::DataType::kInt64 ||
           type == storage::DataType::kDouble;
  }
};

/// An object property (binary association) between two concepts.
struct Association {
  std::string id;  ///< Unique.
  std::string from_concept;
  std::string to_concept;
  Multiplicity multiplicity = Multiplicity::kManyToOne;
};

/// One hop of a path through the ontology graph.
struct PathStep {
  std::string association_id;
  std::string from_concept;  ///< Concept the step leaves (traversal order).
  std::string to_concept;    ///< Concept the step arrives at.
  bool forward = true;       ///< True when traversed in declared direction.
};

/// \brief The domain ontology capturing the data sources (paper §2.5).
///
/// Quarry uses the ontology to let non-expert users phrase requirements in
/// business vocabulary, to validate the MD role of each requirement element,
/// and to drive integration matching. This class stores the concept
/// taxonomy, datatype properties and associations, and answers the graph
/// queries the rest of the system needs — most importantly *functional
/// reachability* (to-one paths).
class Ontology {
 public:
  Ontology() = default;
  explicit Ontology(std::string name) : name_(std::move(name)) {}

  Ontology(const Ontology&) = delete;
  Ontology& operator=(const Ontology&) = delete;
  Ontology(Ontology&&) = default;
  Ontology& operator=(Ontology&&) = default;

  const std::string& name() const { return name_; }

  // -- construction --------------------------------------------------------

  Status AddConcept(const std::string& id, const std::string& parent_id = "");

  Status AddDataProperty(const std::string& concept_id,
                         const std::string& name, storage::DataType type);

  Status AddAssociation(const std::string& id, const std::string& from,
                        const std::string& to, Multiplicity multiplicity);

  // -- lookups --------------------------------------------------------------

  bool HasConcept(const std::string& id) const;
  Result<Concept> GetConcept(const std::string& id) const;
  Result<DataProperty> GetProperty(const std::string& property_id) const;
  Result<Association> GetAssociation(const std::string& id) const;

  std::vector<Concept> concepts() const;
  std::vector<Association> associations() const;

  /// Datatype properties declared on `concept_id` (inherited properties of
  /// superclasses included last).
  std::vector<DataProperty> PropertiesOf(const std::string& concept_id) const;

  /// Associations with `concept_id` on either end.
  std::vector<Association> AssociationsOf(const std::string& concept_id) const;

  /// True when `descendant` equals `ancestor` or is (transitively) a
  /// subclass of it.
  bool IsSubclassOf(const std::string& descendant,
                    const std::string& ancestor) const;

  size_t num_concepts() const { return concepts_.size(); }
  size_t num_properties() const { return properties_.size(); }
  size_t num_associations() const { return associations_.size(); }

  // -- graph analysis -------------------------------------------------------

  /// Shortest functional (to-one at every hop) path from `from` to `to`.
  /// Fails with Unsatisfiable when none exists.
  Result<std::vector<PathStep>> FindFunctionalPath(const std::string& from,
                                                   const std::string& to)
      const;

  /// Every concept reachable from `from` via functional steps, with the
  /// number of hops; excludes `from` itself. Sorted by (hops, id).
  std::vector<std::pair<std::string, int>> FunctionallyReachable(
      const std::string& from) const;

  /// True when a single functional hop from→to exists.
  bool HasFunctionalStep(const std::string& from, const std::string& to) const;

  // -- serialization --------------------------------------------------------

  /// XML form (the repo's OWL stand-in; see DESIGN.md).
  std::unique_ptr<xml::Element> ToXml() const;
  static Result<Ontology> FromXml(const xml::Element& root);

 private:
  std::vector<PathStep> FunctionalSteps(const std::string& from) const;

  std::string name_;
  std::map<std::string, Concept> concepts_;
  std::map<std::string, DataProperty> properties_;
  std::map<std::string, Association> associations_;
  // Adjacency indexes so per-concept queries (PropertiesOf,
  // AssociationsOf, functional-step expansion) stay O(degree) instead of
  // O(|ontology|); keeps the Elicitor interactive on large domain models.
  std::map<std::string, std::vector<std::string>> properties_by_concept_;
  std::map<std::string, std::vector<std::string>> associations_by_concept_;
};

}  // namespace quarry::ontology

#endif  // QUARRY_ONTOLOGY_ONTOLOGY_H_
