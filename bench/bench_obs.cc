// Observability-layer benchmarks (docs/OBSERVABILITY.md,
// BENCH_observability.json): the cost of one span enter/exit (recorder
// enabled and disabled), counter / histogram increments (cached pointer vs
// registry lookup), and the end-to-end overhead tracing adds to a
// representative ETL run. Build once more with -DQUARRY_DISABLE_TRACING=ON
// and rerun BM_EtlRun to get the compiled-out number.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/database.h"

namespace {

using quarry::etl::Executor;
using quarry::etl::Flow;
using quarry::etl::Node;
using quarry::etl::OpType;
using quarry::obs::MetricsRegistry;
using quarry::obs::TraceRecorder;
using quarry::storage::Database;
using quarry::storage::Value;

// ---- span cost ------------------------------------------------------------

void BM_SpanEnabled(benchmark::State& state) {
  TraceRecorder::Instance().Start(1 << 20);
  for (auto _ : state) {
    QUARRY_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  TraceRecorder::Instance().Stop();
}
BENCHMARK(BM_SpanEnabled);

void BM_SpanEnabledWithAttrs(benchmark::State& state) {
  TraceRecorder::Instance().Start(1 << 20);
  for (auto _ : state) {
    QUARRY_NAMED_SPAN(span, "bench.span");
    QUARRY_SPAN_ATTR(span, "rows_in", int64_t{128});
    QUARRY_SPAN_ATTR(span, "rows_out", int64_t{64});
    benchmark::ClobberMemory();
  }
  TraceRecorder::Instance().Stop();
}
BENCHMARK(BM_SpanEnabledWithAttrs);

/// The cost every instrumented call site pays when nobody is tracing —
/// one relaxed atomic load per span.
void BM_SpanDisabled(benchmark::State& state) {
  TraceRecorder::Instance().Stop();
  for (auto _ : state) {
    QUARRY_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

// ---- metric cost ----------------------------------------------------------

void BM_CounterIncrementCached(benchmark::State& state) {
  quarry::obs::Counter& counter = MetricsRegistry::Instance().counter(
      "bench_cached_counter_total", "bench");
  for (auto _ : state) {
    counter.Increment();
  }
}
BENCHMARK(BM_CounterIncrementCached);

/// Worst case: registry lookup (mutex + map) on every increment. Hot paths
/// avoid this by caching the reference, as every call site in src/ does.
void BM_CounterIncrementLookup(benchmark::State& state) {
  for (auto _ : state) {
    MetricsRegistry::Instance()
        .counter("bench_lookup_counter_total", "bench")
        .Increment();
  }
}
BENCHMARK(BM_CounterIncrementLookup);

void BM_HistogramObserve(benchmark::State& state) {
  quarry::obs::Histogram& histogram = MetricsRegistry::Instance().histogram(
      "bench_histogram_micros", "bench");
  double v = 0;
  for (auto _ : state) {
    histogram.Observe(v);
    v += 1.5;
    if (v > 1e7) v = 0;
  }
}
BENCHMARK(BM_HistogramObserve);

// ---- end-to-end ETL overhead ----------------------------------------------

Node MakeNode(const std::string& id, OpType type,
              std::map<std::string, std::string> params) {
  Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

std::unique_ptr<Database> MakeSource(int rows) {
  auto db = std::make_unique<Database>("src");
  quarry::storage::TableSchema sales("sales");
  if (!sales.AddColumn({"id", quarry::storage::DataType::kInt64, false}).ok())
    std::abort();
  if (!sales.AddColumn({"product", quarry::storage::DataType::kString, true})
           .ok())
    std::abort();
  if (!sales.AddColumn({"qty", quarry::storage::DataType::kInt64, true}).ok())
    std::abort();
  auto table = db->CreateTable(sales);
  if (!table.ok()) std::abort();
  for (int i = 0; i < rows; ++i) {
    if (!(*table)
             ->Insert({Value::Int(i),
                       Value::String("p" + std::to_string(i % 50)),
                       Value::Int(i % 7)})
             .ok())
      std::abort();
  }
  return db;
}

Flow MakeFlow() {
  Flow flow("bench");
  auto add = [&flow](Node node) {
    if (!flow.AddNode(std::move(node)).ok()) std::abort();
  };
  auto edge = [&flow](const std::string& a, const std::string& b) {
    if (!flow.AddEdge(a, b).ok()) std::abort();
  };
  add(MakeNode("ds", OpType::kDatastore, {{"table", "sales"}}));
  add(MakeNode("ex", OpType::kExtraction, {{"table", "sales"}}));
  add(MakeNode("sel", OpType::kSelection, {{"predicate", "qty >= 1"}}));
  add(MakeNode("fn", OpType::kFunction,
               {{"expr", "qty * 2"}, {"column", "qty2"}}));
  add(MakeNode("ag", OpType::kAggregation,
               {{"group", "product"}, {"aggs", "SUM(qty2) AS total"}}));
  add(MakeNode("load", OpType::kLoader, {{"table", "out"}}));
  edge("ds", "ex");
  edge("ex", "sel");
  edge("sel", "fn");
  edge("fn", "ag");
  edge("ag", "load");
  return flow;
}

/// A representative 6-operator flow over `range(0)` rows; range(1) selects
/// tracing runtime-off (0) or runtime-on (1). The relative delta between
/// the two is the headline overhead number; rebuilding with
/// -DQUARRY_DISABLE_TRACING=ON gives the compiled-out floor.
void BM_EtlRun(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const bool tracing = state.range(1) != 0;
  std::unique_ptr<Database> source = MakeSource(rows);
  Flow flow = MakeFlow();
  if (tracing) {
    TraceRecorder::Instance().Start(1 << 20);
  } else {
    TraceRecorder::Instance().Stop();
  }
  for (auto _ : state) {
    // Restart per iteration so the span buffer never fills and every run
    // records the same number of spans.
    if (tracing) TraceRecorder::Instance().Start(1 << 20);
    Database target("dw");
    Executor executor(source.get(), &target);
    auto report = executor.Run(flow);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->total_millis);
  }
  TraceRecorder::Instance().Stop();
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_EtlRun)
    ->ArgsProduct({{1000, 10000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
