#ifndef QUARRY_STORAGE_CHUNK_H_
#define QUARRY_STORAGE_CHUNK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/value.h"

namespace quarry::storage {

/// \brief A typed, immutable column slice: the unit of vectorized execution
/// (DESIGN.md §8).
///
/// A segment stores one column's values for a contiguous run of rows. When
/// every non-NULL value shares one runtime type the payload is a plain
/// typed vector (tight loops, no variant dispatch) plus an optional null
/// mask; columns that genuinely mix types — e.g. a SUM output whose groups
/// split between INT and DOUBLE — fall back to a `std::vector<Value>`
/// (Rep::kMixed). Either way `At(i)` reconstructs the original Value
/// exactly, including NULLs, so row-at-a-time and chunked execution produce
/// byte-identical tables (the three-way differential harness depends on
/// this round-trip).
class ValueSegment {
 public:
  enum class Rep { kBool, kInt64, kDouble, kString, kDate, kMixed };

  ValueSegment() = default;

  /// Segment over column `column` of rows [begin, end).
  static ValueSegment FromRows(const std::vector<Row>& rows, size_t column,
                               size_t begin, size_t end);

  /// Segment over a freshly computed value vector (takes ownership).
  static ValueSegment FromValues(std::vector<Value> values);

  size_t size() const { return size_; }
  Rep rep() const { return rep_; }
  bool has_nulls() const { return !nulls_.empty(); }
  bool IsNull(size_t i) const { return !nulls_.empty() && nulls_[i] != 0; }

  /// Exact reconstruction of the value at physical row `i`.
  Value At(size_t i) const;

  /// Typed payloads; valid only for the matching rep. NULL slots hold
  /// zero values — readers must consult IsNull first.
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<int32_t>& dates() const { return dates_; }
  /// Rep::kMixed payload.
  const std::vector<Value>& values() const { return values_; }

  /// New segment holding this segment's values at `positions`, in order.
  ValueSegment Gather(const std::vector<uint32_t>& positions) const;

 private:
  Rep rep_ = Rep::kInt64;  ///< An all-NULL segment stays kInt64 (arbitrary).
  size_t size_ = 0;
  std::vector<uint8_t> nulls_;  ///< Empty = no NULLs in this segment.
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<int32_t> dates_;
  std::vector<Value> values_;
};

/// \brief A horizontal partition: aligned segments (one per column) over the
/// same physical rows, plus an optional selection vector.
///
/// Segments are shared immutably, so projection is a pointer copy and a
/// selection just attaches a position list — neither touches the data.
/// `num_rows()` counts *live* rows (selection applied); `capacity()` is the
/// physical segment length. Live row `i` maps to physical row
/// `PhysicalRow(i)`; with no selection the mapping is the identity.
class Chunk {
 public:
  using SegmentPtr = std::shared_ptr<const ValueSegment>;
  using SelectionPtr = std::shared_ptr<const std::vector<uint32_t>>;

  Chunk() = default;
  explicit Chunk(std::vector<SegmentPtr> segments,
                 SelectionPtr selection = nullptr)
      : segments_(std::move(segments)), selection_(std::move(selection)) {}

  size_t num_columns() const { return segments_.size(); }
  size_t capacity() const {
    return segments_.empty() ? 0 : segments_[0]->size();
  }
  size_t num_rows() const {
    return selection_ != nullptr ? selection_->size() : capacity();
  }
  bool has_selection() const { return selection_ != nullptr; }
  const SelectionPtr& selection() const { return selection_; }

  const std::vector<SegmentPtr>& segments() const { return segments_; }
  const SegmentPtr& segment_ptr(size_t c) const { return segments_[c]; }
  const ValueSegment& segment(size_t c) const { return *segments_[c]; }

  uint32_t PhysicalRow(size_t live) const {
    return selection_ != nullptr ? (*selection_)[live]
                                 : static_cast<uint32_t>(live);
  }

  /// Value of column `c` at *live* row `live`.
  Value ValueAt(size_t c, size_t live) const {
    return segments_[c]->At(PhysicalRow(live));
  }

  /// Appends the live rows, in order, as materialized Rows.
  void AppendRowsTo(std::vector<Row>* out) const;

 private:
  std::vector<SegmentPtr> segments_;
  SelectionPtr selection_;
};

/// One chunk over columns [0, num_columns) of rows [begin, end).
Chunk MakeChunk(const std::vector<Row>& rows, size_t num_columns,
                size_t begin, size_t end);

/// Splits `rows` into ceil(n / chunk_size) chunks of at most `chunk_size`
/// rows each (the last one may be partial). `chunk_size` must be >= 1.
std::vector<Chunk> ChunkRows(const std::vector<Row>& rows,
                             size_t num_columns, int64_t chunk_size);

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_CHUNK_H_
