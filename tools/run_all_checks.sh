#!/usr/bin/env bash
# The whole pre-merge gauntlet in one command:
#   1. tier-1    — plain build + full ctest suite (the seed contract)
#   2. tsan      — concurrency slice under ThreadSanitizer (tools/run_tsan.sh)
#   3. crash     — fault + crash matrices under ASan (tools/run_crash_matrix.sh)
#   4. recovery  — warehouse kill-and-recover matrix, plain build (fast
#                  re-run of the §10 crash surface outside the ASan gate)
#   5. vectorized — three-way differential harness (serial vs parallel vs
#                  vectorized chunk runtime, byte-identical targets) plus
#                  the bench's --smoke mode, which re-proves fingerprint
#                  equality on real TPC-H data and that the chunk kernels
#                  actually ran (DESIGN.md §8)
#   6. metrics   — two-way metric/doc lint (tools/check_metrics_doc.sh)
#   7. http      — telemetry-endpoint smoke: start quarry_httpd, curl all
#                  six endpoints, validate JSON with the in-tree parser
#                  (tools/run_http_smoke.sh)
#   8. load      — deterministic two-tenant sustained-load smoke: a
#                  closed-loop flooder vs a high-priority tenant, asserting
#                  the §11 priority-isolation invariants
#                  (tools/run_load_smoke.sh)
#
# Every step runs even after an earlier one fails, so one broken gate cannot
# mask another; the script prints a per-step PASS/FAIL summary at the end and
# exits non-zero if anything failed. The full-size ASan soak
# (tools/run_soak.sh) is not in the default gauntlet — the bounded soak
# already rides both the tier-1 suite and the tsan slice — but
# RUN_ALL_CHECKS_SOAK=1 adds it as a final step.
#
# Usage: tools/run_all_checks.sh [build-dir]
#   build-dir  defaults to build (the sanitizer scripts keep their own dirs)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

declare -a step_names=()
declare -a step_results=()
failed=0

run_step() {
  local name="$1"
  shift
  echo
  echo "==== ${name}: $* ===="
  if "$@"; then
    step_results+=("PASS")
  else
    step_results+=("FAIL")
    failed=1
  fi
  step_names+=("${name}")
}

tier1() {
  cmake -B "${build_dir}" -S "${repo_root}" &&
    cmake --build "${build_dir}" -j &&
    ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

# The warehouse-recovery crash matrix re-run on the plain build: the ASan
# crash step already covers it, but this keeps a fast, sanitizer-free
# repro of the §10 kill-and-recover surface in the gauntlet even when the
# ASan build is what broke.
warehouse_recovery() {
  ctest --test-dir "${build_dir}" -R '^generation_persist_test$' \
    --output-on-failure
}

# Three-way differential harness + bench smoke (DESIGN.md §8): the filter
# pins the vectorized equivalence suite so a rename that silently empties it
# shows up as a 0-test run in this step's output, and the bench smoke proves
# fingerprint equality on TPC-H data with the chunk kernels verifiably
# engaged (it exits non-zero when they never ran).
vectorized_differential() {
  "${build_dir}/tests/etl_parallel_test" \
    --gtest_filter='EtlVectorizedTest.*' &&
    "${build_dir}/tests/property_test" \
      --gtest_filter='*VectorizedProperty*'
}

vectorized_bench_smoke() {
  "${build_dir}/bench/bench_etl_vectorized" --smoke
}

run_step "tier-1 build+ctest" tier1
run_step "tsan slice" "${repo_root}/tools/run_tsan.sh"
run_step "crash matrix (asan)" "${repo_root}/tools/run_crash_matrix.sh"
run_step "warehouse recovery" warehouse_recovery
run_step "vectorized differential" vectorized_differential
run_step "vectorized bench smoke" vectorized_bench_smoke
run_step "metrics doc lint" "${repo_root}/tools/check_metrics_doc.sh"
run_step "http smoke" "${repo_root}/tools/run_http_smoke.sh" "${build_dir}"
run_step "load smoke" "${repo_root}/tools/run_load_smoke.sh" "${build_dir}"
if [[ "${RUN_ALL_CHECKS_SOAK:-0}" == "1" ]]; then
  run_step "serving soak (asan)" "${repo_root}/tools/run_soak.sh"
fi

echo
echo "==== run_all_checks summary ===="
for i in "${!step_names[@]}"; do
  printf '  %-22s %s\n' "${step_names[$i]}" "${step_results[$i]}"
done
if [[ "${failed}" -ne 0 ]]; then
  echo "==== run_all_checks FAILED ===="
  exit 1
fi
echo "==== run_all_checks passed ===="
