file(REMOVE_RECURSE
  "CMakeFiles/integrator_test.dir/integrator_test.cc.o"
  "CMakeFiles/integrator_test.dir/integrator_test.cc.o.d"
  "integrator_test"
  "integrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
