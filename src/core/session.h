#ifndef QUARRY_CORE_SESSION_H_
#define QUARRY_CORE_SESSION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "core/quarry.h"

namespace quarry::core {

/// \brief Design-session persistence over the metadata repository.
///
/// The paper's Communication & Metadata layer "serves as a repository for
/// the metadata that are produced and used during the DW design lifecycle"
/// — which is exactly what makes a design session restorable: the domain
/// ontology, the source schema mappings and every accepted xRQ requirement
/// are sufficient to rebuild the unified design deterministically.

/// Dumps the instance's metadata repository (ontology, mappings, xRQ
/// stream, partial + unified designs) as JSON collections under `dir`
/// (which must exist). The snapshot is atomic (docs/ROBUSTNESS.md §6): a
/// crash mid-save leaves the previous session state fully loadable.
Status SaveSession(const Quarry& quarry, const std::string& dir);

/// Restores a session saved with SaveSession: re-creates the Quarry over
/// `source` from the stored ontology + mappings, then re-interprets and
/// re-integrates the stored requirements in their original order. The
/// resulting unified design is byte-identical to the saved one (the whole
/// pipeline is deterministic), which Load verifies against the stored
/// unified xMD. Loading performs startup recovery — WAL replay over the
/// last committed snapshot, torn-tail discard, quarantine of corrupt
/// collection files — and reports it via `stats` (also surfaced as
/// Quarry::recovery_stats() on the returned instance).
Result<std::unique_ptr<Quarry>> LoadSession(
    const std::string& dir, const storage::Database* source,
    QuarryConfig config = {}, docstore::RecoveryStats* stats = nullptr);

/// LoadSession + Quarry::EnableDurability(dir): restores the session and
/// keeps it crash-safe on the same directory, so every subsequent design
/// step is WAL-logged and the session survives a kill at any point.
Result<std::unique_ptr<Quarry>> OpenDurableSession(
    const std::string& dir, const storage::Database* source,
    QuarryConfig config = {}, docstore::RecoveryStats* stats = nullptr);

/// Subdirectory of a session directory holding the durable warehouse
/// generations (docs/ROBUSTNESS.md §10). The docstore scan ignores
/// subdirectories, so both substrates share one session directory.
inline constexpr char kWarehouseSubdir[] = "warehouse";

/// OpenDurableSession + Quarry::EnableServingDurability(dir + "/warehouse"):
/// the full cold-start path. Metadata recovery rebuilds the unified design;
/// warehouse recovery republishes the newest intact generation, so
/// SubmitQuery serves immediately — no ETL rebuild between restart and the
/// first answered query. `report` (nullable) receives both recovery halves
/// (also surfaced as Quarry::recovery_report() on the returned instance).
Result<std::unique_ptr<Quarry>> OpenDurableServingSession(
    const std::string& dir, const storage::Database* source,
    QuarryConfig config = {}, RecoveryReport* report = nullptr);

}  // namespace quarry::core

#endif  // QUARRY_CORE_SESSION_H_
