file(REMOVE_RECURSE
  "CMakeFiles/bench_md_integration.dir/bench_md_integration.cc.o"
  "CMakeFiles/bench_md_integration.dir/bench_md_integration.cc.o.d"
  "bench_md_integration"
  "bench_md_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_md_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
