#ifndef QUARRY_REQUIREMENTS_QUERY_PARSER_H_
#define QUARRY_REQUIREMENTS_QUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "requirements/requirement.h"

namespace quarry::req {

/// \brief Parses the textual analytical-query notation business users write
/// (an import parser for the Communication & Metadata layer, paper §2.5).
///
/// Grammar (case-insensitive keywords, one statement):
///
///   ANALYZE <id> [AS "<display name>"] [ON <FocusConcept>]
///   MEASURE <name> = <expression> [SUM|AVG|MIN|MAX|COUNT]
///           (, <name> = <expression> [agg])*
///   BY <Concept.property> (, <Concept.property>)*
///   [WHERE <Concept.property> <op> <literal>
///          (AND <Concept.property> <op> <literal>)*]
///
/// Example (the paper's introduction sentence, as a query):
///
///   ANALYZE revenue ON Lineitem
///   MEASURE revenue = Lineitem.l_extendedprice * (1 - Lineitem.l_discount)
///   BY Part.p_name, Supplier.s_name
///   WHERE Nation.n_name = 'SPAIN'
///
/// Literals: numbers, 'strings', dates as 'YYYY-MM-DD' (typed by the
/// property at interpretation time).
Result<InformationRequirement> ParseRequirementQuery(std::string_view text);

/// Renders a requirement back to the notation (round-trips through
/// ParseRequirementQuery).
std::string RequirementQueryToString(const InformationRequirement& ir);

}  // namespace quarry::req

#endif  // QUARRY_REQUIREMENTS_QUERY_PARSER_H_
