#include <gtest/gtest.h>

#include "mdschema/complexity.h"
#include "mdschema/md_schema.h"
#include "mdschema/validator.h"
#include "ontology/tpch_ontology.h"
#include "xml/xml.h"

namespace quarry::md {
namespace {

using storage::DataType;

// The paper's Fig. 3/4 running example: revenue per part and supplier,
// sliced by nation.
MdSchema MakeRevenueSchema() {
  MdSchema schema("revenue");
  Dimension part;
  part.name = "Part";
  part.requirement_ids = {"ir_revenue"};
  part.levels.push_back(
      {"Part", "Part", {{"p_name", DataType::kString, "Part.p_name"}}});
  EXPECT_TRUE(schema.AddDimension(part).ok());

  Dimension supplier;
  supplier.name = "Supplier";
  supplier.requirement_ids = {"ir_revenue"};
  Level supplier_level{
      "Supplier", "Supplier",
      {{"s_name", DataType::kString, "Supplier.s_name"}}};
  Level nation_level{"Nation", "Nation",
                     {{"n_name", DataType::kString, "Nation.n_name"}}};
  Level region_level{"Region", "Region",
                     {{"r_name", DataType::kString, "Region.r_name"}}};
  supplier.levels = {supplier_level, nation_level, region_level};
  EXPECT_TRUE(schema.AddDimension(supplier).ok());

  Fact fact;
  fact.name = "fact_table_revenue";
  fact.concept_id = "Lineitem";
  fact.requirement_ids = {"ir_revenue"};
  Measure revenue;
  revenue.name = "revenue";
  revenue.expression =
      "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)";
  revenue.aggregation = AggFunc::kSum;
  revenue.requirement_ids = {"ir_revenue"};
  fact.measures.push_back(revenue);
  fact.dimension_refs = {{"Part", "Part"}, {"Supplier", "Supplier"}};
  EXPECT_TRUE(schema.AddFact(fact).ok());
  return schema;
}

TEST(MdSchemaTest, AddAndLookup) {
  MdSchema schema = MakeRevenueSchema();
  EXPECT_TRUE(schema.GetFact("fact_table_revenue").ok());
  EXPECT_TRUE(schema.GetDimension("Part").ok());
  EXPECT_TRUE(schema.GetFact("nope").status().IsNotFound());
  EXPECT_TRUE(schema.AddFact({.name = "fact_table_revenue"})
                  .IsAlreadyExists());
  EXPECT_TRUE(schema.AddDimension({.name = "Part"}).IsAlreadyExists());
}

TEST(MdSchemaTest, FindLevelAndMeasure) {
  MdSchema schema = MakeRevenueSchema();
  const Dimension& d = **schema.GetDimension("Supplier");
  EXPECT_NE(d.FindLevel("Nation"), nullptr);
  EXPECT_EQ(d.FindLevel("Ghost"), nullptr);
  const Fact& f = **schema.GetFact("fact_table_revenue");
  EXPECT_NE(f.FindMeasure("revenue"), nullptr);
  EXPECT_EQ(f.FindMeasure("profit"), nullptr);
  EXPECT_EQ(d.levels[0].IdColumn(), "SupplierID");
}

TEST(MdSchemaTest, RequirementIdsAggregate) {
  MdSchema schema = MakeRevenueSchema();
  EXPECT_EQ(schema.RequirementIds(),
            (std::set<std::string>{"ir_revenue"}));
}

TEST(MdSchemaTest, PruneRequirementEmptiesSchema) {
  MdSchema schema = MakeRevenueSchema();
  size_t removed = schema.PruneRequirement("ir_revenue");
  EXPECT_GT(removed, 0u);
  EXPECT_TRUE(schema.facts().empty());
  EXPECT_TRUE(schema.dimensions().empty());
}

TEST(MdSchemaTest, PruneKeepsSharedElements) {
  MdSchema schema = MakeRevenueSchema();
  // Part dimension and the fact also serve ir2; the measure stays too.
  (*schema.GetMutableDimension("Part"))->requirement_ids.insert("ir2");
  Fact* fact = *schema.GetMutableFact("fact_table_revenue");
  fact->requirement_ids.insert("ir2");
  fact->measures[0].requirement_ids.insert("ir2");
  schema.PruneRequirement("ir_revenue");
  EXPECT_TRUE(schema.GetFact("fact_table_revenue").ok());
  EXPECT_TRUE(schema.GetDimension("Part").ok());
  // Supplier served only ir_revenue but is still referenced by the fact.
  EXPECT_TRUE(schema.GetDimension("Supplier").ok());
}

TEST(MdSchemaTest, PruneDropsFactWhenAllMeasuresGone) {
  MdSchema schema = MakeRevenueSchema();
  Fact* fact = *schema.GetMutableFact("fact_table_revenue");
  fact->requirement_ids.insert("ir2");  // Fact shared, measure not.
  schema.PruneRequirement("ir_revenue");
  // The only measure served ir_revenue exclusively -> fact must go.
  EXPECT_TRUE(schema.GetFact("fact_table_revenue").status().IsNotFound());
}

TEST(MdSchemaTest, PruneDropsUnreferencedLevels) {
  MdSchema schema = MakeRevenueSchema();
  // The Supplier hierarchy's Nation/Region levels serve only ir_geo;
  // the Supplier base level serves ir_revenue (and is fact-referenced).
  Dimension* d = *schema.GetMutableDimension("Supplier");
  d->levels[0].requirement_ids = {"ir_revenue"};
  d->levels[1].requirement_ids = {"ir_geo"};
  d->levels[2].requirement_ids = {"ir_geo"};
  d->requirement_ids = {"ir_revenue", "ir_geo"};
  schema.PruneRequirement("ir_geo");
  const Dimension& after = **schema.GetDimension("Supplier");
  ASSERT_EQ(after.levels.size(), 1u);
  EXPECT_EQ(after.levels[0].name, "Supplier");
  // Pruning the remaining requirement empties the schema.
  schema.PruneRequirement("ir_revenue");
  EXPECT_TRUE(schema.dimensions().empty());
}

TEST(MdSchemaTest, PruneKeepsFactReferencedLevelWithEmptyTrace) {
  MdSchema schema = MakeRevenueSchema();
  Dimension* d = *schema.GetMutableDimension("Part");
  d->levels[0].requirement_ids = {"ir_geo"};  // trace will empty out...
  // ...but the fact still references Part@Part, so the level must stay.
  Fact* fact = *schema.GetMutableFact("fact_table_revenue");
  fact->requirement_ids.insert("ir_other");
  fact->measures[0].requirement_ids.insert("ir_other");
  (*schema.GetMutableDimension("Supplier"))->requirement_ids.insert(
      "ir_other");
  d->requirement_ids.insert("ir_other");
  schema.PruneRequirement("ir_geo");
  const Dimension& after = **schema.GetDimension("Part");
  ASSERT_EQ(after.levels.size(), 1u);
}

TEST(XmdTest, RoundtripPreservesSchema) {
  MdSchema schema = MakeRevenueSchema();
  auto doc = schema.ToXml();
  auto parsed = MdSchema::FromXml(*doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(xml::DeepEqual(*doc, *parsed->ToXml()));
  const Fact& f = **parsed->GetFact("fact_table_revenue");
  EXPECT_EQ(f.measures[0].aggregation, AggFunc::kSum);
  EXPECT_EQ(f.dimension_refs.size(), 2u);
  EXPECT_EQ((**parsed->GetDimension("Supplier")).levels.size(), 3u);
  EXPECT_EQ(f.requirement_ids, (std::set<std::string>{"ir_revenue"}));
}

TEST(XmdTest, RoundtripThroughText) {
  MdSchema schema = MakeRevenueSchema();
  std::string text = xml::Write(*schema.ToXml());
  EXPECT_NE(text.find("<MDschema"), std::string::npos);
  EXPECT_NE(text.find("<name>fact_table_revenue</name>"), std::string::npos);
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok());
  auto parsed = MdSchema::FromXml(**doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->facts().size(), 1u);
}

TEST(XmdTest, RejectsBadDocuments) {
  auto wrong = xml::Parse("<schema/>");
  ASSERT_TRUE(wrong.ok());
  EXPECT_TRUE(MdSchema::FromXml(**wrong).status().IsParseError());
  auto bad_agg = xml::Parse(
      "<MDschema><facts><fact><name>f</name><measures><measure>"
      "<name>m</name><expression>x</expression>"
      "<aggregation>MEDIAN</aggregation></measure></measures></fact></facts>"
      "</MDschema>");
  ASSERT_TRUE(bad_agg.ok());
  EXPECT_TRUE(MdSchema::FromXml(**bad_agg).status().IsParseError());
}

TEST(AggFuncTest, Roundtrip) {
  for (AggFunc f : {AggFunc::kSum, AggFunc::kAvg, AggFunc::kMin, AggFunc::kMax,
                    AggFunc::kCount}) {
    auto parsed = AggFuncFromString(AggFuncToString(f));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_TRUE(AggFuncFromString("avg").ok());  // case-insensitive
  EXPECT_FALSE(AggFuncFromString("median").ok());
}

// --- validator ---------------------------------------------------------------

TEST(ValidatorTest, SoundSchemaPasses) {
  ontology::Ontology onto = ontology::BuildTpchOntology();
  MdSchema schema = MakeRevenueSchema();
  EXPECT_TRUE(Validate(schema, &onto).empty());
  EXPECT_TRUE(CheckSound(schema, &onto).ok());
}

TEST(ValidatorTest, DanglingDimensionRef) {
  ontology::Ontology onto = ontology::BuildTpchOntology();
  MdSchema schema = MakeRevenueSchema();
  (*schema.GetMutableFact("fact_table_revenue"))
      ->dimension_refs.push_back({"Ghost", "Ghost"});
  auto violations = Validate(schema, &onto);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kStructural);
  EXPECT_TRUE(CheckSound(schema, &onto).IsValidationError());
}

TEST(ValidatorTest, FactWithoutMeasuresOrDims) {
  MdSchema schema("s");
  Fact fact;
  fact.name = "empty";
  ASSERT_TRUE(schema.AddFact(fact).ok());
  auto violations = Validate(schema, nullptr);
  EXPECT_EQ(violations.size(), 2u);  // no measures + empty base
}

TEST(ValidatorTest, NonFunctionalFactDimensionPath) {
  ontology::Ontology onto = ontology::BuildTpchOntology();
  MdSchema schema("s");
  Dimension dim;
  dim.name = "Lineitem";
  dim.levels.push_back({"Lineitem", "Lineitem", {}});
  ASSERT_TRUE(schema.AddDimension(dim).ok());
  Fact fact;
  fact.name = "fact_region";  // Region as fact cannot reach Lineitem.
  fact.concept_id = "Region";
  fact.measures.push_back({"m", "x", AggFunc::kSum, true, {}});
  fact.dimension_refs = {{"Lineitem", "Lineitem"}};
  ASSERT_TRUE(schema.AddFact(fact).ok());
  auto violations = Validate(schema, &onto);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kSummarizability) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ValidatorTest, NonFunctionalRollupInHierarchy) {
  ontology::Ontology onto = ontology::BuildTpchOntology();
  MdSchema schema = MakeRevenueSchema();
  // Reverse the Supplier hierarchy: Region -> Nation is one-to-many.
  Dimension* d = *schema.GetMutableDimension("Supplier");
  std::reverse(d->levels.begin(), d->levels.end());
  auto violations = Validate(schema, &onto);
  bool rollup_violation = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kSummarizability) rollup_violation = true;
  }
  EXPECT_TRUE(rollup_violation);
}

TEST(ValidatorTest, NonAdditiveMeasureWithSum) {
  MdSchema schema = MakeRevenueSchema();
  Fact* fact = *schema.GetMutableFact("fact_table_revenue");
  fact->measures[0].additive = false;  // Still SUM -> violation.
  auto violations = Validate(schema, nullptr);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kAggregation);
  fact->measures[0].aggregation = AggFunc::kAvg;
  EXPECT_TRUE(Validate(schema, nullptr).empty());
}

TEST(ValidatorTest, DuplicateDimensionInBase) {
  MdSchema schema = MakeRevenueSchema();
  Fact* fact = *schema.GetMutableFact("fact_table_revenue");
  fact->dimension_refs.push_back({"Part", "Part"});
  auto violations = Validate(schema, nullptr);
  bool base_violation = false;
  for (const auto& v : violations) {
    if (v.kind == ViolationKind::kBase) base_violation = true;
  }
  EXPECT_TRUE(base_violation);
}

TEST(ValidatorTest, HierarchyVisitingConceptTwice) {
  MdSchema schema("s");
  Dimension dim;
  dim.name = "D";
  dim.levels.push_back({"A", "Part", {}});
  dim.levels.push_back({"B", "Part", {}});
  ASSERT_TRUE(schema.AddDimension(dim).ok());
  auto violations = Validate(schema, nullptr);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, ViolationKind::kStructural);
}

TEST(ValidatorTest, NullOntologySkipsGraphChecks) {
  MdSchema schema = MakeRevenueSchema();
  Dimension* d = *schema.GetMutableDimension("Supplier");
  std::reverse(d->levels.begin(), d->levels.end());  // Unsound vs ontology.
  EXPECT_TRUE(Validate(schema, nullptr).empty());    // But structurally fine.
}

// --- complexity ---------------------------------------------------------------

TEST(ComplexityTest, CountsElements) {
  MdSchema schema = MakeRevenueSchema();
  ComplexityReport report = StructuralComplexity(schema);
  EXPECT_EQ(report.facts, 1);
  EXPECT_EQ(report.dimensions, 2);
  EXPECT_EQ(report.levels, 4);
  EXPECT_EQ(report.attributes, 4);
  EXPECT_EQ(report.measures, 1);
  EXPECT_EQ(report.fact_dimension_edges, 2);
  EXPECT_EQ(report.rollup_edges, 2);
  EXPECT_GT(report.score, 0.0);
}

TEST(ComplexityTest, SharedDimensionBeatsDuplicatedOne) {
  MdSchema conformed = MakeRevenueSchema();
  // Second fact reusing the Part dimension.
  Fact f2;
  f2.name = "fact_table_netprofit";
  f2.concept_id = "Lineitem";
  f2.measures.push_back({"netprofit", "e", AggFunc::kSum, true, {}});
  f2.dimension_refs = {{"Part", "Part"}};
  ASSERT_TRUE(conformed.AddFact(f2).ok());

  MdSchema duplicated = MakeRevenueSchema();
  Dimension part2;
  part2.name = "Part_copy";
  part2.levels.push_back(
      {"Part", "Part", {{"p_name", DataType::kString, "Part.p_name"}}});
  ASSERT_TRUE(duplicated.AddDimension(part2).ok());
  Fact f3 = f2;
  f3.dimension_refs = {{"Part_copy", "Part"}};
  ASSERT_TRUE(duplicated.AddFact(f3).ok());

  EXPECT_LT(StructuralComplexity(conformed).score,
            StructuralComplexity(duplicated).score);
}

TEST(ComplexityTest, WeightsAreConfigurable) {
  MdSchema schema = MakeRevenueSchema();
  ComplexityWeights heavy_facts;
  heavy_facts.fact = 100.0;
  ComplexityWeights light;
  EXPECT_GT(StructuralComplexity(schema, heavy_facts).score,
            StructuralComplexity(schema, light).score);
}

}  // namespace
}  // namespace quarry::md
