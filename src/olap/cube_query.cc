#include "olap/cube_query.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/str_util.h"
#include "etl/expr.h"

namespace quarry::olap {

using etl::Flow;
using etl::Node;
using etl::OpType;

namespace {

Node MakeNode(std::string id, OpType type,
              std::map<std::string, std::string> params) {
  Node node;
  node.id = std::move(id);
  node.type = type;
  node.params = std::move(params);
  return node;
}

}  // namespace

Result<Flow> CubeQueryEngine::Compile(const CubeQuery& query) const {
  QUARRY_ASSIGN_OR_RETURN(const md::Fact* fact, schema_->GetFact(query.fact));
  QUARRY_ASSIGN_OR_RETURN(const storage::Table* fact_table,
                          warehouse_->GetTable(query.fact));
  if (query.measures.empty()) {
    return Status::InvalidArgument("cube query requests no measures");
  }
  for (const QueryMeasure& m : query.measures) {
    if (fact->FindMeasure(m.measure) == nullptr) {
      return Status::NotFound("measure '" + m.measure + "' in fact '" +
                              fact->name + "'");
    }
  }

  // Every non-fact column (group attribute or filter input) must be
  // provided by a dimension level referenced by the fact.
  std::set<std::string> wanted_columns(query.group_by.begin(),
                                       query.group_by.end());
  for (const std::string& filter : query.filters) {
    QUARRY_ASSIGN_OR_RETURN(etl::Expr::Ptr predicate, etl::ParseExpr(filter));
    for (const std::string& column : predicate->ReferencedColumns()) {
      wanted_columns.insert(column);
    }
  }
  auto fact_has = [&](const std::string& column) {
    return fact_table->schema().ColumnIndex(column).has_value();
  };
  // concept -> columns it must contribute.
  std::map<std::string, std::set<std::string>> dim_needs;
  for (const std::string& column : wanted_columns) {
    if (fact_has(column)) continue;
    bool found = false;
    for (const md::DimensionRef& ref : fact->dimension_refs) {
      QUARRY_ASSIGN_OR_RETURN(const md::Dimension* dim,
                              schema_->GetDimension(ref.dimension));
      for (const md::Level& level : dim->levels) {
        for (const md::LevelAttribute& attr : level.attributes) {
          if (attr.name == column) {
            dim_needs[level.concept_id].insert(column);
            found = true;
          }
        }
      }
    }
    if (!found) {
      return Status::NotFound("column '" + column +
                              "' is neither a fact column nor a dimension "
                              "attribute reachable from fact '" +
                              fact->name + "'");
    }
  }

  Flow flow("query_" + query.fact);
  QUARRY_RETURN_NOT_OK(flow.AddNode(
      MakeNode("q_fact", OpType::kDatastore, {{"table", query.fact}})));
  std::string current = "q_fact";

  // Join each contributing dimension table. Keys are aliased on the dim
  // side (via Function nodes) so the join output has no duplicate columns.
  for (const auto& [concept_id, columns] : dim_needs) {
    QUARRY_ASSIGN_OR_RETURN(auto cm, mapping_->ForConcept(concept_id));
    std::string dim_table = "dim_" + concept_id;
    std::string ds_id = "q_dim_" + concept_id;
    QUARRY_RETURN_NOT_OK(flow.AddNode(
        MakeNode(ds_id, OpType::kDatastore, {{"table", dim_table}})));
    std::string side = ds_id;
    std::vector<std::string> aliases;
    for (const std::string& key : cm.key_columns) {
      std::string alias = "__" + concept_id + "_" + key;
      std::string fn_id = "q_alias_" + alias;
      QUARRY_RETURN_NOT_OK(flow.AddNode(MakeNode(
          fn_id, OpType::kFunction, {{"column", alias}, {"expr", key}})));
      QUARRY_RETURN_NOT_OK(flow.AddEdge(side, fn_id));
      side = fn_id;
      aliases.push_back(alias);
    }
    std::vector<std::string> projected = aliases;
    for (const std::string& column : columns) {
      if (std::find(projected.begin(), projected.end(), column) ==
          projected.end()) {
        projected.push_back(column);
      }
    }
    std::string proj_id = "q_proj_" + concept_id;
    QUARRY_RETURN_NOT_OK(flow.AddNode(MakeNode(
        proj_id, OpType::kProjection, {{"columns", Join(projected, ",")}})));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(side, proj_id));
    std::string join_id = "q_join_" + concept_id;
    QUARRY_RETURN_NOT_OK(flow.AddNode(
        MakeNode(join_id, OpType::kJoin,
                 {{"left", Join(cm.key_columns, ",")},
                  {"right", Join(aliases, ",")}})));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(current, join_id));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(proj_id, join_id));
    current = join_id;
  }

  for (size_t i = 0; i < query.filters.size(); ++i) {
    std::string sel_id = "q_filter_" + std::to_string(i);
    QUARRY_RETURN_NOT_OK(flow.AddNode(MakeNode(
        sel_id, OpType::kSelection, {{"predicate", query.filters[i]}})));
    QUARRY_RETURN_NOT_OK(flow.AddEdge(current, sel_id));
    current = sel_id;
  }

  // Group + aggregate + emit.
  std::vector<std::string> projected = query.group_by;
  std::vector<std::string> agg_parts;
  for (const QueryMeasure& m : query.measures) {
    if (std::find(projected.begin(), projected.end(), m.measure) ==
        projected.end()) {
      projected.push_back(m.measure);
    }
    std::string alias = m.alias.empty() ? m.measure : m.alias;
    agg_parts.push_back(std::string(md::AggFuncToEtlName(m.function)) + "(" +
                        m.measure + ") AS " + alias);
  }
  QUARRY_RETURN_NOT_OK(flow.AddNode(MakeNode(
      "q_project", OpType::kProjection, {{"columns", Join(projected, ",")}})));
  QUARRY_RETURN_NOT_OK(flow.AddEdge(current, "q_project"));
  QUARRY_RETURN_NOT_OK(
      flow.AddNode(MakeNode("q_agg", OpType::kAggregation,
                            {{"group", Join(query.group_by, ",")},
                             {"aggs", Join(agg_parts, ";")}})));
  QUARRY_RETURN_NOT_OK(flow.AddEdge("q_project", "q_agg"));
  QUARRY_RETURN_NOT_OK(flow.AddNode(
      MakeNode("q_result", OpType::kLoader, {{"table", "__result"}})));
  QUARRY_RETURN_NOT_OK(flow.AddEdge("q_agg", "q_result"));
  return flow;
}

Result<etl::Dataset> CubeQueryEngine::Execute(const CubeQuery& query,
                                              const ExecContext* ctx,
                                              QueryProfile* profile) const {
  QUARRY_RETURN_NOT_OK(CheckContext(ctx, "cube query compile"));
  QUARRY_ASSIGN_OR_RETURN(Flow flow, Compile(query));
  storage::Database scratch("__query");
  etl::Executor executor(warehouse_, &scratch);
  // Fail fast, no retries: a lifecycle error is never retried anyway, and
  // an interactive query prefers surfacing an operator fault over hiding
  // latency in backoff sleeps.
  Result<etl::ExecutionReport> run =
      executor.Run(flow, etl::RetryPolicy{}, nullptr, ctx);
  if (profile != nullptr && run.ok()) {
    // Move, don't copy: the report's per-node stats live on in the profile
    // only (run keeps its status for the check below).
    profile->report = std::move(run).value();
    profile->plan = etl::BuildProfileTrees(flow, profile->report);
  }
  if (!run.ok() && profile != nullptr) {
    // Report whatever the partial run recorded: an empty report still
    // yields the full plan shape (zeroed stats), which is what a failed
    // EXPLAIN ANALYZE should show.
    profile->plan = etl::BuildProfileTrees(flow, profile->report);
  }
  QUARRY_RETURN_NOT_OK(run.status());
  QUARRY_ASSIGN_OR_RETURN(const storage::Table* result,
                          scratch.GetTable("__result"));
  etl::Dataset out;
  for (const storage::Column& c : result->schema().columns()) {
    out.columns.push_back(c.name);
  }
  out.rows = result->rows();
  return out;
}

}  // namespace quarry::olap
