#include "storage/value.h"

#include <charconv>
#include <cstdio>
#include <functional>

#include "common/str_util.h"

namespace quarry::storage {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE PRECISION";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

// Howard Hinnant's days-from-civil algorithm.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153 * (static_cast<unsigned>(m) + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t z, int* year, int* month, int* day) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<DataType> Value::type() const {
  if (is_bool()) return DataType::kBool;
  if (is_int()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  if (is_string()) return DataType::kString;
  if (is_date()) return DataType::kDate;
  return Status::InvalidArgument("NULL has no type");
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

bool Value::SameAs(const Value& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

namespace {

int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  if (v.is_string()) return 3;
  return 4;  // date
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(*this), rb = TypeRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL in ordering
    case 1:
      return (as_bool() ? 1 : 0) - (other.as_bool() ? 1 : 0);
    case 2:
      if (is_int() && other.is_int()) {
        int64_t a = as_int(), b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      return Sign(as_double() - other.as_double());
    case 3: {
      int cmp = as_string().compare(other.as_string());
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    default: {
      int32_t a = as_date_days(), b = other.as_date_days();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

size_t Value::Hash() const {
  std::hash<int64_t> hi;
  std::hash<double> hd;
  std::hash<std::string> hs;
  if (is_null()) return 0x9E3779B9u;
  if (is_bool()) return as_bool() ? 0x5bd1e995u : 0x27d4eb2fu;
  if (is_int()) {
    // Hash ints through double so that 1 and 1.0 land in the same bucket
    // (Compare treats them as equal, so Hash must agree).
    int64_t i = as_int();
    double d = static_cast<double>(i);
    if (static_cast<int64_t>(d) == i) return hd(d);
    return hi(i);
  }
  if (is_double()) return hd(as_double());
  if (is_string()) return hs(as_string());
  return hi(as_date_days()) * 0x100000001B3ull;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", std::get<double>(data_));
    return buf;
  }
  if (is_string()) return as_string();
  int y, m, d;
  CivilFromDays(as_date_days(), &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

Result<Value> Value::Parse(const std::string& text, DataType type) {
  switch (type) {
    case DataType::kBool: {
      if (EqualsIgnoreCase(text, "true") || text == "1") return Bool(true);
      if (EqualsIgnoreCase(text, "false") || text == "0") return Bool(false);
      return Status::ParseError("not a boolean: '" + text + "'");
    }
    case DataType::kInt64: {
      int64_t i = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), i);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::ParseError("not an integer: '" + text + "'");
      }
      return Int(i);
    }
    case DataType::kDouble: {
      double d = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), d);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::ParseError("not a double: '" + text + "'");
      }
      return Double(d);
    }
    case DataType::kString:
      return String(text);
    case DataType::kDate: {
      int y, m, d;
      if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
          m > 12 || d < 1 || d > 31) {
        return Status::ParseError("not a date (YYYY-MM-DD): '" + text + "'");
      }
      return DateYmd(y, m, d);
    }
  }
  return Status::Internal("unknown data type");
}

Result<Value> Value::CastTo(DataType type) const {
  if (is_null()) return Null();
  QUARRY_ASSIGN_OR_RETURN(DataType from, this->type());
  if (from == type) return *this;
  switch (type) {
    case DataType::kInt64:
      if (is_double()) return Int(static_cast<int64_t>(as_double()));
      if (is_bool()) return Int(as_bool() ? 1 : 0);
      if (is_string()) return Parse(as_string(), DataType::kInt64);
      break;
    case DataType::kDouble:
      if (is_int()) return Double(static_cast<double>(as_int()));
      if (is_bool()) return Double(as_bool() ? 1.0 : 0.0);
      if (is_string()) return Parse(as_string(), DataType::kDouble);
      break;
    case DataType::kString:
      return String(ToString());
    case DataType::kBool:
      if (is_int()) return Bool(as_int() != 0);
      if (is_string()) return Parse(as_string(), DataType::kBool);
      break;
    case DataType::kDate:
      if (is_string()) return Parse(as_string(), DataType::kDate);
      if (is_int()) return Date(static_cast<int32_t>(as_int()));
      break;
  }
  return Status::InvalidArgument("cannot cast " + ToString() + " to " +
                                 DataTypeToString(type));
}

size_t HashRow(const Row& row) {
  size_t h = 14695981039346656037ull;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace quarry::storage
