file(REMOVE_RECURSE
  "libquarry_common.a"
)
