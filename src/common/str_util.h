#ifndef QUARRY_COMMON_STR_UTIL_H_
#define QUARRY_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace quarry {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view text);

/// ASCII upper-casing (locale independent).
std::string ToUpper(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Normalized Dice coefficient over character bigrams in [0,1]; used for
/// name-based matching of facts/dimensions during design integration.
/// Comparison is case-insensitive and ignores '_' separators.
double NameSimilarity(std::string_view a, std::string_view b);

}  // namespace quarry

#endif  // QUARRY_COMMON_STR_UTIL_H_
