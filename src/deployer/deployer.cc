#include "deployer/deployer.h"

#include "deployer/pdi_generator.h"
#include "deployer/sql_generator.h"
#include "etl/equivalence.h"
#include "storage/sql.h"

namespace quarry::deployer {

namespace {

/// Execution-plan optimization: the logical (xLM) flow is kept as designed;
/// the deployer prunes dead columns right after each extraction before
/// running (see etl::InsertEarlyProjections).
Result<etl::Flow> OptimizeForExecution(const etl::Flow& flow,
                                       const storage::Database& source) {
  etl::TableColumns columns;
  for (const std::string& name : source.TableNames()) {
    std::vector<std::string> cols;
    for (const storage::Column& c : (*source.GetTable(name))->schema()
                                        .columns()) {
      cols.push_back(c.name);
    }
    columns[name] = std::move(cols);
  }
  etl::Flow optimized = flow.Clone();
  QUARRY_RETURN_NOT_OK(
      etl::InsertEarlyProjections(&optimized, columns).status());
  return optimized;
}

}  // namespace

Result<DeploymentReport> Deployer::Deploy(
    const md::MdSchema& schema, const etl::Flow& flow,
    const ontology::SourceMapping& mapping,
    const std::string& database_name) {
  DeploymentReport report;
  QUARRY_ASSIGN_OR_RETURN(
      report.ddl, GenerateSql(schema, mapping, *source_, database_name));
  report.pdi_ktr = GeneratePdiText(flow, database_name);

  QUARRY_ASSIGN_OR_RETURN(auto sql_report,
                          storage::ExecuteSql(target_, report.ddl));
  report.tables_created = sql_report.tables_created;

  QUARRY_ASSIGN_OR_RETURN(etl::Flow optimized,
                          OptimizeForExecution(flow, *source_));
  etl::Executor executor(source_, target_);
  QUARRY_ASSIGN_OR_RETURN(report.etl, executor.Run(optimized));

  Status integrity = target_->CheckReferentialIntegrity();
  report.referential_integrity_ok = integrity.ok();
  if (!integrity.ok()) {
    return integrity.WithContext("post-deployment integrity check");
  }
  return report;
}

Result<etl::ExecutionReport> Deployer::Refresh(const etl::Flow& flow) {
  QUARRY_ASSIGN_OR_RETURN(etl::Flow optimized,
                          OptimizeForExecution(flow, *source_));
  etl::Executor executor(source_, target_);
  QUARRY_ASSIGN_OR_RETURN(etl::ExecutionReport report,
                          executor.Run(optimized));
  QUARRY_RETURN_NOT_OK(
      target_->CheckReferentialIntegrity().WithContext("post-refresh "
                                                       "integrity check"));
  return report;
}

}  // namespace quarry::deployer
