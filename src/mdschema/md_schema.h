#ifndef QUARRY_MDSCHEMA_MD_SCHEMA_H_
#define QUARRY_MDSCHEMA_MD_SCHEMA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"
#include "xml/xml.h"

namespace quarry::md {

/// Aggregation functions the MD model supports.
enum class AggFunc { kSum, kAvg, kMin, kMax, kCount };

const char* AggFuncToString(AggFunc f);
Result<AggFunc> AggFuncFromString(const std::string& text);

/// The ETL engine's spelling of the aggregate ("AVG" instead of xMD's
/// "AVERAGE"); used when compiling measures into Aggregation operators.
const char* AggFuncToEtlName(AggFunc f);

/// \brief A measure of a fact: a numeric expression over source properties
/// plus its default aggregation.
struct Measure {
  std::string name;
  std::string expression;  ///< Over mapped source columns, e.g.
                           ///< "l_extendedprice * (1 - l_discount)".
  AggFunc aggregation = AggFunc::kSum;
  /// False for stock/level measures (account balances, inventory): summing
  /// them across a dimension is a summarizability violation.
  bool additive = true;
  std::set<std::string> requirement_ids;
};

/// A descriptive attribute of a dimension level.
struct LevelAttribute {
  std::string name;
  storage::DataType type = storage::DataType::kString;
  std::string source_property;  ///< Ontology property id, e.g. "Part.p_name".

  bool operator==(const LevelAttribute&) const = default;
};

/// \brief One aggregation level of a dimension hierarchy, grounded in an
/// ontology concept.
struct Level {
  std::string name;
  std::string concept_id;
  std::vector<LevelAttribute> attributes;
  /// Requirements this level serves; a level whose trace empties out on
  /// requirement removal is pruned (unless a fact still references it).
  std::set<std::string> requirement_ids;

  /// Name of the level's surrogate-key column in the deployed star schema.
  std::string IdColumn() const { return name + "ID"; }
};

/// \brief A dimension: an ordered hierarchy of levels (base first). Every
/// adjacent pair must roll up functionally (validated against the
/// ontology's multiplicities).
struct Dimension {
  std::string name;
  std::vector<Level> levels;
  std::set<std::string> requirement_ids;

  const Level* FindLevel(const std::string& level_name) const;
  Level* FindLevel(const std::string& level_name);
};

/// A fact's link to one dimension at a given level (together these refs
/// form the fact's *base*/grain).
struct DimensionRef {
  std::string dimension;
  std::string level;

  bool operator==(const DimensionRef&) const = default;
};

/// \brief A fact table: measures plus the dimension references forming its
/// base.
struct Fact {
  std::string name;
  std::string concept_id;  ///< Focus concept (e.g. Lineitem).
  std::vector<Measure> measures;
  std::vector<DimensionRef> dimension_refs;
  std::set<std::string> requirement_ids;

  const Measure* FindMeasure(const std::string& measure_name) const;
};

/// \brief A multidimensional schema (xMD's <MDschema>): facts + dimensions.
class MdSchema {
 public:
  MdSchema() = default;
  explicit MdSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Status AddFact(Fact fact);
  Status AddDimension(Dimension dimension);

  Result<const Fact*> GetFact(const std::string& name) const;
  Result<Fact*> GetMutableFact(const std::string& name);
  Result<const Dimension*> GetDimension(const std::string& name) const;
  Result<Dimension*> GetMutableDimension(const std::string& name);

  Status RemoveFact(const std::string& name);
  Status RemoveDimension(const std::string& name);

  const std::vector<Fact>& facts() const { return facts_; }
  const std::vector<Dimension>& dimensions() const { return dimensions_; }

  /// Union of requirement ids traced anywhere in the schema.
  std::set<std::string> RequirementIds() const;

  /// Removes `requirement_id` from all traces, deleting measures, facts and
  /// dimensions that no longer serve any requirement; dangling dimension
  /// refs are pruned with their facts' traces. Returns #elements removed.
  size_t PruneRequirement(const std::string& requirement_id);

  /// xMD serialization (paper §2.5, Figures 3-4).
  std::unique_ptr<xml::Element> ToXml() const;
  static Result<MdSchema> FromXml(const xml::Element& root);

 private:
  std::string name_;
  std::vector<Fact> facts_;
  std::vector<Dimension> dimensions_;
};

}  // namespace quarry::md

#endif  // QUARRY_MDSCHEMA_MD_SCHEMA_H_
