#include "core/quarry.h"

#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"

namespace quarry::core {
namespace {

using req::InformationRequirement;

class QuarryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(datagen::PopulateTpch(&src_, {0.005, 29}).ok());
    auto quarry = Quarry::Create(ontology::BuildTpchOntology(),
                                 ontology::BuildTpchMappings(), &src_);
    ASSERT_TRUE(quarry.ok()) << quarry.status();
    quarry_ = std::move(*quarry);
  }

  static InformationRequirement RevenueIr() {
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    return ir;
  }

  static InformationRequirement NetprofitIr() {
    InformationRequirement ir;
    ir.id = "ir_netprofit";
    ir.name = "netprofit";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"netprofit",
         "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) - "
         "Partsupp.ps_supplycost * Lineitem.l_quantity",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    return ir;
  }

  storage::Database src_;
  std::unique_ptr<Quarry> quarry_;
};

TEST_F(QuarryTest, CreateValidatesMappings) {
  ontology::SourceMapping bogus;
  ASSERT_TRUE(bogus.MapConcept("Ghost", "t", {"k"}).ok());
  auto bad = Quarry::Create(ontology::BuildTpchOntology(), std::move(bogus),
                            &src_);
  EXPECT_TRUE(bad.status().IsValidationError());
  EXPECT_TRUE(Quarry::Create(ontology::BuildTpchOntology(),
                             ontology::BuildTpchMappings(), nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QuarryTest, CreateSeedsRepositoryWithSemanticMetadata) {
  EXPECT_EQ(quarry_->repository().Ids("ontologies"),
            (std::vector<std::string>{"tpch"}));
  EXPECT_EQ(quarry_->repository().Ids("mappings"),
            (std::vector<std::string>{"tpch"}));
  auto onto_doc = quarry_->repository().FetchXml("ontologies", "tpch");
  ASSERT_TRUE(onto_doc.ok());
  auto restored = ontology::Ontology::FromXml(**onto_doc);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_concepts(), 8u);
}

TEST_F(QuarryTest, AddRequirementRecordsEveryArtifact) {
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  EXPECT_EQ(quarry_->repository().Ids("xrq"),
            (std::vector<std::string>{"ir_revenue"}));
  EXPECT_EQ(quarry_->repository().Ids("partial_xmd"),
            (std::vector<std::string>{"ir_revenue"}));
  EXPECT_EQ(quarry_->repository().Ids("partial_xlm"),
            (std::vector<std::string>{"ir_revenue"}));
  EXPECT_EQ(quarry_->repository().Ids("unified_xmd"),
            (std::vector<std::string>{"unified"}));
  EXPECT_EQ(quarry_->repository().Ids("unified_xlm"),
            (std::vector<std::string>{"unified"}));
  // The stored xRQ parses back to the requirement.
  auto xrq = quarry_->repository().FetchXml("xrq", "ir_revenue");
  ASSERT_TRUE(xrq.ok());
  auto ir = req::FromXrq(**xrq);
  ASSERT_TRUE(ir.ok());
  EXPECT_EQ(ir->measures[0].id, "revenue");
}

TEST_F(QuarryTest, EndToEndLifecycle) {
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  auto outcome = quarry_->AddRequirement(NetprofitIr());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GE(outcome->etl.nodes_reused, 5);
  EXPECT_EQ(quarry_->requirements().size(), 2u);
  EXPECT_EQ(quarry_->schema().facts().size(), 2u);

  storage::Database dw;
  auto deployment = quarry_->Deploy(&dw);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_TRUE(deployment->referential_integrity_ok);
  EXPECT_GT((*dw.GetTable("fact_table_revenue"))->num_rows(), 0u);
  EXPECT_GT((*dw.GetTable("fact_table_netprofit"))->num_rows(), 0u);

  // Accommodate change: drop netprofit, design shrinks, redeploy works.
  ASSERT_TRUE(quarry_->RemoveRequirement("ir_netprofit").ok());
  EXPECT_EQ(quarry_->schema().facts().size(), 1u);
  EXPECT_TRUE(quarry_->repository().Ids("xrq") ==
              std::vector<std::string>{"ir_revenue"});
  storage::Database dw2;
  ASSERT_TRUE(quarry_->Deploy(&dw2).ok());
  EXPECT_FALSE(dw2.HasTable("fact_table_netprofit"));
}

TEST_F(QuarryTest, RefreshPicksUpSourceGrowth) {
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  storage::Database dw;
  auto deployment = quarry_->Deploy(&dw);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  size_t fact_before = (*dw.GetTable("fact_table_revenue"))->num_rows();
  size_t dim_before = (*dw.GetTable("dim_Part"))->num_rows();

  // New part + a lineitem selling it appear in the source.
  storage::Table* part = *src_.GetTable("part");
  int64_t new_partkey = static_cast<int64_t>(part->num_rows()) + 1;
  ASSERT_TRUE(part->Insert({storage::Value::Int(new_partkey),
                            storage::Value::String("shiny new part"),
                            storage::Value::String("Brand#99"),
                            storage::Value::String("SMALL"),
                            storage::Value::Double(1234.5)})
                  .ok());
  storage::Table* lineitem = *src_.GetTable("lineitem");
  ASSERT_TRUE(lineitem
                  ->Insert({storage::Value::Int(1),
                            storage::Value::Int(99),
                            storage::Value::Int(new_partkey),
                            storage::Value::Int(1),
                            storage::Value::Int(3),
                            storage::Value::Double(100.0),
                            storage::Value::Double(0.0),
                            storage::Value::Double(0.0),
                            storage::Value::DateYmd(1995, 6, 1),
                            storage::Value::String("N")})
                  .ok());

  auto refresh = quarry_->Refresh(&dw);
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  EXPECT_EQ((*dw.GetTable("dim_Part"))->num_rows(), dim_before + 1);
  EXPECT_GT((*dw.GetTable("fact_table_revenue"))->num_rows(), fact_before);
  EXPECT_TRUE(dw.CheckReferentialIntegrity().ok());
}

TEST_F(QuarryTest, ChangeRequirementReplacesDefinition) {
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  InformationRequirement changed = RevenueIr();
  changed.dimensions.pop_back();  // Part only
  ASSERT_TRUE(quarry_->ChangeRequirement(changed).ok());
  const md::Fact& fact = **quarry_->schema().GetFact("fact_table_revenue");
  EXPECT_EQ(fact.dimension_refs.size(), 1u);
}

TEST_F(QuarryTest, DuplicateRequirementRejected) {
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  EXPECT_TRUE(quarry_->AddRequirement(RevenueIr()).status().IsAlreadyExists());
}

TEST_F(QuarryTest, UnsatisfiableRequirementLeavesDesignUntouched) {
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  InformationRequirement bad;
  bad.id = "ir_bad";
  bad.name = "bad";
  bad.focus_concept = "Partsupp";
  bad.measures.push_back(
      {"cost", "Partsupp.ps_supplycost", md::AggFunc::kSum});
  bad.dimensions.push_back({"Customer.c_name"});
  EXPECT_TRUE(quarry_->AddRequirement(bad).status().IsUnsatisfiable());
  EXPECT_EQ(quarry_->requirements().size(), 1u);
  EXPECT_TRUE(quarry_->repository().Ids("xrq") ==
              std::vector<std::string>{"ir_revenue"});
}

TEST_F(QuarryTest, ExportersRenderSchemaAndFlow) {
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  auto sql = quarry_->ExportSchema("sql");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("CREATE TABLE fact_table_revenue"), std::string::npos);
  auto xmd = quarry_->ExportSchema("xmd");
  ASSERT_TRUE(xmd.ok());
  EXPECT_NE(xmd->find("<MDschema"), std::string::npos);
  auto pdi = quarry_->ExportFlow("pdi");
  ASSERT_TRUE(pdi.ok());
  EXPECT_NE(pdi->find("<transformation>"), std::string::npos);
  auto xlm = quarry_->ExportFlow("xlm");
  ASSERT_TRUE(xlm.ok());
  EXPECT_NE(xlm->find("<design>"), std::string::npos);
  EXPECT_TRUE(quarry_->ExportSchema("piglatin").status().IsNotFound());
}

TEST_F(QuarryTest, PluggableExporterExtendsTheMetadataLayer) {
  // Paper §2.5: the layer "offers plug-in capabilities for adding import
  // and export parsers". Register a toy Pig-Latin-ish exporter.
  ASSERT_TRUE(quarry_->repository()
                  .RegisterExporter(
                      "pig",
                      [](const xml::Element& doc) -> Result<std::string> {
                        return std::string("-- pig script for ") +
                               doc.AttrOr("name", doc.name());
                      })
                  .ok());
  ASSERT_TRUE(quarry_->AddRequirement(RevenueIr()).ok());
  auto pig = quarry_->ExportSchema("pig");
  ASSERT_TRUE(pig.ok());
  EXPECT_EQ(*pig, "-- pig script for unified");
  EXPECT_TRUE(quarry_->repository()
                  .RegisterExporter("pig", nullptr)
                  .IsAlreadyExists());
}

TEST_F(QuarryTest, ElicitorToDeploymentPath) {
  // The full paper demo: elicit -> build -> add -> deploy.
  auto facts = quarry_->elicitor().SuggestFacts();
  ASSERT_FALSE(facts.empty());
  std::string focus = facts[0].concept_id;
  auto measures = quarry_->elicitor().SuggestMeasures(focus);
  ASSERT_TRUE(measures.ok());
  ASSERT_FALSE(measures->empty());
  auto dims = quarry_->elicitor().SuggestDimensions(focus);
  ASSERT_TRUE(dims.ok());
  ASSERT_FALSE(dims->empty());
  ASSERT_FALSE(dims->front().descriptive_properties.empty());
  auto ir = quarry_->elicitor().BuildRequirement(
      "ir_suggested", "suggested", focus,
      {{"m", (*measures)[0].property_id, md::AggFunc::kSum}},
      {{dims->front().descriptive_properties[0]}}, {});
  ASSERT_TRUE(ir.ok()) << ir.status();
  ASSERT_TRUE(quarry_->AddRequirement(*ir).ok());
  storage::Database dw;
  auto deployment = quarry_->Deploy(&dw);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_TRUE(deployment->referential_integrity_ok);
}

}  // namespace
}  // namespace quarry::core
