# Empty compiler generated dependencies file for bench_md_integration.
# This may be replaced when dependencies are built.
