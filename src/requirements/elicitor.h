#ifndef QUARRY_REQUIREMENTS_ELICITOR_H_
#define QUARRY_REQUIREMENTS_ELICITOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"
#include "requirements/requirement.h"

namespace quarry::req {

/// A concept suggested as an analysis dimension for a chosen focus.
struct DimensionSuggestion {
  std::string concept_id;
  int hops = 0;  ///< Functional-path length from the focus.
  /// Descriptive (non-numeric) properties usable as grouping attributes.
  std::vector<std::string> descriptive_properties;
  double score = 0;  ///< Higher = suggested earlier.
};

/// A numeric property suggested as a measure for a chosen focus.
struct MeasureSuggestion {
  std::string property_id;
  double score = 0;
};

/// A concept suggested as a subject of analysis (fact candidate).
struct FactSuggestion {
  std::string concept_id;
  int numeric_properties = 0;
  int functional_out_degree = 0;  ///< To-one associations leaving it.
  double score = 0;
};

/// \brief The analysis behind the Requirements Elicitor UI (paper §2.1):
/// "analyzing the relationships in the domain ontology, and automatically
/// suggesting potentially interesting analytical perspectives".
///
/// A good fact candidate has numeric properties to measure and many to-one
/// associations fanning out to potential dimensions (e.g. Lineitem). A good
/// dimension for a focus is any concept reachable through a functional
/// path, nearer concepts first — exactly the suggestion in the paper's
/// example ("a user may choose Lineitem ... the system suggests Supplier,
/// Nation, Part").
class Elicitor {
 public:
  /// The ontology must outlive the elicitor.
  explicit Elicitor(const ontology::Ontology* onto) : onto_(onto) {}

  /// Fact candidates ranked by score (numeric properties + functional
  /// out-degree, penalized by being a rollup target itself).
  std::vector<FactSuggestion> SuggestFacts() const;

  /// Numeric properties of `focus_concept` ranked for use as measures.
  Result<std::vector<MeasureSuggestion>> SuggestMeasures(
      const std::string& focus_concept) const;

  /// Dimension candidates for `focus_concept`: functionally reachable
  /// concepts, nearest first, with their descriptive properties.
  Result<std::vector<DimensionSuggestion>> SuggestDimensions(
      const std::string& focus_concept) const;

  /// Assembles and sanity-checks a requirement against the ontology: every
  /// referenced property must exist, measures must be numeric expressions
  /// over the focus (or functionally reachable) concepts, and each
  /// dimension/slicer property's concept must be functionally reachable
  /// from the focus. This is the elicitor-side validation that precedes
  /// the interpreter's full MD validation.
  Result<InformationRequirement> BuildRequirement(
      const std::string& id, const std::string& name,
      const std::string& focus_concept, std::vector<MeasureSpec> measures,
      std::vector<DimensionSpec> dimensions,
      std::vector<Slicer> slicers) const;

 private:
  Status CheckPropertyReachable(const std::string& property_id,
                                const std::string& focus_concept) const;

  const ontology::Ontology* onto_;
};

}  // namespace quarry::req

#endif  // QUARRY_REQUIREMENTS_ELICITOR_H_
