#include "obs/profile.h"

#include <cstdio>
#include <sstream>

namespace quarry::obs {
namespace {

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string FormatMicros(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", micros);
  return buf;
}

void NodeToText(const ProfileNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.op;
  *out += " ";
  *out += node.id;
  *out += "  rows_in=" + std::to_string(node.rows_in);
  *out += " rows_out=" + std::to_string(node.rows_out);
  *out += " wall=" + FormatMicros(node.wall_micros) + "us";
  if (node.attempts > 1) *out += " attempts=" + std::to_string(node.attempts);
  *out += "\n";
  for (const ProfileNode& child : node.children) {
    NodeToText(child, depth + 1, out);
  }
}

void NodeToJson(const ProfileNode& node, std::string* out) {
  *out += "{\"id\":\"";
  JsonEscape(node.id, out);
  *out += "\",\"op\":\"";
  JsonEscape(node.op, out);
  *out += "\",\"rows_in\":" + std::to_string(node.rows_in);
  *out += ",\"rows_out\":" + std::to_string(node.rows_out);
  *out += ",\"wall_micros\":" + FormatMicros(node.wall_micros);
  *out += ",\"attempts\":" + std::to_string(node.attempts);
  *out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) *out += ",";
    NodeToJson(node.children[i], out);
  }
  *out += "]}";
}

}  // namespace

std::string RequestProfile::ToText() const {
  std::string out = "request " + std::to_string(request_id);
  out += " kind=" + kind;
  if (!lane.empty()) out += " lane=" + lane;
  out += " status=" + status;
  if (generation > 0) out += " generation=" + std::to_string(generation);
  if (stale) out += " stale=true";
  out += " rows=" + std::to_string(rows);
  out += " total=" + FormatMicros(total_micros) + "us";
  out += " admission_wait=" + FormatMicros(admission_wait_micros) + "us";
  out += "\n";
  for (const ProfileNode& root : roots) {
    NodeToText(root, 1, &out);
  }
  return out;
}

std::string RequestProfile::ToJson() const {
  std::string out = "{\"request_id\":" + std::to_string(request_id);
  out += ",\"kind\":\"";
  JsonEscape(kind, &out);
  out += "\",\"lane\":\"";
  JsonEscape(lane, &out);
  out += "\",\"status\":\"";
  JsonEscape(status, &out);
  out += "\",\"generation\":" + std::to_string(generation);
  out += ",\"stale\":";
  out += stale ? "true" : "false";
  out += ",\"rows\":" + std::to_string(rows);
  out += ",\"admission_wait_micros\":" + FormatMicros(admission_wait_micros);
  out += ",\"total_micros\":" + FormatMicros(total_micros);
  out += ",\"plan\":[";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out += ",";
    NodeToJson(roots[i], &out);
  }
  out += "]}";
  return out;
}

}  // namespace quarry::obs
