#ifndef QUARRY_ETL_EXEC_EXECUTOR_H_
#define QUARRY_ETL_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/prng.h"
#include "common/result.h"
#include "etl/flow.h"
#include "obs/profile.h"
#include "storage/chunk.h"
#include "storage/database.h"

namespace quarry::etl {

/// \brief An intermediate operator result: named columns over rows.
///
/// Two interchangeable payloads (DESIGN.md §8):
///   - row form: `rows` holds materialized storage::Rows (the classic
///     representation; `columnar` is false).
///   - columnar form: `chunks` holds typed storage::Chunks and `rows` is
///     empty (`columnar` is true). Produced only by the vectorized kernels.
/// Consumers that need rows call MaterializeRows() (or the free helper
/// DatasetRows); both forms describe the same logical relation, and the
/// round-trip is value-exact, so fingerprints and per-node row counts never
/// depend on which form a node happened to produce.
struct Dataset {
  std::vector<std::string> columns;
  std::vector<storage::Row> rows;
  bool columnar = false;
  std::vector<storage::Chunk> chunks;

  /// Logical row count regardless of payload form.
  int64_t row_count() const {
    if (!columnar) return static_cast<int64_t>(rows.size());
    int64_t n = 0;
    for (const storage::Chunk& c : chunks) n += c.num_rows();
    return n;
  }

  /// The relation as materialized rows (selection vectors applied), in
  /// chunk order. For a row-form dataset this copies `rows`.
  std::vector<storage::Row> MaterializeRows() const {
    if (!columnar) return rows;
    std::vector<storage::Row> out;
    out.reserve(static_cast<size_t>(row_count()));
    for (const storage::Chunk& c : chunks) c.AppendRowsTo(&out);
    return out;
  }
};

/// \brief How the executor retries a failed operator (docs/ROBUSTNESS.md).
///
/// Backoff before the Nth retry is exponential with deterministic jitter:
///   exp    = min(base_backoff_millis * 2^(N-1), max_backoff_millis)
///   sleep  = exp * ((1 - jitter_fraction) + jitter_fraction * U)
/// where U is a uniform draw from a Prng seeded with `jitter_seed` — the
/// same policy yields the same sleep sequence on every run. The default
/// base of 0 disables sleeping entirely (tests and benches retry
/// instantly).
struct RetryPolicy {
  int max_attempts = 1;  ///< 1 = fail fast (no retry).
  double base_backoff_millis = 0.0;
  double max_backoff_millis = 64.0;
  double jitter_fraction = 0.5;  ///< Share of the backoff that jitters.
  uint64_t jitter_seed = 0x51;
  /// Optional overall sleep budget across all retries of one run: the sum
  /// of backoff sleeps never exceeds it (the last sleep is clipped, not
  /// skipped). < 0 = unbounded. Combined with a request deadline, the
  /// tighter of the two bounds wins, so retry scheduling can never push a
  /// failure past the deadline (docs/ROBUSTNESS.md §7).
  double total_backoff_budget_millis = -1.0;
};

/// Backoff before the retry following `failed_attempts` failures (>= 1),
/// consuming one draw from `prng`. Exposed for determinism tests.
double RetryBackoffMillis(const RetryPolicy& policy, int failed_attempts,
                          Prng* prng);

/// RetryBackoffMillis clipped by (a) the policy's overall backoff budget
/// given `backoff_spent_millis` already slept and (b) the remaining time on
/// `ctx`'s deadline (nullable). Never negative; always consumes one PRNG
/// draw so the jitter sequence stays aligned. Exposed for the
/// deadline/retry interaction tests.
double BoundedBackoffMillis(const RetryPolicy& policy, int failed_attempts,
                            Prng* prng, double backoff_spent_millis,
                            const ExecContext* ctx);

/// \brief Resumable execution state: everything a re-run needs to continue
/// from the already-completed operators instead of re-running extraction.
///
/// `Run` keeps `completed`/`loaded` current as nodes finish; `datasets` is
/// filled only when a run fails (the abandoned run's live intermediates
/// move in wholesale), so the success path never copies a dataset and the
/// checkpoint never holds more intermediates than the executor itself did.
/// `completed` is a *set* of node ids (recorded in completion order), not a
/// prefix of the topological order: a parallel run that fails mid-wavefront
/// checkpoints the completed antichain's downward closure — siblings of the
/// failed node that finished out of topological-order position are included
/// and never re-run. `Resume` skips exactly that set, so resuming after a
/// mid-parallel fault works like resuming a serial run.
struct Checkpoint {
  std::string flow_name;
  std::vector<std::string> completed;      ///< Node ids, in completion order.
  std::map<std::string, Dataset> datasets; ///< Failure-time intermediates.
  std::map<std::string, int64_t> loaded;   ///< Rows written by completed loaders.
  std::string failed_node;                 ///< Set when the producing run failed.
  bool valid = false;                      ///< A run has populated this.
};

/// \brief How a flow is executed (docs/ROBUSTNESS.md §8).
struct ExecOptions {
  /// Worker-pool size of the wavefront scheduler. 1 (the default) runs the
  /// flow serially on the calling thread — exactly the pre-scheduler
  /// behavior. N > 1 executes independent nodes concurrently; target-table
  /// contents stay byte-identical to a serial run because loader nodes are
  /// sequenced in topological order (tests/etl_parallel_test.cc proves it
  /// differentially). Values above the node count just idle extra workers.
  int max_workers = 1;
  /// Run operators through the vectorized chunk kernels (DESIGN.md §8)
  /// where one exists (HasVectorizedKernel); other operators silently fall
  /// back to the row kernels. Off by default: results are byte-identical
  /// either way (tests/etl_parallel_test.cc proves it differentially), so
  /// vectorization is purely a throughput knob. Composes with max_workers —
  /// the scheduler runs whichever kernel the options select.
  bool vectorized = false;
  /// Rows per chunk in vectorized mode. Values < 1 behave like 1.
  int64_t chunk_size = 1024;
};

/// True when the vectorized runtime has a chunk kernel for this operator
/// type. Operators without one (Sort, Union, SurrogateKey) run their row
/// kernel even in vectorized mode.
bool HasVectorizedKernel(OpType type);

/// The dataset's rows. Row-form datasets are returned directly (no copy);
/// columnar datasets are materialized into `*scratch`, which must outlive
/// the returned reference. Lets row kernels consume either payload form.
const std::vector<storage::Row>& DatasetRows(
    const Dataset& data, std::vector<storage::Row>* scratch);

/// The dataset as chunks of at most `chunk_size` rows. Columnar datasets
/// are returned directly (their existing chunk boundaries are kept — they
/// already bound per-chunk work); row-form datasets are transposed into
/// `*scratch`, which must outlive the returned reference.
const std::vector<storage::Chunk>& DatasetChunks(
    const Dataset& data, int64_t chunk_size,
    std::vector<storage::Chunk>* scratch);

/// Lower-bound memory estimate for `rows` rows of `columns` columns — the
/// unit of the intermediate-bytes budget. Deliberately linear in rows so
/// per-chunk charges in vectorized mode sum to exactly the node-level
/// charge of the row path (a budget still trips at the same node).
int64_t ApproxRowsBytes(int64_t rows, size_t columns);

/// Per-node execution statistics.
struct NodeStats {
  std::string node_id;
  OpType type = OpType::kExtraction;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double millis = 0;
  int attempts = 1;  ///< 1 = first attempt succeeded.
};

/// \brief Outcome of executing a flow.
///
/// `rows_processed` (the sum of every operator's input cardinality) is the
/// engine-level measure behind the paper's "overall execution time" quality
/// factor: the ETL Process Integrator's cost model predicts it, and the
/// benches compare predicted vs. measured.
struct ExecutionReport {
  double total_millis = 0;
  int64_t rows_processed = 0;
  std::vector<NodeStats> nodes;
  std::map<std::string, int64_t> loaded;  ///< target table -> rows written
  int64_t attempts = 0;  ///< Total operator attempts (>= nodes run).
  std::vector<std::string> retried_nodes;  ///< Nodes that needed > 1 attempt.
  bool recovered = false;  ///< Completed only thanks to retries or a resume.
};

/// Folds a run's per-node stats into EXPLAIN ANALYZE profile trees
/// (docs/OBSERVABILITY.md): one tree per sink node of the flow, children =
/// the node's inputs (flow predecessors) in edge order, stats taken from
/// `report.nodes`. A node the run never executed (e.g. skipped by Resume)
/// appears with zeroed stats, so the tree always mirrors the full plan.
std::vector<obs::ProfileNode> BuildProfileTrees(const Flow& flow,
                                                const ExecutionReport& report);

/// \brief Executes logical ETL flows (xLM) — the repo's stand-in for
/// Pentaho PDI (see DESIGN.md §2).
///
/// Operators are evaluated in topological order, materializing one Dataset
/// per node. Loader semantics: the target table is created on first use
/// (column types inferred from the data) unless it already exists; target
/// columns the dataset lacks load as NULL; when the Loader declares `keys`,
/// a row whose key already exists *merges* — its non-NULL values fill the
/// existing row's NULL cells. This makes dimension and fact loads
/// idempotent and lets several partial loaders of one integrated flow
/// converge on the same table (e.g. two requirements contributing different
/// measures of a merged fact).
///
/// Resilience: each node runs under the given RetryPolicy. Loader attempts
/// snapshot their target table first and restore it on failure, so a retry
/// (or a later Resume) never observes a half-written table. With a
/// Checkpoint attached, a failed Run leaves enough state behind for
/// Resume() to continue from the last completed operator.
///
/// Lifecycle (docs/ROBUSTNESS.md §7): with an ExecContext attached, the
/// executor checks cancellation + deadline before every node attempt and
/// cooperatively every kCancelBatchRows rows inside row-loop operators, and
/// charges each node's output against the row/byte budgets. A lifecycle
/// error (kCancelled / kDeadlineExceeded / kResourceExhausted) is never
/// retried and fails the run exactly like an operator fault — loader tables
/// roll back to their per-attempt snapshot and the checkpoint is populated,
/// so Resume after a timeout works exactly like Resume after a fault.
///
/// Parallelism (docs/ROBUSTNESS.md §8): with ExecOptions::max_workers > 1
/// the run goes through the wavefront scheduler (etl/exec/scheduler.h) —
/// independent nodes execute concurrently on a worker pool while sharing
/// one ExecContext (atomic budget charges, per-node checks, cooperative
/// polls). Loader nodes are sequenced in topological order, so the target
/// tables come out byte-identical to a serial run. When source and target
/// alias, parallel requests silently degrade to serial: a loader writing
/// the catalog a sibling extraction is reading from cannot be overlapped.
class Executor {
 public:
  /// Row-loop operators poll ExecContext::Check once per this many rows:
  /// frequent enough to bound cancellation latency on huge inputs, rare
  /// enough to stay invisible next to per-row work (BENCH_lifecycle.json).
  static constexpr int64_t kCancelBatchRows = 1024;

  /// `source` provides Datastore tables; `target` receives Loader output.
  /// Both pointers must outlive the executor. They may alias.
  Executor(const storage::Database* source, storage::Database* target)
      : source_(source), target_(target) {}

  /// Runs the flow; fails fast on the first operator error.
  Result<ExecutionReport> Run(const Flow& flow);

  /// Runs the flow with per-node retries. When `checkpoint` is non-null it
  /// is (re)initialized and kept current, so a failed run can be resumed.
  /// `ctx` (nullable) carries the request's token/deadline/budgets.
  Result<ExecutionReport> Run(const Flow& flow, const RetryPolicy& retry,
                              Checkpoint* checkpoint = nullptr,
                              const ExecContext* ctx = nullptr);

  /// Like the above, with explicit execution options — `options.max_workers
  /// > 1` runs independent nodes on the wavefront scheduler
  /// (etl/exec/scheduler.h). Every contract of the serial path carries
  /// over: retries per node (applied on whichever worker runs the node),
  /// lifecycle errors never retried, loader rollback, checkpoint/Resume.
  Result<ExecutionReport> Run(const Flow& flow, const ExecOptions& options,
                              const RetryPolicy& retry,
                              Checkpoint* checkpoint = nullptr,
                              const ExecContext* ctx = nullptr);

  /// Continues a failed run from `checkpoint`: completed operators are
  /// skipped (their checkpointed outputs feed the remaining ones) and the
  /// checkpoint keeps advancing, so Resume can itself be resumed. The
  /// checkpoint's completed *set* may come from a serial or a parallel run;
  /// either executor mode resumes it.
  Result<ExecutionReport> Resume(const Flow& flow, Checkpoint* checkpoint,
                                 const RetryPolicy& retry = {},
                                 const ExecContext* ctx = nullptr);

  /// Resume on the wavefront scheduler (options.max_workers > 1).
  Result<ExecutionReport> Resume(const Flow& flow, const ExecOptions& options,
                                 Checkpoint* checkpoint,
                                 const RetryPolicy& retry = {},
                                 const ExecContext* ctx = nullptr);

 private:
  friend class Scheduler;

  /// What a loader node did to the target, reported back to the caller so
  /// `ExecutionReport::loaded` (and the rows-loaded metric) is only charged
  /// once the whole attempt — including the budget charges that ride inside
  /// it — has succeeded.
  struct LoaderEffect {
    std::string table;
    int64_t rows = 0;
    bool fired = false;
  };

  /// Thread-safe accumulator for RetryPolicy::total_backoff_budget_millis:
  /// in a parallel run several workers may sleep concurrently, and the
  /// budget bounds their *sum*, exactly like the serial sum of sleeps.
  class BackoffBudget {
   public:
    double spent_millis() const {
      std::lock_guard<std::mutex> lock(mu_);
      return spent_millis_;
    }
    void Add(double millis) {
      std::lock_guard<std::mutex> lock(mu_);
      spent_millis_ += millis;
    }

   private:
    mutable std::mutex mu_;
    double spent_millis_ = 0;
  };

  /// Outcome of one node's full attempt loop.
  struct NodeAttempt {
    Result<Dataset> result = Status::Internal("node never attempted");
    int attempts = 1;
    LoaderEffect loader;  ///< Valid only when `result` is OK.
  };

  Result<ExecutionReport> RunInternal(const Flow& flow,
                                      const ExecOptions& options,
                                      const RetryPolicy& retry,
                                      Checkpoint* checkpoint, bool resume,
                                      const ExecContext* ctx);

  /// Runs one operator once. `inputs` are the predecessor datasets in edge
  /// order (resolved by the caller, so concurrent workers never look up the
  /// shared dataset map while another thread mutates it). With
  /// `options.vectorized` set, operators that have a chunk kernel dispatch
  /// to RunNodeVectorized after the shared per-node fault point.
  Result<Dataset> RunNode(const Node& node,
                          const std::vector<const Dataset*>& inputs,
                          LoaderEffect* loader, const ExecContext* ctx,
                          const ExecOptions& options);

  /// The vectorized chunk kernels (etl/exec/vectorized.cc). Processes the
  /// inputs chunk by chunk with a per-chunk lifecycle check, fault point
  /// ("etl.exec.vec.chunk") and budget charge; produces a columnar Dataset
  /// (except Loader, which stays a sink). Must agree byte-for-byte with the
  /// row kernels — the three-way differential harness enforces it.
  Result<Dataset> RunNodeVectorized(const Node& node,
                                    const std::vector<const Dataset*>& inputs,
                                    LoaderEffect* loader,
                                    const ExecContext* ctx,
                                    const ExecOptions& options);

  /// The per-node attempt loop shared by the serial path and the scheduler:
  /// context pre-check, loader table snapshot, RunNode, budget charges
  /// inside the attempt, loader rollback on failure, bounded backoff
  /// between attempts. Lifecycle errors are never retried.
  /// `protect_loader_always` forces the loader snapshot even without
  /// retries/checkpoint/ctx (parallel runs always protect: a sibling's
  /// failure must never leave this loader's table half-written).
  NodeAttempt ExecuteNode(const Node& node,
                          const std::vector<const Dataset*>& inputs,
                          int64_t rows_in, const RetryPolicy& retry,
                          const ExecContext* ctx, bool protect_loader_always,
                          Prng* backoff_prng, BackoffBudget* backoff,
                          const ExecOptions& options);

  const storage::Database* source_;
  storage::Database* target_;
};

}  // namespace quarry::etl

#endif  // QUARRY_ETL_EXEC_EXECUTOR_H_
