#include "requirements/query_parser.h"

#include <cctype>

#include "common/str_util.h"
#include "etl/expr.h"

namespace quarry::req {

namespace {

/// Word-and-symbol scanner over the statement.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  /// Matches a keyword case-insensitively at a word boundary.
  bool MatchKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + i])) !=
          kw[i]) {
        return false;
      }
    }
    size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  bool MatchChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// An identifier ([A-Za-z_][A-Za-z0-9_.]*).
  Result<std::string> Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected identifier at offset " +
                                std::to_string(pos_));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// A double-quoted string.
  Result<std::string> QuotedName() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::ParseError("expected '\"'");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      return Status::ParseError("unterminated quoted name");
    }
    ++pos_;
    return out;
  }

  /// Raw text until one of the given top-level keywords, a comma, or the
  /// end. Used for measure expressions, which have their own grammar (and
  /// contain neither commas nor the clause keywords as bare words).
  std::string UntilKeywordOrComma(const std::vector<std::string_view>& stops) {
    SkipSpace();
    size_t start = pos_;
    size_t best = text_.size();
    for (std::string_view stop : stops) {
      // Case-insensitive search for the stop word at a word boundary.
      for (size_t i = start; i + stop.size() <= text_.size(); ++i) {
        bool match = true;
        for (size_t k = 0; k < stop.size(); ++k) {
          if (std::toupper(static_cast<unsigned char>(text_[i + k])) !=
              stop[k]) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        bool left_ok =
            i == 0 || (!std::isalnum(static_cast<unsigned char>(
                           text_[i - 1])) &&
                       text_[i - 1] != '_');
        size_t after = i + stop.size();
        bool right_ok =
            after >= text_.size() ||
            (!std::isalnum(static_cast<unsigned char>(text_[after])) &&
             text_[after] != '_');
        if (left_ok && right_ok) {
          best = std::min(best, i);
          break;
        }
      }
    }
    size_t comma = text_.find(',', start);
    if (comma != std::string_view::npos) best = std::min(best, comma);
    std::string out(Trim(text_.substr(start, best - start)));
    pos_ = best;
    return out;
  }

  /// A literal for WHERE: number, or single-quoted string.
  Result<std::string> Literal() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("expected literal");
    if (text_[pos_] == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        out.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated string literal");
      }
      ++pos_;
      return out;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected literal");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ComparisonOp() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("expected operator");
    char c = text_[pos_];
    if (c == '=') {
      ++pos_;
      return std::string("=");
    }
    if (c == '<') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '>') {
        ++pos_;
        return std::string("<>");
      }
      if (pos_ < text_.size() && text_[pos_] == '=') {
        ++pos_;
        return std::string("<=");
      }
      return std::string("<");
    }
    if (c == '>') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') {
        ++pos_;
        return std::string(">=");
      }
      return std::string(">");
    }
    return Status::ParseError(std::string("unknown comparison operator '") +
                              c + "'");
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<md::AggFunc> OptionalAgg(Scanner* scanner) {
  if (scanner->MatchKeyword("SUM")) return md::AggFunc::kSum;
  if (scanner->MatchKeyword("AVG")) return md::AggFunc::kAvg;
  if (scanner->MatchKeyword("MIN")) return md::AggFunc::kMin;
  if (scanner->MatchKeyword("MAX")) return md::AggFunc::kMax;
  if (scanner->MatchKeyword("COUNT")) return md::AggFunc::kCount;
  return md::AggFunc::kSum;
}

}  // namespace

Result<InformationRequirement> ParseRequirementQuery(std::string_view text) {
  Scanner scanner(text);
  InformationRequirement ir;
  if (!scanner.MatchKeyword("ANALYZE")) {
    return Status::ParseError("query must start with ANALYZE");
  }
  QUARRY_ASSIGN_OR_RETURN(ir.id, scanner.Identifier());
  ir.name = ir.id;
  if (scanner.MatchKeyword("AS")) {
    QUARRY_ASSIGN_OR_RETURN(ir.name, scanner.QuotedName());
  }
  if (scanner.MatchKeyword("ON")) {
    QUARRY_ASSIGN_OR_RETURN(ir.focus_concept, scanner.Identifier());
  }
  if (!scanner.MatchKeyword("MEASURE")) {
    return Status::ParseError("expected MEASURE clause");
  }
  while (true) {
    MeasureSpec measure;
    QUARRY_ASSIGN_OR_RETURN(measure.id, scanner.Identifier());
    if (!scanner.MatchChar('=')) {
      return Status::ParseError("expected '=' after measure name '" +
                                measure.id + "'");
    }
    measure.expression = scanner.UntilKeywordOrComma(
        {"SUM", "AVG", "MIN", "MAX", "COUNT", "BY", "WHERE"});
    if (measure.expression.empty()) {
      return Status::ParseError("empty expression for measure '" +
                                measure.id + "'");
    }
    // Validate the expression parses.
    QUARRY_RETURN_NOT_OK(
        etl::ParseExpr(measure.expression).status().WithContext(
            "measure '" + measure.id + "'"));
    QUARRY_ASSIGN_OR_RETURN(measure.aggregation, OptionalAgg(&scanner));
    ir.measures.push_back(std::move(measure));
    if (!scanner.MatchChar(',')) break;
  }
  if (!scanner.MatchKeyword("BY")) {
    return Status::ParseError("expected BY clause");
  }
  while (true) {
    QUARRY_ASSIGN_OR_RETURN(std::string property, scanner.Identifier());
    ir.dimensions.push_back({std::move(property)});
    if (!scanner.MatchChar(',')) break;
  }
  if (scanner.MatchKeyword("WHERE")) {
    while (true) {
      Slicer slicer;
      QUARRY_ASSIGN_OR_RETURN(slicer.property_id, scanner.Identifier());
      QUARRY_ASSIGN_OR_RETURN(slicer.op, scanner.ComparisonOp());
      QUARRY_ASSIGN_OR_RETURN(slicer.value, scanner.Literal());
      ir.slicers.push_back(std::move(slicer));
      if (!scanner.MatchKeyword("AND")) break;
    }
  }
  if (!scanner.AtEnd()) {
    return Status::ParseError("trailing input after query");
  }
  return ir;
}

std::string RequirementQueryToString(const InformationRequirement& ir) {
  std::string out = "ANALYZE " + ir.id;
  if (!ir.name.empty() && ir.name != ir.id) {
    out += " AS \"" + ir.name + "\"";
  }
  if (!ir.focus_concept.empty()) out += " ON " + ir.focus_concept;
  out += "\nMEASURE ";
  for (size_t i = 0; i < ir.measures.size(); ++i) {
    if (i > 0) out += ",\n        ";
    const MeasureSpec& m = ir.measures[i];
    out += m.id + " = " + m.expression + " " +
           md::AggFuncToEtlName(m.aggregation);
  }
  out += "\nBY ";
  for (size_t i = 0; i < ir.dimensions.size(); ++i) {
    if (i > 0) out += ", ";
    out += ir.dimensions[i].property_id;
  }
  if (!ir.slicers.empty()) {
    out += "\nWHERE ";
    for (size_t i = 0; i < ir.slicers.size(); ++i) {
      if (i > 0) out += " AND ";
      const Slicer& s = ir.slicers[i];
      bool quoted = !s.value.empty() &&
                    !std::isdigit(static_cast<unsigned char>(s.value[0])) &&
                    s.value[0] != '-' && s.value[0] != '+';
      // Dates are digits-led but must be quoted too.
      if (s.value.find('-') != std::string::npos &&
          s.value.find_first_not_of("0123456789-") == std::string::npos) {
        quoted = true;
      }
      out += s.property_id + " " + s.op + " " +
             (quoted ? "'" + s.value + "'" : s.value);
    }
  }
  return out;
}

}  // namespace quarry::req
