#include "docstore/document_store.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quarry::docstore {

namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestName = "MANIFEST.json";

void CountMutation(const char* op) {
  obs::MetricsRegistry::Instance()
      .counter("quarry_docstore_mutations_total",
               "Successful document mutations by operation",
               {{"op", op}})
      .Increment();
}

std::string WalFileName(int64_t generation) {
  return "wal." + std::to_string(generation) + ".log";
}

std::string CollectionFileName(const std::string& name, int64_t generation) {
  return name + "." + std::to_string(generation) + ".json";
}

/// Matches the generation-stamped artifacts this store writes
/// (`<name>.<gen>.json`, `wal.<gen>.log`) so the legacy loader never
/// mistakes an uncommitted snapshot file for a bare collection file.
bool IsGenerationStamped(const std::string& filename) {
  auto all_digits = [](std::string_view s) {
    return !s.empty() && std::all_of(s.begin(), s.end(), [](unsigned char c) {
      return std::isdigit(c) != 0;
    });
  };
  std::string_view f = filename;
  if (f.size() > 5 && f.substr(f.size() - 5) == ".json") {
    std::string_view stem = f.substr(0, f.size() - 5);
    size_t dot = stem.rfind('.');
    return dot != std::string_view::npos && all_digits(stem.substr(dot + 1));
  }
  if (f.size() > 4 && f.substr(0, 4) == "wal." &&
      f.substr(f.size() - 4) == ".log") {
    return all_digits(f.substr(4, f.size() - 8));
  }
  return false;
}

std::string CanonicalDir(const std::string& dir) {
  std::error_code ec;
  fs::path canonical = fs::weakly_canonical(dir, ec);
  return ec ? dir : canonical.string();
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path.string() + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return Status::ExecutionError("read failed on '" + path.string() + "'");
  }
  return ss.str();
}

/// The committed snapshot a manifest describes.
struct Manifest {
  int64_t generation = 0;
  std::string wal_file;  ///< Empty when the snapshot carries no WAL.
  std::vector<std::pair<std::string, std::string>> collections;  // name,file
};

Result<Manifest> ParseManifest(const fs::path& path) {
  QUARRY_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  QUARRY_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  const json::Value* gen = doc.Find("generation");
  const json::Value* collections = doc.Find("collections");
  if (gen == nullptr || !gen->is_int() || collections == nullptr ||
      !collections->is_array()) {
    return Status::ParseError("manifest '" + path.string() +
                              "' lacks generation/collections");
  }
  Manifest manifest;
  manifest.generation = gen->as_int();
  const json::Value* wal = doc.Find("wal");
  if (wal != nullptr && wal->is_string()) manifest.wal_file = wal->as_string();
  for (const json::Value& entry : collections->as_array()) {
    const json::Value* name = entry.Find("name");
    const json::Value* file = entry.Find("file");
    if (name == nullptr || !name->is_string() || file == nullptr ||
        !file->is_string()) {
      return Status::ParseError("manifest '" + path.string() +
                                "' has a malformed collection entry");
    }
    manifest.collections.emplace_back(name->as_string(), file->as_string());
  }
  return manifest;
}

/// Next snapshot generation for `dir`: one past the committed manifest's,
/// or past any stamped leftover when the manifest is missing/corrupt (so a
/// recovering save never reuses the generation of orphan files).
int64_t NextGeneration(const std::string& dir) {
  int64_t max_gen = 0;
  auto manifest = ParseManifest(fs::path(dir) / kManifestName);
  if (manifest.ok()) {
    max_gen = manifest->generation;
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    if (!IsGenerationStamped(name)) continue;
    size_t dot_ext = name.rfind('.');
    size_t dot_gen = name.rfind('.', dot_ext - 1);
    int64_t gen = 0;
    if (name.substr(0, 4) == "wal." && name.substr(name.size() - 4) == ".log") {
      gen = std::atoll(name.substr(4, name.size() - 8).c_str());
    } else {
      gen = std::atoll(name.substr(dot_gen + 1, dot_ext - dot_gen - 1).c_str());
    }
    max_gen = std::max(max_gen, gen);
  }
  return max_gen + 1;
}

/// Sets a file that recovery cannot load aside as `<file>.quarantined`
/// (keeping the evidence for post-mortems) and records why.
void Quarantine(const fs::path& path, const Status& reason,
                RecoveryStats* stats) {
  std::error_code ec;
  fs::rename(path, path.string() + ".quarantined", ec);
  stats->quarantined.push_back(
      {path.filename().string(), reason.ToString()});
}

/// Parses one collection snapshot file into a fresh Collection. Any
/// failure (unreadable, not JSON, not an array, duplicate ids) rejects the
/// whole file so a torn or corrupt snapshot never half-loads.
Result<std::unique_ptr<Collection>> LoadCollectionFile(
    const fs::path& path, const std::string& collection_name) {
  QUARRY_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  QUARRY_ASSIGN_OR_RETURN(json::Value docs, json::Parse(text));
  if (!docs.is_array()) {
    return Status::ParseError("collection file '" + path.string() +
                              "' is not a JSON array");
  }
  auto collection = std::make_unique<Collection>(collection_name);
  for (json::Value& doc : docs.as_array()) {
    QUARRY_RETURN_NOT_OK(collection->Insert(std::move(doc)).status());
  }
  return collection;
}

/// Applies one replayed WAL record. Replay is idempotent: puts upsert,
/// deletes/drops of absent entries are fine — a crash between the snapshot
/// commit and the WAL rotation replays pre-snapshot records harmlessly.
Status ApplyWalRecord(DocumentStore* store, const std::string& payload) {
  QUARRY_ASSIGN_OR_RETURN(json::Value record, json::Parse(payload));
  std::string op = record.GetString("op");
  std::string collection = record.GetString("c");
  std::string id = record.GetString("id");
  if (op == "put") {
    const json::Value* doc = record.Find("doc");
    if (collection.empty() || id.empty() || doc == nullptr) {
      return Status::ParseError("malformed WAL put record");
    }
    return store->GetOrCreate(collection)->Upsert(id, *doc);
  }
  if (op == "del") {
    if (collection.empty() || id.empty()) {
      return Status::ParseError("malformed WAL del record");
    }
    Status removed = store->GetOrCreate(collection)->Remove(id);
    return removed.IsNotFound() ? Status::OK() : removed;
  }
  if (op == "newc") {
    if (collection.empty()) {
      return Status::ParseError("malformed WAL newc record");
    }
    store->GetOrCreate(collection);
    return Status::OK();
  }
  if (op == "dropc") {
    if (collection.empty()) {
      return Status::ParseError("malformed WAL dropc record");
    }
    Status dropped = store->Drop(collection);
    return dropped.IsNotFound() ? Status::OK() : dropped;
  }
  return Status::ParseError("unknown WAL op '" + op + "'");
}

}  // namespace

std::string RecoveryStats::ToString() const {
  std::ostringstream out;
  out << "recovery: manifest=" << (manifest_found ? "yes" : "no")
      << " snapshot_files=" << snapshot_files_loaded
      << " wal_replayed=" << wal_records_replayed
      << " torn_tail_bytes=" << wal_tail_bytes_discarded
      << " orphans_removed=" << orphan_files_removed
      << " quarantined=" << quarantined.size();
  for (const QuarantinedFile& q : quarantined) {
    out << " [" << q.file << ": " << q.reason << "]";
  }
  return out.str();
}

Status Collection::LogMutation(const char* op, const std::string& id,
                               const json::Value* document) {
  if (durability_ == nullptr || durability_->writer == nullptr) {
    return Status::OK();
  }
  json::Object record;
  record.emplace_back("op", json::Value(op));
  record.emplace_back("c", json::Value(name_));
  if (!id.empty()) record.emplace_back("id", json::Value(id));
  if (document != nullptr) record.emplace_back("doc", *document);
  std::string payload = json::Write(json::Value(std::move(record)));
  QUARRY_RETURN_NOT_OK(durability_->writer->Append(payload));
  return durability_->writer->Sync();
}

Result<std::string> Collection::Insert(json::Value document) {
  QUARRY_FAULT_POINT("docstore.collection.insert");
  if (!document.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  std::string id = document.GetString("_id");
  if (id.empty()) {
    // Skip ids already present so inserting into a reloaded collection
    // (whose counter restarted) never collides with persisted documents.
    do {
      id = name_ + "-" + std::to_string(next_id_++);
    } while (docs_.count(id) > 0);
    document.Set("_id", json::Value(id));
  }
  if (docs_.count(id) > 0) {
    return Status::AlreadyExists("document '" + id + "' in collection '" +
                                 name_ + "'");
  }
  // Write-ahead: the mutation is durable (or rejected) before it is
  // applied, so in-memory state never runs ahead of the log.
  QUARRY_RETURN_NOT_OK(LogMutation("put", id, &document));
  docs_.emplace(id, std::move(document));
  order_.push_back(id);
  CountMutation("insert");
  return id;
}

Result<json::Value> Collection::Get(const std::string& id) const {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("document '" + id + "' in collection '" + name_ +
                            "'");
  }
  return it->second;
}

Status Collection::Upsert(const std::string& id, json::Value document) {
  QUARRY_FAULT_POINT("docstore.collection.upsert");
  if (!document.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  document.Set("_id", json::Value(id));
  QUARRY_RETURN_NOT_OK(LogMutation("put", id, &document));
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    docs_.emplace(id, std::move(document));
    order_.push_back(id);
  } else {
    it->second = std::move(document);
  }
  CountMutation("upsert");
  return Status::OK();
}

Status Collection::Remove(const std::string& id) {
  QUARRY_FAULT_POINT("docstore.collection.remove");
  if (docs_.count(id) == 0) {
    return Status::NotFound("document '" + id + "' in collection '" + name_ +
                            "'");
  }
  QUARRY_RETURN_NOT_OK(LogMutation("del", id, nullptr));
  docs_.erase(id);
  order_.erase(std::remove(order_.begin(), order_.end(), id), order_.end());
  CountMutation("remove");
  return Status::OK();
}

std::vector<json::Value> Collection::Find(const std::string& field,
                                          const json::Value& value) const {
  std::vector<json::Value> out;
  for (const std::string& id : order_) {
    const json::Value& doc = docs_.at(id);
    const json::Value* v = doc.Find(field);
    if (v != nullptr && *v == value) out.push_back(doc);
  }
  return out;
}

Collection* DocumentStore::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
    if (durability_ != nullptr) {
      it->second->AttachDurability(durability_);
      // Best effort: GetOrCreate cannot report, and a lost record only
      // forgets a still-empty collection (the first put re-creates it).
      (void)it->second->LogMutation("newc", "", nullptr);
    }
  }
  return it->second.get();
}

Result<Collection*> DocumentStore::Get(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name + "'");
  }
  return it->second.get();
}

Result<const Collection*> DocumentStore::Get(const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name + "'");
  }
  return static_cast<const Collection*>(it->second.get());
}

Status DocumentStore::Drop(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection '" + name + "'");
  }
  QUARRY_RETURN_NOT_OK(it->second->LogMutation("dropc", "", nullptr));
  collections_.erase(it);
  return Status::OK();
}

std::vector<std::string> DocumentStore::CollectionNames() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, c] : collections_) out.push_back(name);
  return out;
}

Status DocumentStore::SaveToDirectory(const std::string& dir) const {
  QUARRY_NAMED_SPAN(span, "docstore.checkpoint");
  QUARRY_SPAN_ATTR(span, "dir", dir);
  Timer checkpoint_timer;
  Status result = SaveToDirectoryImpl(dir);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  reg.histogram("quarry_docstore_checkpoint_micros",
                "Checkpoint (snapshot + WAL rotation) latency in "
                "microseconds")
      .Observe(checkpoint_timer.ElapsedMicros());
  if (result.ok()) {
    reg.counter("quarry_docstore_checkpoints_total",
                "Committed document-store checkpoints")
        .Increment();
  } else {
    QUARRY_SPAN_ATTR(span, "error", result.message());
  }
  return result;
}

Status DocumentStore::SaveToDirectoryImpl(const std::string& dir) const {
  QUARRY_FAULT_POINT("docstore.save");
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "'");
  }
  const bool rotate_wal =
      durability_ != nullptr && CanonicalDir(dir) == durability_->dir;
  const int64_t generation = NextGeneration(dir);

  // 1. Write every collection to a generation-stamped file. The files are
  //    invisible to recovery until the manifest commits, so a crash here
  //    only leaves orphans behind.
  std::vector<std::pair<std::string, std::string>> entries;  // name, file
  for (const auto& [name, collection] : collections_) {
    json::Array docs;
    for (const std::string& id : collection->Ids()) {
      docs.push_back(*collection->Get(id));
    }
    std::string file = CollectionFileName(name, generation);
    QUARRY_RETURN_NOT_OK(
        wal::AtomicWriteFile((fs::path(dir) / file).string(),
                             json::Write(json::Value(std::move(docs)),
                                         /*pretty=*/true))
            .WithContext("snapshot of collection '" + name + "'"));
    entries.emplace_back(name, std::move(file));
  }

  // 2. Create the next WAL before the manifest references it, so the
  //    committed manifest never points at a missing log.
  std::unique_ptr<wal::Writer> next_writer;
  std::string wal_file;
  if (rotate_wal) {
    wal_file = WalFileName(generation);
    QUARRY_ASSIGN_OR_RETURN(
        next_writer,
        wal::Writer::Open((fs::path(dir) / wal_file).string()));
  }

  // 3. Commit: the manifest rename atomically flips recovery over to the
  //    new snapshot (+ empty WAL). Before it, the old snapshot and old WAL
  //    are untouched; after it, they are superseded.
  json::Object manifest;
  manifest.emplace_back("generation", json::Value(generation));
  if (rotate_wal) manifest.emplace_back("wal", json::Value(wal_file));
  json::Array collection_list;
  for (const auto& [name, file] : entries) {
    json::Object entry;
    entry.emplace_back("name", json::Value(name));
    entry.emplace_back("file", json::Value(file));
    collection_list.push_back(json::Value(std::move(entry)));
  }
  manifest.emplace_back("collections", json::Value(std::move(collection_list)));
  QUARRY_FAULT_POINT("docstore.snapshot.commit");
  QUARRY_RETURN_NOT_OK(
      wal::AtomicWriteFile((fs::path(dir) / kManifestName).string(),
                           json::Write(json::Value(std::move(manifest)),
                                       /*pretty=*/true))
          .WithContext("snapshot manifest commit"));

  if (rotate_wal) {
    durability_->writer = std::move(next_writer);
    durability_->generation = generation;
  }

  // 4. Cleanup (crash-safe: everything below is already superseded).
  //    Removes older-generation snapshots and WALs, tmp leftovers, and
  //    bare legacy collection files now covered by the manifest.
  std::set<std::string> keep;
  keep.insert(kManifestName);
  for (const auto& [name, file] : entries) keep.insert(file);
  if (rotate_wal) keep.insert(wal_file);
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (keep.count(name) > 0) continue;
    bool is_tmp = name.size() > 4 && name.substr(name.size() - 4) == ".tmp";
    bool is_legacy_json =
        name.size() > 5 && name.substr(name.size() - 5) == ".json";
    if (is_tmp || is_legacy_json || IsGenerationStamped(name)) {
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);
    }
  }
  return Status::OK();
}

Status DocumentStore::EnableDurability(const std::string& dir) {
  if (durability_ != nullptr) {
    if (CanonicalDir(dir) == durability_->dir) {
      return SaveToDirectory(dir);  // re-checkpoint, keep the attachment
    }
    return Status::InvalidArgument("store is already durable on '" +
                                   durability_->dir + "'");
  }
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "'");
  }
  durability_ = std::make_shared<DurabilityState>();
  durability_->dir = CanonicalDir(dir);
  Status checkpoint = SaveToDirectory(dir);
  if (!checkpoint.ok()) {
    durability_ = nullptr;  // stay plainly in-memory rather than half-durable
    return checkpoint.WithContext("enabling durability on '" + dir + "'");
  }
  for (const auto& [name, collection] : collections_) {
    collection->AttachDurability(durability_);
  }
  return Status::OK();
}

Result<DocumentStore> DocumentStore::Open(const std::string& dir,
                                          RecoveryStats* stats) {
  QUARRY_ASSIGN_OR_RETURN(DocumentStore store, LoadFromDirectory(dir, stats));
  QUARRY_RETURN_NOT_OK(store.EnableDurability(dir));
  return store;
}

DocumentStore DocumentStore::Clone() const {
  DocumentStore copy;
  for (const auto& [name, collection] : collections_) {
    copy.collections_.emplace(name,
                              std::make_unique<Collection>(*collection));
  }
  return copy;
}

void DocumentStore::RestoreFrom(const DocumentStore& snapshot) {
  collections_.clear();
  for (const auto& [name, collection] : snapshot.collections_) {
    collections_.emplace(name, std::make_unique<Collection>(*collection));
  }
  if (durability_ != nullptr) {
    for (const auto& [name, collection] : collections_) {
      collection->AttachDurability(durability_);
    }
    // Rollback must not fail on a disk error; a failed re-checkpoint means
    // recovery would see the pre-rollback state until the next successful
    // snapshot, which the caller's next checkpoint repairs.
    (void)SaveToDirectory(durability_->dir);
  }
}

uint64_t DocumentStore::Fingerprint() const {
  std::hash<std::string> hash;
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  };
  for (const auto& [name, collection] : collections_) {
    mix(hash(name));
    for (const std::string& id : collection->Ids()) {
      mix(hash(id));
      mix(hash(json::Write(*collection->Get(id))));
    }
  }
  return h;
}

Result<DocumentStore> DocumentStore::LoadFromDirectory(
    const std::string& dir) {
  return LoadFromDirectory(dir, nullptr);
}

Result<DocumentStore> DocumentStore::LoadFromDirectory(const std::string& dir,
                                                       RecoveryStats* stats) {
  QUARRY_NAMED_SPAN(span, "docstore.recover");
  QUARRY_SPAN_ATTR(span, "dir", dir);
  Timer recovery_timer;
  RecoveryStats local;
  if (stats == nullptr) stats = &local;
  Result<DocumentStore> result = LoadFromDirectoryImpl(dir, stats);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  reg.counter("quarry_docstore_recoveries_total",
              "Document-store loads from disk (crash recovery included)")
      .Increment();
  reg.histogram("quarry_docstore_recovery_micros",
                "Document-store recovery latency in microseconds")
      .Observe(recovery_timer.ElapsedMicros());
  reg.counter("quarry_docstore_wal_records_replayed_total",
              "WAL records replayed on top of snapshots during recovery")
      .Increment(stats->wal_records_replayed);
  reg.counter("quarry_docstore_files_quarantined_total",
              "Damaged files quarantined during recovery")
      .Increment(static_cast<int64_t>(stats->quarantined.size()));
  QUARRY_SPAN_ATTR(span, "wal_records_replayed",
                   stats->wal_records_replayed);
  QUARRY_SPAN_ATTR(span, "snapshot_files_loaded",
                   stats->snapshot_files_loaded);
  return result;
}

Result<DocumentStore> DocumentStore::LoadFromDirectoryImpl(
    const std::string& dir, RecoveryStats* stats) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "'");
  }
  *stats = RecoveryStats{};
  DocumentStore store;

  const fs::path manifest_path = fs::path(dir) / kManifestName;
  Manifest manifest;
  bool use_manifest = false;
  if (fs::exists(manifest_path, ec)) {
    auto parsed = ParseManifest(manifest_path);
    if (parsed.ok()) {
      manifest = std::move(*parsed);
      use_manifest = true;
      stats->manifest_found = true;
    } else {
      // A torn manifest cannot happen (atomic rename); a corrupt one is
      // damage. Quarantine it and fall back to scanning bare files.
      Quarantine(manifest_path, parsed.status(), stats);
    }
  }

  if (use_manifest) {
    for (const auto& [name, file] : manifest.collections) {
      const fs::path path = fs::path(dir) / file;
      auto collection = LoadCollectionFile(path, name);
      if (!collection.ok()) {
        Quarantine(path, collection.status(), stats);
        continue;
      }
      store.collections_[name] = std::move(*collection);
      ++stats->snapshot_files_loaded;
    }
    if (!manifest.wal_file.empty()) {
      const fs::path wal_path = fs::path(dir) / manifest.wal_file;
      auto log = wal::ReadLog(wal_path.string());
      if (log.status().IsParseError()) {
        Quarantine(wal_path, log.status(), stats);
      } else if (log.ok()) {
        stats->wal_torn_tail = log->torn_tail;
        stats->wal_tail_bytes_discarded = log->tail_bytes_discarded;
        for (const std::string& payload : log->records) {
          Status applied = ApplyWalRecord(&store, payload);
          if (!applied.ok()) {
            // A record that passed its CRC but does not apply means the
            // writer and reader disagree — stop replaying, keep what is
            // consistent, and report the rest.
            stats->quarantined.push_back(
                {manifest.wal_file,
                 applied.WithContext("WAL replay stopped").ToString()});
            break;
          }
          ++stats->wal_records_replayed;
        }
      }
      // A missing WAL (NotFound) is fine: rotation never committed and the
      // snapshot already contains everything.
    }
    // Clean up uncommitted leftovers from interrupted snapshots.
    std::set<std::string> keep{kManifestName};
    if (!manifest.wal_file.empty()) keep.insert(manifest.wal_file);
    for (const auto& [name, file] : manifest.collections) keep.insert(file);
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      std::string name = entry.path().filename().string();
      if (keep.count(name) > 0) continue;
      bool is_tmp = name.size() > 4 && name.substr(name.size() - 4) == ".tmp";
      if (is_tmp || IsGenerationStamped(name)) {
        std::error_code remove_ec;
        if (fs::remove(entry.path(), remove_ec) && !remove_ec) {
          ++stats->orphan_files_removed;
        }
      }
    }
    return store;
  }

  // Legacy layout: every bare `<name>.json` is a collection. Skip (and
  // report) files that are not valid collections instead of failing the
  // whole load — one corrupt collection must not take down the repository.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".json") continue;
    std::string filename = entry.path().filename().string();
    if (filename == kManifestName || IsGenerationStamped(filename)) continue;
    std::string name = entry.path().stem().string();
    auto collection = LoadCollectionFile(entry.path(), name);
    if (!collection.ok()) {
      Quarantine(entry.path(), collection.status(), stats);
      continue;
    }
    store.collections_[name] = std::move(*collection);
    ++stats->snapshot_files_loaded;
  }
  return store;
}

}  // namespace quarry::docstore
