#ifndef QUARRY_OBS_HTTP_EXPORTER_H_
#define QUARRY_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace quarry::obs {

/// Knobs of the telemetry HTTP listener. Defaults bind loopback on an
/// ephemeral port (port() tells you which) — telemetry is an operator
/// surface, not a public one.
struct HttpExporterOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 = kernel-assigned ephemeral port.
  int worker_threads = 2;
  /// Accepted connections waiting for a worker. When the queue is full the
  /// acceptor sheds with an immediate 503 — admission-style: bounded work,
  /// fail fast, never an unbounded backlog (docs/ROBUSTNESS.md §7).
  int max_pending_connections = 16;
  /// Request head (request line + headers) cap; beyond it -> 431.
  size_t max_request_bytes = 8192;
  /// Socket read timeout while collecting the request head; hit -> 408.
  int read_timeout_millis = 2000;
};

/// \brief Zero-dependency blocking HTTP/1.1 exposition server
/// (docs/OBSERVABILITY.md §"HTTP endpoints & request profiles").
///
/// POSIX sockets only — no third-party dependency, matching the obs layer's
/// charter. One acceptor thread feeds a bounded connection queue drained by
/// a small worker pool; each worker reads one request, dispatches on exact
/// path, writes the response and closes (Connection: close — scrapes are
/// one-shot). Only GET and HEAD are served; malformed, oversized or slow
/// requests get 400/431/408, never a crash or a wedged worker.
///
/// Routes /metrics (Prometheus text), /metrics.json and /requestz (recent
/// event-log records) are built in; callers add more (e.g. core's /healthz,
/// /statusz) with AddHandler before Start.
class HttpExporter {
 public:
  struct Request {
    std::string method;  ///< "GET" or "HEAD" by the time a handler runs.
    std::string path;    ///< Decoded-as-is path, no query string.
    std::string query;   ///< Raw query string ("" when absent).
  };

  struct Response {
    int code = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    /// When > 0, a `Retry-After: N` header rides the response — handlers
    /// that shed (503) tell clients when to come back
    /// (docs/ROBUSTNESS.md §11).
    int retry_after_seconds = 0;
  };

  using Handler = std::function<Response(const Request&)>;

  explicit HttpExporter(HttpExporterOptions options = {});
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Registers `handler` for exact-match `path`. Call before Start().
  void AddHandler(const std::string& path, Handler handler);

  /// Binds, listens and spawns the acceptor + workers. Returns false with
  /// `*error` set (errno text) when the socket setup fails. Idempotent
  /// failure: a failed Start leaves the exporter stopped and restartable.
  bool Start(std::string* error = nullptr);

  /// Stops accepting, drains queued connections with 503 and joins every
  /// thread. Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves option port 0 to the kernel's choice).
  /// Valid after a successful Start().
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  HttpExporterOptions options_;
  std::map<std::string, Handler> handlers_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< Accepted fds awaiting a worker.
};

}  // namespace quarry::obs

#endif  // QUARRY_OBS_HTTP_EXPORTER_H_
