#ifndef QUARRY_STORAGE_DATABASE_H_
#define QUARRY_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace quarry::storage {

/// \brief A catalog of tables — the embedded stand-in for the PostgreSQL
/// instance the Quarry paper deploys MD schemas to.
class Database {
 public:
  Database() = default;
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Creates a table; referenced FK tables must already exist.
  Result<Table*> CreateTable(TableSchema schema);

  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Table names in lexicographic order.
  std::vector<std::string> TableNames() const;

  size_t num_tables() const { return tables_.size(); }

  /// Total rows across all tables.
  size_t TotalRows() const;

  /// Verifies every foreign key: each referencing value combination must
  /// exist in the referenced table. Returns the first violation.
  Status CheckReferentialIntegrity() const;

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_DATABASE_H_
