# Empty dependencies file for quarry_olap.
# This may be replaced when dependencies are built.
