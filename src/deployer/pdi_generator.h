#ifndef QUARRY_DEPLOYER_PDI_GENERATOR_H_
#define QUARRY_DEPLOYER_PDI_GENERATOR_H_

#include <memory>
#include <string>

#include "etl/flow.h"
#include "xml/xml.h"

namespace quarry::deployer {

/// \brief Renders an ETL flow as a Pentaho-PDI-style transformation (.ktr)
/// document, matching the snippet in the paper's Figure 3:
///
/// \code{.xml}
/// <transformation>
///   <info><name>...</name></info>
///   <connection><database>demo</database></connection>
///   <order>
///     <hop><from>DATASTORE_Partsupp</from>
///          <to>EXTRACTION_Partsupp</to><enabled>Y</enabled></hop> ...
///   </order>
///   <step><name>DATASTORE_Partsupp</name><type>TableInput</type> ...
/// </transformation>
/// \endcode
///
/// The repo's own engine executes flows directly (etl::Executor); this
/// export exists for fidelity with the paper's deployment target and for
/// the extensible-exporters demo (paper §2.5).
std::unique_ptr<xml::Element> GeneratePdi(
    const etl::Flow& flow, const std::string& database_name = "demo");

/// Convenience: the serialized .ktr text.
std::string GeneratePdiText(const etl::Flow& flow,
                            const std::string& database_name = "demo");

}  // namespace quarry::deployer

#endif  // QUARRY_DEPLOYER_PDI_GENERATOR_H_
