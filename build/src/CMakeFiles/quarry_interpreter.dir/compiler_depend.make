# Empty compiler generated dependencies file for quarry_interpreter.
# This may be replaced when dependencies are built.
