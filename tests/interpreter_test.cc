#include "interpreter/interpreter.h"

#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "etl/exec/executor.h"
#include "mdschema/validator.h"
#include "ontology/tpch_ontology.h"

namespace quarry::interpreter {
namespace {

using req::InformationRequirement;

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest()
      : onto_(ontology::BuildTpchOntology()),
        mapping_(ontology::BuildTpchMappings()),
        interpreter_(&onto_, &mapping_) {}

  static InformationRequirement RevenueIr() {
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    ir.slicers.push_back({"Nation.n_name", "=", "SPAIN"});
    return ir;
  }

  ontology::Ontology onto_;
  ontology::SourceMapping mapping_;
  Interpreter interpreter_;
};

TEST_F(InterpreterTest, RevenueRequirementProducesSoundSchema) {
  auto design = interpreter_.Interpret(RevenueIr());
  ASSERT_TRUE(design.ok()) << design.status();
  const md::MdSchema& schema = design->schema;
  EXPECT_TRUE(md::CheckSound(schema, &onto_).ok());
  ASSERT_EQ(schema.facts().size(), 1u);
  const md::Fact& fact = schema.facts()[0];
  EXPECT_EQ(fact.name, "fact_table_revenue");
  EXPECT_EQ(fact.concept_id, "Lineitem");
  ASSERT_EQ(fact.measures.size(), 1u);
  EXPECT_EQ(fact.measures[0].name, "revenue");
  EXPECT_EQ(fact.dimension_refs.size(), 2u);
  EXPECT_EQ(schema.dimensions().size(), 2u);
  EXPECT_TRUE(schema.GetDimension("Part").ok());
  EXPECT_TRUE(schema.GetDimension("Supplier").ok());
  EXPECT_EQ(schema.RequirementIds(),
            (std::set<std::string>{"ir_revenue"}));
}

TEST_F(InterpreterTest, RevenueFlowHasExpectedShape) {
  auto design = interpreter_.Interpret(RevenueIr());
  ASSERT_TRUE(design.ok()) << design.status();
  const etl::Flow& flow = design->flow;
  EXPECT_TRUE(flow.Validate().ok()) << flow.num_nodes();
  // Datastores: lineitem, part, supplier, nation.
  EXPECT_TRUE(flow.HasNode("DATASTORE_lineitem"));
  EXPECT_TRUE(flow.HasNode("DATASTORE_part"));
  EXPECT_TRUE(flow.HasNode("DATASTORE_supplier"));
  EXPECT_TRUE(flow.HasNode("DATASTORE_nation"));
  EXPECT_FALSE(flow.HasNode("DATASTORE_region"));
  // Joins along the functional paths.
  EXPECT_TRUE(flow.HasNode("JOIN_lineitem_part"));
  EXPECT_TRUE(flow.HasNode("JOIN_lineitem_supplier"));
  EXPECT_TRUE(flow.HasNode("JOIN_supplier_nation"));
  // Slicer, measure, fact pipeline, dim loads.
  EXPECT_TRUE(flow.HasNode("SELECTION_0_n_name"));
  EXPECT_TRUE(flow.HasNode("FUNCTION_revenue"));
  EXPECT_TRUE(flow.HasNode("AGG_fact_table_revenue"));
  EXPECT_TRUE(flow.HasNode("LOAD_fact_table_revenue"));
  EXPECT_TRUE(flow.HasNode("LOAD_dim_Part"));
  EXPECT_TRUE(flow.HasNode("LOAD_dim_Supplier"));
  // Every node is traced to the requirement.
  for (const auto& [id, node] : flow.nodes()) {
    EXPECT_EQ(node.requirement_ids, (std::set<std::string>{"ir_revenue"}))
        << id;
  }
}

TEST_F(InterpreterTest, GeneratedFlowExecutesOnTpchData) {
  auto design = interpreter_.Interpret(RevenueIr());
  ASSERT_TRUE(design.ok()) << design.status();
  storage::Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.01, 11}).ok());
  storage::Database dw("dw");
  etl::Executor executor(&src, &dw);
  auto report = executor.Run(design->flow);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_TRUE(dw.HasTable("fact_table_revenue"));
  ASSERT_TRUE(dw.HasTable("dim_Part"));
  ASSERT_TRUE(dw.HasTable("dim_Supplier"));
  const storage::Table& fact = **dw.GetTable("fact_table_revenue");
  // Grain: (p_partkey, s_suppkey); every measure non-null and
  // consistent with the slicer (only Spanish suppliers contribute).
  EXPECT_GT(fact.num_rows(), 0u);
  auto rev_idx = fact.schema().ColumnIndex("revenue");
  ASSERT_TRUE(rev_idx.has_value());
  for (const storage::Row& row : fact.rows()) {
    EXPECT_FALSE(row[*rev_idx].is_null());
    EXPECT_GE(row[*rev_idx].as_double(), 0.0);
  }
  // Dimension tables deduplicate on their natural keys.
  const storage::Table& dim_part = **dw.GetTable("dim_Part");
  EXPECT_EQ(dim_part.num_rows(), (*src.GetTable("part"))->num_rows());
}

TEST_F(InterpreterTest, FocusDerivedFromMeasureWhenOmitted) {
  InformationRequirement ir = RevenueIr();
  ir.focus_concept.clear();
  auto design = interpreter_.Interpret(ir);
  ASSERT_TRUE(design.ok()) << design.status();
  EXPECT_EQ(design->schema.facts()[0].concept_id, "Lineitem");
}

TEST_F(InterpreterTest, MultiHopDimensionJoinsIntermediateConcepts) {
  InformationRequirement ir;
  ir.id = "ir_region";
  ir.name = "by_region";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"qty", "Lineitem.l_quantity", md::AggFunc::kSum});
  ir.dimensions.push_back({"Region.r_name"});
  auto design = interpreter_.Interpret(ir);
  ASSERT_TRUE(design.ok()) << design.status();
  // Lineitem -> Supplier -> Nation -> Region: all three joins appear.
  EXPECT_TRUE(design->flow.HasNode("JOIN_lineitem_supplier"));
  EXPECT_TRUE(design->flow.HasNode("JOIN_supplier_nation"));
  EXPECT_TRUE(design->flow.HasNode("JOIN_nation_region"));
}

TEST_F(InterpreterTest, MeasureOnReachableConceptJoins) {
  // netprofit uses ps_supplycost from Partsupp (paper Fig. 3's second IR).
  InformationRequirement ir;
  ir.id = "ir_netprofit";
  ir.name = "netprofit";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"netprofit",
       "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) - "
       "Partsupp.ps_supplycost * Lineitem.l_quantity",
       md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  auto design = interpreter_.Interpret(ir);
  ASSERT_TRUE(design.ok()) << design.status();
  EXPECT_TRUE(design->flow.HasNode("JOIN_lineitem_partsupp"));
  // And it runs.
  storage::Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.002, 11}).ok());
  storage::Database dw("dw");
  auto report = etl::Executor(&src, &dw).Run(design->flow);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT((*dw.GetTable("fact_table_netprofit"))->num_rows(), 0u);
}

TEST_F(InterpreterTest, DegenerateDimensionOnFocusConcept) {
  InformationRequirement ir;
  ir.id = "ir_flag";
  ir.name = "by_flag";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back({"qty", "Lineitem.l_quantity", md::AggFunc::kSum});
  ir.dimensions.push_back({"Lineitem.l_returnflag"});
  auto design = interpreter_.Interpret(ir);
  ASSERT_TRUE(design.ok()) << design.status();
  EXPECT_TRUE(design->flow.HasNode("LOAD_dim_Lineitem"));
  EXPECT_TRUE(md::CheckSound(design->schema, &onto_).ok());
}

TEST_F(InterpreterTest, RejectsUnreachableDimension) {
  InformationRequirement ir;
  ir.id = "ir_bad";
  ir.name = "bad";
  ir.focus_concept = "Partsupp";
  ir.measures.push_back(
      {"cost", "Partsupp.ps_supplycost", md::AggFunc::kSum});
  ir.dimensions.push_back({"Customer.c_name"});
  EXPECT_TRUE(interpreter_.Interpret(ir).status().IsUnsatisfiable());
}

TEST_F(InterpreterTest, RejectsNonNumericMeasure) {
  InformationRequirement ir;
  ir.id = "ir_bad";
  ir.name = "bad";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"m", "Lineitem.l_returnflag", md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  EXPECT_TRUE(interpreter_.Interpret(ir).status().IsValidationError());
}

TEST_F(InterpreterTest, RejectsEmptyRequirements) {
  InformationRequirement ir = RevenueIr();
  ir.measures.clear();
  EXPECT_TRUE(interpreter_.Interpret(ir).status().IsUnsatisfiable());
  ir = RevenueIr();
  ir.dimensions.clear();
  EXPECT_TRUE(interpreter_.Interpret(ir).status().IsUnsatisfiable());
  ir = RevenueIr();
  ir.id.clear();
  EXPECT_TRUE(interpreter_.Interpret(ir).status().IsInvalidArgument());
}

TEST_F(InterpreterTest, RejectsDuplicateMeasureIds) {
  InformationRequirement ir = RevenueIr();
  ir.measures.push_back(ir.measures[0]);
  EXPECT_TRUE(interpreter_.Interpret(ir).status().IsInvalidArgument());
}

TEST_F(InterpreterTest, SlicerLiteralTypedByProperty) {
  InformationRequirement ir = RevenueIr();
  ir.slicers.push_back({"Orders.o_orderdate", ">=", "1995-01-01"});
  auto design = interpreter_.Interpret(ir);
  ASSERT_TRUE(design.ok()) << design.status();
  const etl::Node* sel =
      *design->flow.GetNode("SELECTION_1_o_orderdate");
  EXPECT_NE(sel->params.at("predicate").find("DATE '1995-01-01'"),
            std::string::npos);
  // Bad literal for the property type fails.
  ir.slicers.back().value = "not-a-date";
  EXPECT_TRUE(interpreter_.Interpret(ir).status().IsParseError());
}

TEST_F(InterpreterTest, FactTableNaming) {
  InformationRequirement ir = RevenueIr();
  EXPECT_EQ(Interpreter::FactTableName(ir), "fact_table_revenue");
  ir.name = "fact_sales";
  EXPECT_EQ(Interpreter::FactTableName(ir), "fact_sales");
  ir.name.clear();
  EXPECT_EQ(Interpreter::FactTableName(ir), "fact_table_ir_revenue");
}

}  // namespace
}  // namespace quarry::interpreter
