// System-level property tests: invariants that must hold for *any*
// requirement stream, checked over a sweep of generated workloads
// (gtest TEST_P over seeds × overlap levels).
//
//  P1  every generated requirement interprets into a sound partial design
//      whose flow validates;
//  P2  after integrating a whole stream, the unified design is sound and
//      satisfies every requirement;
//  P3  removing any one requirement keeps the remaining ones satisfied
//      and the design sound;
//  P4  the unified flow loads exactly the same warehouse contents as
//      running each partial flow separately;
//  P5  integration order does not change what the unified design offers
//      (same fact count, same measure set, soundness, satisfiability).

//  P6  a parallel run of any generated flow executes every node exactly
//      once, in an order consistent with the DAG, and lands on the same
//      warehouse bytes as the serial run;
//  P7  a budget-killed parallel run checkpoints a resumable antichain:
//      resuming converges on the serial result, and resuming *again* is a
//      no-op (idempotence).
//
//  P8  the vectorized chunk runtime (DESIGN.md §8) lands on the serial row
//      executor's exact bytes and per-node row counts for ANY chunk size —
//      1 (every chunk a singleton), 7 (partial last chunk everywhere),
//      1024 (the default), and rows+1 (one oversized chunk) — with and
//      without the wavefront scheduler underneath.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/exec_context.h"
#include "datagen/tpch.h"
#include "etl/exec/executor.h"
#include "etl_test_util.h"
#include "integrator/design_integrator.h"
#include "integrator/satisfiability.h"
#include "interpreter/interpreter.h"
#include "mdschema/validator.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"

namespace quarry {
namespace {

using integrator::DesignIntegrator;
using interpreter::Interpreter;
using interpreter::PartialDesign;
using req::InformationRequirement;

struct Params {
  uint64_t seed;
  double overlap;
  int n;
};

class WorkloadProperty : public ::testing::TestWithParam<Params> {
 protected:
  WorkloadProperty()
      : onto_(ontology::BuildTpchOntology()),
        mapping_(ontology::BuildTpchMappings()),
        interpreter_(&onto_, &mapping_) {}

  static storage::Database& SharedSource() {
    static storage::Database* db = [] {
      auto* d = new storage::Database("tpch");
      EXPECT_TRUE(datagen::PopulateTpch(d, {0.002, 1}).ok());
      return d;
    }();
    return *db;
  }

  std::vector<InformationRequirement> Workload() const {
    req::WorkloadConfig config;
    config.num_requirements = GetParam().n;
    config.overlap = GetParam().overlap;
    config.seed = GetParam().seed;
    return req::GenerateTpchWorkload(config);
  }

  etl::TableColumns Columns() const {
    etl::TableColumns out;
    for (const std::string& name : SharedSource().TableNames()) {
      std::vector<std::string> cols;
      for (const auto& c :
           (*SharedSource().GetTable(name))->schema().columns()) {
        cols.push_back(c.name);
      }
      out[name] = cols;
    }
    return out;
  }

  std::map<std::string, int64_t> Rows() const {
    std::map<std::string, int64_t> out;
    for (const std::string& name : SharedSource().TableNames()) {
      out[name] =
          static_cast<int64_t>((*SharedSource().GetTable(name))->num_rows());
    }
    return out;
  }

  ontology::Ontology onto_;
  ontology::SourceMapping mapping_;
  Interpreter interpreter_;
};

TEST_P(WorkloadProperty, P1_EveryRequirementInterpretsSound) {
  for (const InformationRequirement& ir : Workload()) {
    auto design = interpreter_.Interpret(ir);
    ASSERT_TRUE(design.ok()) << ir.id << ": " << design.status();
    EXPECT_TRUE(md::CheckSound(design->schema, &onto_).ok()) << ir.id;
    EXPECT_TRUE(design->flow.Validate().ok()) << ir.id;
    EXPECT_TRUE(
        integrator::CheckSatisfies(design->schema, design->flow, ir).ok())
        << ir.id;
  }
}

TEST_P(WorkloadProperty, P2_IntegratedDesignSatisfiesAll) {
  DesignIntegrator design(&onto_, Columns(), Rows());
  for (const InformationRequirement& ir : Workload()) {
    auto partial = interpreter_.Interpret(ir);
    ASSERT_TRUE(partial.ok()) << partial.status();
    auto outcome = design.AddRequirement(ir, *partial);
    ASSERT_TRUE(outcome.ok()) << ir.id << ": " << outcome.status();
  }
  EXPECT_TRUE(design.VerifyAll().ok());
  EXPECT_TRUE(md::CheckSound(design.schema(), &onto_).ok());
}

TEST_P(WorkloadProperty, P3_RemovalKeepsOthersSatisfied) {
  std::vector<InformationRequirement> workload = Workload();
  for (size_t victim = 0; victim < workload.size(); ++victim) {
    DesignIntegrator design(&onto_, Columns(), Rows());
    for (const InformationRequirement& ir : workload) {
      auto partial = interpreter_.Interpret(ir);
      ASSERT_TRUE(partial.ok());
      ASSERT_TRUE(design.AddRequirement(ir, *partial).ok());
    }
    ASSERT_TRUE(design.RemoveRequirement(workload[victim].id).ok())
        << workload[victim].id;
    EXPECT_TRUE(design.VerifyAll().ok()) << "after removing "
                                         << workload[victim].id;
  }
}

TEST_P(WorkloadProperty, P4_UnifiedFlowEqualsSeparateRuns) {
  std::vector<InformationRequirement> workload = Workload();
  DesignIntegrator design(&onto_, Columns(), Rows());
  std::vector<PartialDesign> partials;
  // Where each partial's fact ended up in the unified schema (facts with
  // equal grain merge under the first one's name).
  std::map<std::string, std::string> fact_mapping;
  for (const InformationRequirement& ir : workload) {
    auto partial = interpreter_.Interpret(ir);
    ASSERT_TRUE(partial.ok());
    partials.push_back(*partial);
    auto outcome = design.AddRequirement(ir, partials.back());
    ASSERT_TRUE(outcome.ok()) << ir.id << ": " << outcome.status();
    for (const auto& [from, to] : outcome->md.fact_mapping) {
      fact_mapping[from] = to;
    }
  }
  storage::Database separate("s"), unified("u");
  for (const PartialDesign& partial : partials) {
    ASSERT_TRUE(
        etl::Executor(&SharedSource(), &separate).Run(partial.flow).ok());
  }
  ASSERT_TRUE(
      etl::Executor(&SharedSource(), &unified).Run(design.flow()).ok());

  // Sorted projection of a table onto the given columns.
  auto dump = [](const storage::Table& t,
                 const std::vector<std::string>& columns) {
    std::vector<size_t> idx;
    for (const std::string& c : columns) {
      auto i = t.schema().ColumnIndex(c);
      EXPECT_TRUE(i.has_value()) << c;
      idx.push_back(*i);
    }
    std::vector<std::string> out;
    for (const storage::Row& row : t.rows()) {
      std::string line;
      for (size_t i : idx) line += row[i].ToString() + "|";
      out.push_back(std::move(line));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  auto column_names = [](const storage::Table& t) {
    std::vector<std::string> out;
    for (const auto& c : t.schema().columns()) out.push_back(c.name);
    return out;
  };

  for (const std::string& name : separate.TableNames()) {
    const storage::Table& a = **separate.GetTable(name);
    if (name.rfind("dim_", 0) == 0) {
      // Dimension tables must match exactly (modulo later-filled columns:
      // the unified dim may carry extra attributes from other IRs).
      auto b = unified.GetTable(name);
      ASSERT_TRUE(b.ok()) << name;
      ASSERT_EQ(a.num_rows(), (*b)->num_rows()) << name;
      EXPECT_EQ(dump(a, column_names(a)), dump(**b, column_names(a)))
          << name;
      continue;
    }
    // Fact tables: compare against the merged counterpart, projected onto
    // this partial fact's columns. Same-grain facts with different slicers
    // merge into a NULL-padded union, so unified rows where every one of
    // this partial's measure columns is NULL stem from *other*
    // requirements and are excluded from the comparison.
    auto mapped = fact_mapping.find(name);
    ASSERT_NE(mapped, fact_mapping.end()) << name;
    auto b = unified.GetTable(mapped->second);
    ASSERT_TRUE(b.ok()) << mapped->second;
    std::set<std::string> measure_columns;
    for (const auto& c : a.schema().columns()) {
      if (c.name.rfind("m_", 0) == 0) measure_columns.insert(c.name);
    }
    auto dump_present = [&](const storage::Table& t) {
      std::vector<size_t> idx;
      std::vector<bool> is_measure;
      for (const std::string& c : column_names(a)) {
        auto i = t.schema().ColumnIndex(c);
        EXPECT_TRUE(i.has_value()) << c;
        idx.push_back(*i);
        is_measure.push_back(measure_columns.count(c) > 0);
      }
      std::vector<std::string> out;
      for (const storage::Row& row : t.rows()) {
        bool any_measure_present = false;
        std::string line;
        for (size_t k = 0; k < idx.size(); ++k) {
          if (is_measure[k] && !row[idx[k]].is_null()) {
            any_measure_present = true;
          }
          line += row[idx[k]].ToString() + "|";
        }
        if (any_measure_present) out.push_back(std::move(line));
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    EXPECT_EQ(dump_present(a), dump_present(**b))
        << name << " vs " << mapped->second;
  }
}

TEST_P(WorkloadProperty, P5_OrderIndependentOffering) {
  std::vector<InformationRequirement> workload = Workload();
  auto build = [&](const std::vector<InformationRequirement>& stream) {
    auto design =
        std::make_unique<DesignIntegrator>(&onto_, Columns(), Rows());
    for (const InformationRequirement& ir : stream) {
      auto partial = interpreter_.Interpret(ir);
      EXPECT_TRUE(partial.ok());
      EXPECT_TRUE(design->AddRequirement(ir, *partial).ok()) << ir.id;
    }
    return design;
  };
  auto forward = build(workload);
  std::vector<InformationRequirement> reversed(workload.rbegin(),
                                               workload.rend());
  auto backward = build(reversed);
  EXPECT_TRUE(forward->VerifyAll().ok());
  EXPECT_TRUE(backward->VerifyAll().ok());
  EXPECT_EQ(forward->schema().facts().size(),
            backward->schema().facts().size());
  auto measure_set = [](const md::MdSchema& schema) {
    std::set<std::string> out;
    for (const md::Fact& fact : schema.facts()) {
      for (const md::Measure& m : fact.measures) out.insert(m.name);
    }
    return out;
  };
  EXPECT_EQ(measure_set(forward->schema()), measure_set(backward->schema()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadProperty,
    ::testing::Values(Params{1, 0.2, 4}, Params{2, 0.5, 4},
                      Params{3, 0.8, 4}, Params{4, 0.2, 7},
                      Params{5, 0.5, 7}, Params{6, 0.8, 7},
                      Params{7, 1.0, 5}, Params{8, 0.0, 5}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "seed" + std::to_string(info.param.seed) + "_ov" +
             std::to_string(static_cast<int>(info.param.overlap * 10)) +
             "_n" + std::to_string(info.param.n);
    });

// ---------------------------------------------------------------------------
// Wavefront-scheduler properties (docs/ROBUSTNESS.md §8) over seeded random
// DAGs: structure varies per seed, the invariants never do.

class SchedulerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerProperty, P6_ParallelRunsAreTopologicalAndExactlyOnce) {
  const uint64_t seed = GetParam();
  auto source = etl::testutil::BuildRandomSource(seed);
  etl::Flow flow = etl::testutil::BuildRandomFlow(seed);
  ASSERT_TRUE(flow.Validate().ok());
  etl::testutil::RunOutcome serial = etl::testutil::RunFlow(*source, flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;

  for (int workers : {2, 4, 8}) {
    storage::Database target("dw");
    etl::Executor executor(&(*source), &target);
    etl::ExecOptions options;
    options.max_workers = workers;
    etl::Checkpoint checkpoint;
    auto report =
        executor.Run(flow, options, etl::RetryPolicy{}, &checkpoint);
    ASSERT_TRUE(report.ok()) << report.status();

    // Exactly once: one stats entry per node, no repeats.
    std::set<std::string> ran;
    for (const etl::NodeStats& stats : report->nodes) {
      EXPECT_TRUE(ran.insert(stats.node_id).second)
          << stats.node_id << " ran twice (workers=" << workers << ")";
    }
    EXPECT_EQ(ran.size(), flow.num_nodes());

    // Dependencies respected: the checkpointed completion order is a
    // topological order of the flow DAG.
    std::set<std::string> seen;
    for (const std::string& id : checkpoint.completed) {
      for (const std::string& pred : flow.Predecessors(id)) {
        EXPECT_TRUE(seen.count(pred) > 0)
            << id << " completed before its input " << pred;
      }
      seen.insert(id);
    }

    // Same bytes as serial.
    EXPECT_EQ(target.Fingerprint(), serial.fingerprint)
        << "seed " << seed << " workers " << workers;
  }
}

TEST_P(SchedulerProperty, P7_AntichainCheckpointResumeIsIdempotent) {
  const uint64_t seed = GetParam();
  auto source = etl::testutil::BuildRandomSource(seed);
  etl::Flow flow = etl::testutil::BuildRandomFlow(seed);
  etl::testutil::RunOutcome serial = etl::testutil::RunFlow(*source, flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  if (serial.report.rows_processed < 4) GTEST_SKIP() << "flow too small";

  // Kill a 4-worker run mid-flight with a row budget that a full run must
  // exceed. Where it trips is nondeterministic; the contract is not.
  ResourceBudget budget;
  budget.max_rows_materialized = serial.report.rows_processed / 2;
  ExecContext ctx(CancellationToken{}, Deadline::Infinite(), budget);
  storage::Database target("dw");
  etl::Executor executor(&(*source), &target);
  etl::ExecOptions options;
  options.max_workers = 4;
  etl::Checkpoint checkpoint;
  auto killed =
      executor.Run(flow, options, etl::RetryPolicy{}, &checkpoint, &ctx);
  ASSERT_FALSE(killed.ok());
  EXPECT_TRUE(killed.status().IsResourceExhausted()) << killed.status();
  ASSERT_TRUE(checkpoint.valid);

  // The completed set is downward-closed, so resuming is well-defined.
  std::set<std::string> completed(checkpoint.completed.begin(),
                                  checkpoint.completed.end());
  for (const std::string& id : completed) {
    for (const std::string& pred : flow.Predecessors(id)) {
      EXPECT_TRUE(completed.count(pred) > 0)
          << id << " checkpointed without its input " << pred;
    }
  }

  // Resume (parallel, no budget) converges on the serial bytes.
  auto resumed = executor.Resume(flow, options, &checkpoint, {});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint) << "seed " << seed;

  // Resuming the now-complete checkpoint again runs nothing and changes
  // nothing.
  auto again = executor.Resume(flow, options, &checkpoint, {});
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->nodes.empty());
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(DagSweep, SchedulerProperty,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Vectorized-runtime properties (DESIGN.md §8) over the same seeded random
// DAGs: chunking is an execution detail, so no chunk size may ever change
// the bytes. The sweep deliberately includes chunk_size 1 (selection-vector
// carry-over on singleton chunks), 7 (a partial last chunk on nearly every
// node) and rows+1 (the whole input in one oversized chunk); empty
// intermediate streams arise naturally from the generated selections.

class VectorizedProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorizedProperty, P8_ChunkSizeNeverChangesBytes) {
  const uint64_t seed = GetParam();
  auto source = etl::testutil::BuildRandomSource(seed);
  etl::Flow flow = etl::testutil::BuildRandomFlow(seed);
  ASSERT_TRUE(flow.Validate().ok());
  etl::testutil::RunOutcome serial = etl::testutil::RunFlow(*source, flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  auto serial_stats = etl::testutil::StatsById(serial.report);

  const int64_t oversized = serial.report.rows_processed + 1;
  for (int64_t chunk_size : {int64_t{1}, int64_t{7}, int64_t{1024},
                             oversized}) {
    for (int workers : {1, 4}) {
      etl::ExecOptions options;
      options.vectorized = true;
      options.chunk_size = chunk_size;
      options.max_workers = workers;
      etl::testutil::RunOutcome outcome =
          etl::testutil::RunFlowOpts(*source, flow, options);
      ASSERT_TRUE(outcome.status.ok())
          << "seed " << seed << " chunk_size " << chunk_size << " workers "
          << workers << ": " << outcome.status;
      EXPECT_EQ(outcome.fingerprint, serial.fingerprint)
          << "seed " << seed << " chunk_size " << chunk_size << " workers "
          << workers;
      EXPECT_EQ(outcome.report.rows_processed,
                serial.report.rows_processed)
          << "seed " << seed << " chunk_size " << chunk_size;
      auto stats = etl::testutil::StatsById(outcome.report);
      ASSERT_EQ(stats.size(), flow.num_nodes());
      for (const auto& [id, want] : serial_stats) {
        auto it = stats.find(id);
        ASSERT_NE(it, stats.end()) << id;
        EXPECT_EQ(it->second.rows_in, want.rows_in)
            << "node " << id << " seed " << seed << " chunk_size "
            << chunk_size;
        EXPECT_EQ(it->second.rows_out, want.rows_out)
            << "node " << id << " seed " << seed << " chunk_size "
            << chunk_size;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSweep, VectorizedProperty,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace quarry
