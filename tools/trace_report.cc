// trace_report: runs the full retail pipeline (interpret -> integrate ->
// deploy -> refresh) with tracing enabled, prints a per-stage latency/row
// table, and exports the run as Chrome trace JSON + Prometheus text
// (docs/OBSERVABILITY.md).
//
// Usage: trace_report [output-dir] [--request <id>]
//   output-dir (default ".") receives trace.json, metrics.prom, metrics.json
//   and requests.jsonl; a metadata/ subdirectory is created there to exercise
//   the WAL-backed durable repository so its fsync histogram has data.
//   --request <id> narrows the per-stage table to spans attributed to that
//   request id (see the per-request rollup the tool prints for valid ids).
//
// Load the trace in chrome://tracing or https://ui.perfetto.dev.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/quarry.h"
#include "datagen/retail.h"
#include "obs/trace.h"

namespace {

using quarry::core::Quarry;

struct StageRow {
  int count = 0;
  double total_ms = 0;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  bool has_rows = false;
};

int64_t AttrInt(const quarry::obs::SpanRecord& span, const std::string& key) {
  for (const auto& attr : span.attrs) {
    if (attr.key == key) return std::atoll(attr.value.c_str());
  }
  return 0;
}

std::string AttrStr(const quarry::obs::SpanRecord& span,
                    const std::string& key) {
  for (const auto& attr : span.attrs) {
    if (attr.key == key) return attr.value;
  }
  return "";
}

bool HasAttr(const quarry::obs::SpanRecord& span, const std::string& key) {
  return std::any_of(span.attrs.begin(), span.attrs.end(),
                     [&](const auto& attr) { return attr.key == key; });
}

int Fail(const quarry::Status& status, const char* what) {
  std::fprintf(stderr, "trace_report: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  long long request_filter = -1;
  bool out_dir_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--request") == 0 && i + 1 < argc) {
      request_filter = std::atoll(argv[++i]);
    } else if (!out_dir_set) {
      out_dir = argv[i];
      out_dir_set = true;
    } else {
      std::fprintf(stderr, "usage: trace_report [output-dir] [--request N]\n");
      return 2;
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string meta_dir =
      (std::filesystem::path(out_dir) / "metadata").string();
  std::filesystem::create_directories(meta_dir, ec);
  if (ec) {
    std::fprintf(stderr, "trace_report: cannot create '%s'\n",
                 meta_dir.c_str());
    return 1;
  }

  quarry::storage::Database source;
  quarry::datagen::RetailConfig config;
  if (quarry::Status populated =
          quarry::datagen::PopulateRetail(&source, config);
      !populated.ok()) {
    return Fail(populated, "populating retail source");
  }

  auto q = Quarry::Create(quarry::datagen::BuildRetailOntology(),
                          quarry::datagen::BuildRetailMappings(), &source);
  if (!q.ok()) return Fail(q.status(), "creating Quarry");

  // Everything from here on is recorded: spans land in the trace buffer,
  // and the WAL / docstore / integrator / executor metrics accumulate.
  Quarry::Telemetry().StartTracing();

  if (quarry::Status durable = (*q)->EnableDurability(meta_dir);
      !durable.ok()) {
    return Fail(durable, "enabling durable metadata");
  }

  const char* queries[] = {
      "ANALYZE turnover ON Sale "
      "MEASURE turnover = Sale.sl_amount * (1 - Sale.sl_discount) SUM "
      "BY Product.pr_category, Store.st_city "
      "WHERE Customer.cu_segment = 'LOYALTY'",
      "ANALYZE units_by_region ON Sale "
      "MEASURE units = Sale.sl_units SUM BY Region.rr_name",
  };
  for (const char* query : queries) {
    auto outcome = (*q)->AddRequirementFromQuery(query);
    if (!outcome.ok()) return Fail(outcome.status(), "adding requirement");
  }

  quarry::storage::Database warehouse;
  auto deployed = (*q)->DeployResilient(&warehouse);
  if (!deployed.ok()) return Fail(deployed.status(), "deploying");
  if (!deployed->success) {
    return Fail(deployed->failure->cause, "deployment failed");
  }
  auto refreshed = (*q)->Refresh(&warehouse);
  if (!refreshed.ok()) return Fail(refreshed.status(), "refreshing");

  // Serving path: publish a generation and run profiled cube queries so the
  // trace and the request log carry request-scoped serving spans too.
  auto served = (*q)->DeployServing();
  if (!served.ok()) return Fail(served.status(), "deploying serving");

  // Two demo tenants so the serving spans carry tenant attribution and the
  // per-tenant rollup below has rows (docs/ROBUSTNESS.md §11).
  quarry::core::TenantQuota analytics;
  analytics.priority = quarry::Priority::kHigh;
  quarry::core::TenantQuota batch;
  batch.priority = quarry::Priority::kLow;
  batch.rate_per_sec = 100.0;
  if (quarry::Status s = (*q)->RegisterTenant("analytics", analytics);
      !s.ok()) {
    return Fail(s, "registering tenant");
  }
  if (quarry::Status s = (*q)->RegisterTenant("batch", batch); !s.ok()) {
    return Fail(s, "registering tenant");
  }

  quarry::olap::CubeQuery cube;
  cube.fact = "fact_table_turnover";
  cube.group_by = {"pr_category"};
  cube.measures.push_back({"turnover", quarry::md::AggFunc::kSum, "total"});
  quarry::core::QueryResult last_query;
  const char* tenants[] = {"analytics", "batch", "analytics"};
  for (const char* tenant : tenants) {
    quarry::ExecContext ctx;
    ctx.set_tenant(tenant);
    auto result = (*q)->SubmitQuery(cube, {}, &ctx);
    if (!result.ok()) return Fail(result.status(), "serving query");
    last_query = std::move(*result);
  }

  Quarry::Telemetry().StopTracing();

  // ---- per-stage table ----------------------------------------------------
  std::vector<quarry::obs::SpanRecord> spans =
      Quarry::Telemetry().tracer.Snapshot();
  std::map<std::string, StageRow> stages;
  for (const auto& span : spans) {
    if (request_filter >= 0 &&
        (!HasAttr(span, "request_id") ||
         AttrInt(span, "request_id") != request_filter)) {
      continue;
    }
    StageRow& row = stages[span.name];
    ++row.count;
    row.total_ms += span.dur_us / 1000.0;
    if (HasAttr(span, "rows_out")) {
      row.has_rows = true;
      row.rows_in += AttrInt(span, "rows_in");
      row.rows_out += AttrInt(span, "rows_out");
    }
  }
  if (request_filter >= 0) {
    std::printf("spans attributed to request %lld\n", request_filter);
  }
  std::printf("%-34s %6s %12s %10s %10s\n", "stage", "count", "total ms",
              "rows in", "rows out");
  for (const auto& [name, row] : stages) {
    std::printf("%-34s %6d %12.3f ", name.c_str(), row.count, row.total_ms);
    if (row.has_rows) {
      std::printf("%10lld %10lld\n", static_cast<long long>(row.rows_in),
                  static_cast<long long>(row.rows_out));
    } else {
      std::printf("%10s %10s\n", "-", "-");
    }
  }
  std::printf("\n%zu spans recorded (%lld dropped)\n", spans.size(),
              static_cast<long long>(Quarry::Telemetry().tracer.dropped()));

  // ---- per-request latency rollup ----------------------------------------
  // Every Quarry entry point mints a request id and stamps it on its spans;
  // grouping by that id gives wall time and span fan-out per request. Use
  // --request <id> to re-run with the stage table narrowed to one of these.
  struct RequestRollup {
    int spans = 0;
    double total_ms = 0;
    std::string root;  // widest span = the entry-point stage
    double root_ms = -1;
  };
  std::map<long long, RequestRollup> requests;
  for (const auto& span : spans) {
    if (!HasAttr(span, "request_id")) continue;
    RequestRollup& row = requests[AttrInt(span, "request_id")];
    ++row.spans;
    row.total_ms += span.dur_us / 1000.0;
    if (span.dur_us / 1000.0 > row.root_ms) {
      row.root_ms = span.dur_us / 1000.0;
      row.root = span.name;
    }
  }
  std::printf("\n%-10s %-26s %6s %12s %12s\n", "request", "entry stage",
              "spans", "span ms", "entry ms");
  for (const auto& [id, row] : requests) {
    std::printf("%-10lld %-26s %6d %12.3f %12.3f\n", id, row.root.c_str(),
                row.spans, row.total_ms, row.root_ms);
  }

  // ---- per-tenant rollup --------------------------------------------------
  // Tenant-attributed entry points stamp a "tenant" attr on their spans;
  // grouping by it shows each tenant's request count and span wall time —
  // the trace-side view of /tenantz (docs/ROBUSTNESS.md §11).
  struct TenantRollup {
    int spans = 0;
    double total_ms = 0;
    std::map<long long, int> request_ids;
  };
  std::map<std::string, TenantRollup> tenants_seen;
  for (const auto& span : spans) {
    const std::string tenant = AttrStr(span, "tenant");
    if (tenant.empty()) continue;
    TenantRollup& row = tenants_seen[tenant];
    ++row.spans;
    row.total_ms += span.dur_us / 1000.0;
    if (HasAttr(span, "request_id")) {
      ++row.request_ids[AttrInt(span, "request_id")];
    }
  }
  std::printf("\n%-14s %9s %6s %12s\n", "tenant", "requests", "spans",
              "span ms");
  for (const auto& [tenant, row] : tenants_seen) {
    std::printf("%-14s %9zu %6d %12.3f\n", tenant.c_str(),
                row.request_ids.size(), row.spans, row.total_ms);
  }

  if (!last_query.profile.roots.empty()) {
    std::printf("\nEXPLAIN ANALYZE of the last serving query:\n%s",
                last_query.profile.ToText().c_str());
  }

  if (quarry::Status written = Quarry::Telemetry().WriteTo(out_dir);
      !written.ok()) {
    return Fail(written, "exporting telemetry");
  }
  std::printf("wrote %s/trace.json, metrics.prom, metrics.json, "
              "requests.jsonl\n",
              out_dir.c_str());
  return 0;
}
