# Empty compiler generated dependencies file for quarryctl.
# This may be replaced when dependencies are built.
