// Differential tests for the wavefront scheduler (docs/ROBUSTNESS.md §8):
// every flow must produce byte-identical target tables and equivalent
// execution reports no matter how many workers run it, and the lifecycle /
// fault-injection contracts of the serial executor must carry over. Runs
// under TSan via tools/run_tsan.sh (ctest label `tsan`).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/fault_injection.h"
#include "datagen/tpch.h"
#include "etl_test_util.h"
#include "interpreter/interpreter.h"
#include "obs/metrics.h"
#include "ontology/tpch_ontology.h"
#include "storage/database.h"

namespace quarry::etl {
namespace {

using testutil::BuildRandomFlow;
using testutil::BuildRandomSource;
using testutil::DifferentialModes;
using testutil::ExecMode;
using testutil::MakeNode;
using testutil::RunFlow;
using testutil::RunFlowOpts;
using testutil::RunOutcome;
using testutil::StatsById;
using testutil::ToOptions;

const int kWorkerCounts[] = {2, 4, 8};

/// Differential equivalence against the serial row reference: byte-identical
/// target fingerprint and order-free identical report (row counts per node,
/// loaded tables, total attempts). Also asserts exactly-once execution: one
/// NodeStats entry per flow node. `label` names the non-reference arm
/// (worker count, vectorized mode, ...) in failure messages.
void ExpectEquivalent(const Flow& flow, const RunOutcome& serial,
                      const RunOutcome& other, const std::string& label) {
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  ASSERT_TRUE(other.status.ok()) << label << ": " << other.status;
  EXPECT_EQ(other.fingerprint, serial.fingerprint)
      << "flow '" << flow.name() << "' diverged at " << label;
  EXPECT_EQ(other.report.rows_processed, serial.report.rows_processed)
      << label;
  EXPECT_EQ(other.report.attempts, serial.report.attempts) << label;
  EXPECT_EQ(other.report.loaded, serial.report.loaded) << label;
  EXPECT_EQ(other.report.recovered, serial.report.recovered) << label;
  auto serial_stats = StatsById(serial.report);
  auto other_stats = StatsById(other.report);
  ASSERT_EQ(serial_stats.size(), flow.num_nodes());
  ASSERT_EQ(other_stats.size(), flow.num_nodes());  // exactly once
  EXPECT_EQ(other.report.nodes.size(), flow.num_nodes());
  for (const auto& [id, want] : serial_stats) {
    auto it = other_stats.find(id);
    ASSERT_NE(it, other_stats.end())
        << "node " << id << " never ran (" << label << ")";
    EXPECT_EQ(it->second.rows_in, want.rows_in)
        << "node " << id << " (" << label << ")";
    EXPECT_EQ(it->second.rows_out, want.rows_out)
        << "node " << id << " (" << label << ")";
    EXPECT_EQ(it->second.attempts, want.attempts)
        << "node " << id << " (" << label << ")";
  }
}

void ExpectEquivalent(const Flow& flow, const RunOutcome& serial,
                      const RunOutcome& parallel, int workers) {
  ExpectEquivalent(flow, serial, parallel,
                   "workers=" + std::to_string(workers));
}

TEST(EtlParallelTest, RandomizedFlowsMatchSerialAtEveryWorkerCount) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto source = BuildRandomSource(seed);
    Flow flow = BuildRandomFlow(seed);
    ASSERT_TRUE(flow.Validate().ok()) << "seed " << seed;
    RunOutcome serial = RunFlow(*source, flow, 1);
    ASSERT_TRUE(serial.status.ok()) << "seed " << seed << ": "
                                    << serial.status;
    for (int workers : kWorkerCounts) {
      RunOutcome parallel = RunFlow(*source, flow, workers);
      ExpectEquivalent(flow, serial, parallel, workers);
    }
  }
}

TEST(EtlParallelTest, TpchRevenueFlowMatchesSerial) {
  storage::Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.005, 23}).ok());
  ontology::Ontology onto = ontology::BuildTpchOntology();
  ontology::SourceMapping mapping = ontology::BuildTpchMappings();
  interpreter::Interpreter interp(&onto, &mapping);
  req::InformationRequirement ir;
  ir.id = "ir_revenue";
  ir.name = "revenue";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  ir.dimensions.push_back({"Supplier.s_name"});
  auto design = interp.Interpret(ir);
  ASSERT_TRUE(design.ok()) << design.status();

  RunOutcome serial = RunFlow(src, design->flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  for (int workers : kWorkerCounts) {
    RunOutcome parallel = RunFlow(src, design->flow, workers);
    ExpectEquivalent(design->flow, serial, parallel, workers);
  }
  // The run went through the scheduler, not a silent serial fallback.
  EXPECT_GT(obs::MetricsRegistry::Instance()
                .counter("quarry_etl_scheduler_parallel_runs_total")
                .value(),
            0);
}

/// Wide multi-branch flow: `branches` independent extract→select→load
/// chains over the random source tables, all loading distinct targets.
Flow BuildWideFlow(int branches) {
  Flow flow("wide");
  for (int b = 0; b < branches; ++b) {
    std::string n = std::to_string(b);
    std::string table = "src" + std::to_string(b % 3);
    (void)flow.AddNode(
        MakeNode("ds" + n, OpType::kDatastore, {{"table", table}}));
    (void)flow.AddNode(
        MakeNode("ex" + n, OpType::kExtraction, {{"table", table}}));
    (void)flow.AddNode(MakeNode(
        "sel" + n, OpType::kSelection,
        {{"predicate", "v >= " + std::to_string(b % 7)}}));
    (void)flow.AddNode(MakeNode("load" + n, OpType::kLoader,
                                {{"table", "out" + n}}));
    (void)flow.AddEdge("ds" + n, "ex" + n);
    (void)flow.AddEdge("ex" + n, "sel" + n);
    (void)flow.AddEdge("sel" + n, "load" + n);
  }
  return flow;
}

TEST(EtlParallelTest, WideMultiBranchFlowMatchesSerial) {
  auto source = BuildRandomSource(/*seed=*/7);
  Flow flow = BuildWideFlow(6);
  ASSERT_TRUE(flow.Validate().ok());
  RunOutcome serial = RunFlow(*source, flow, 1);
  for (int workers : kWorkerCounts) {
    RunOutcome parallel = RunFlow(*source, flow, workers);
    ExpectEquivalent(flow, serial, parallel, workers);
    EXPECT_EQ(parallel.report.loaded.size(), 6u);
  }
}

TEST(EtlParallelTest, WorkerCountBeyondNodeCountIsHarmless) {
  auto source = BuildRandomSource(/*seed=*/3);
  Flow flow = BuildWideFlow(2);
  RunOutcome serial = RunFlow(*source, flow, 1);
  RunOutcome parallel = RunFlow(*source, flow, 64);
  ExpectEquivalent(flow, serial, parallel, 64);
}

TEST(EtlParallelTest, CompletionOrderRespectsDependencies) {
  for (uint64_t seed = 30; seed <= 36; ++seed) {
    auto source = BuildRandomSource(seed);
    Flow flow = BuildRandomFlow(seed);
    Checkpoint checkpoint;
    storage::Database target("dw");
    Executor executor(&(*source), &target);
    ExecOptions options;
    options.max_workers = 4;
    auto report = executor.Run(flow, options, RetryPolicy{}, &checkpoint);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": " << report.status();
    // The recorded completion order must be a topological order: every
    // predecessor appears before its consumer.
    std::set<std::string> seen;
    for (const std::string& id : checkpoint.completed) {
      EXPECT_TRUE(seen.insert(id).second) << id << " completed twice";
      for (const std::string& pred : flow.Predecessors(id)) {
        EXPECT_TRUE(seen.count(pred) > 0)
            << "seed " << seed << ": node " << id
            << " completed before its input " << pred;
      }
    }
    EXPECT_EQ(seen.size(), flow.num_nodes());
  }
}

TEST(EtlParallelTest, ExpiredDeadlineAbortsWithoutDeadlock) {
  auto source = BuildRandomSource(/*seed=*/5);
  Flow flow = BuildWideFlow(6);
  ExecContext ctx(Deadline::After(0.0));
  RunOutcome outcome = RunFlow(*source, flow, 4, RetryPolicy{}, nullptr,
                               &ctx);
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_TRUE(outcome.status.IsDeadlineExceeded()) << outcome.status;
}

TEST(EtlParallelTest, ConcurrentCancellationNeverDeadlocks) {
  auto source = BuildRandomSource(/*seed=*/11, /*tables=*/3,
                                  /*max_rows=*/120);
  Flow flow = BuildWideFlow(8);
  CancellationToken token;
  ExecContext ctx(token, Deadline::Infinite());
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    token.Cancel("test cancel");
  });
  RunOutcome outcome =
      RunFlow(*source, flow, 4, RetryPolicy{}, nullptr, &ctx);
  canceller.join();
  // The run either finished before the cancel landed or aborted with
  // kCancelled — both are fine; the property under test is termination.
  if (!outcome.status.ok()) {
    EXPECT_TRUE(outcome.status.IsCancelled()) << outcome.status;
  }
}

TEST(EtlParallelTest, BudgetTripAbortsAndChargesAtomically) {
  auto source = BuildRandomSource(/*seed=*/13);
  Flow flow = BuildWideFlow(6);
  ResourceBudget budget;
  budget.max_rows_materialized = 10;  // Trips almost immediately.
  ExecContext ctx(CancellationToken{}, Deadline::Infinite(), budget);
  Checkpoint checkpoint;
  storage::Database target("dw");
  Executor executor(&(*source), &target);
  ExecOptions options;
  options.max_workers = 4;
  auto report = executor.Run(flow, options, RetryPolicy{}, &checkpoint, &ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsResourceExhausted()) << report.status();
  ASSERT_TRUE(checkpoint.valid);
  EXPECT_FALSE(checkpoint.failed_node.empty());

  // Resume with a fresh allowance completes and converges on the serial
  // result.
  ctx.ResetCharges();
  auto resumed = executor.Resume(flow, options, &checkpoint, RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  RunOutcome serial = RunFlow(*source, flow, 1);
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint);
}

class EtlParallelFaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::Injector::Instance().Disable();
    fault::Injector::Instance().ClearConfigs();
  }
};

TEST_F(EtlParallelFaultTest, TransientFaultIsRetriedOnWhateverWorkerHitsIt) {
  auto source = BuildRandomSource(/*seed=*/17);
  Flow flow = BuildWideFlow(6);
  RunOutcome serial = RunFlow(*source, flow, 1);

  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Configure(
      "etl.exec.Selection", {.trigger_on_hit = 1, .max_failures = 1});
  fault::Injector::Instance().Enable(/*seed=*/9);
  RetryPolicy retry;
  retry.max_attempts = 3;
  RunOutcome parallel = RunFlow(*source, flow, 4, retry);
  fault::Injector::Instance().Disable();

  ASSERT_TRUE(parallel.status.ok()) << parallel.status;
  EXPECT_EQ(parallel.fingerprint, serial.fingerprint);
  EXPECT_TRUE(parallel.report.recovered);
  EXPECT_EQ(parallel.report.retried_nodes.size(), 1u);
  EXPECT_EQ(fault::Injector::Instance().FailureCount("etl.exec.Selection"),
            1);
}

TEST_F(EtlParallelFaultTest, MidParallelFaultCheckpointsAntichainAndResumes) {
  auto source = BuildRandomSource(/*seed=*/19);
  Flow flow = BuildWideFlow(6);
  RunOutcome serial = RunFlow(*source, flow, 1);

  // Permanently fail the third loader write: siblings already in flight
  // finish and are checkpointed; later nodes never start.
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Configure("etl.exec.Loader.write",
                                        {.fail_from_hit = 3});
  fault::Injector::Instance().Enable(/*seed=*/21);

  storage::Database target("dw");
  Executor executor(&(*source), &target);
  ExecOptions options;
  options.max_workers = 4;
  Checkpoint checkpoint;
  auto failed = executor.Run(flow, options, RetryPolicy{}, &checkpoint);
  ASSERT_FALSE(failed.ok());
  ASSERT_TRUE(checkpoint.valid);
  EXPECT_FALSE(checkpoint.failed_node.empty());

  // The completed set is the antichain's downward closure: unique ids, and
  // every predecessor of a completed node is itself completed.
  std::set<std::string> completed;
  for (const std::string& id : checkpoint.completed) {
    EXPECT_TRUE(completed.insert(id).second) << id << " completed twice";
  }
  for (const std::string& id : completed) {
    for (const std::string& pred : flow.Predecessors(id)) {
      EXPECT_TRUE(completed.count(pred) > 0)
          << "completed node " << id << " missing input " << pred;
    }
  }
  EXPECT_LT(completed.size(), flow.num_nodes());

  // The fault clears; a *parallel* resume of the parallel checkpoint
  // converges on the serial fingerprint.
  fault::Injector::Instance().Disable();
  auto resumed = executor.Resume(flow, options, &checkpoint, RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->recovered);
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint);
}

TEST_F(EtlParallelFaultTest, SerialResumeAcceptsParallelCheckpoint) {
  auto source = BuildRandomSource(/*seed=*/23);
  Flow flow = BuildWideFlow(5);
  RunOutcome serial = RunFlow(*source, flow, 1);

  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Configure("etl.exec.Loader.write",
                                        {.fail_from_hit = 2});
  fault::Injector::Instance().Enable(/*seed=*/25);

  storage::Database target("dw");
  Executor executor(&(*source), &target);
  ExecOptions options;
  options.max_workers = 4;
  Checkpoint checkpoint;
  auto failed = executor.Run(flow, options, RetryPolicy{}, &checkpoint);
  ASSERT_FALSE(failed.ok());
  fault::Injector::Instance().Disable();

  // Cross-mode: the serial executor resumes a checkpoint a parallel run
  // produced (the completed *set* is mode-agnostic).
  auto resumed = executor.Resume(flow, &checkpoint, RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint);
}

TEST(EtlParallelTest, AliasedSourceAndTargetDegradeToSerial) {
  // A loader writing the same database the datastores read from cannot be
  // overlapped; such runs silently run serially and still succeed.
  auto serial_db = BuildRandomSource(/*seed=*/29);
  auto parallel_db = BuildRandomSource(/*seed=*/29);
  Flow flow("alias");
  (void)flow.AddNode(
      MakeNode("ds", OpType::kDatastore, {{"table", "src0"}}));
  (void)flow.AddNode(
      MakeNode("ex", OpType::kExtraction, {{"table", "src0"}}));
  (void)flow.AddNode(
      MakeNode("load", OpType::kLoader, {{"table", "copied"}}));
  (void)flow.AddEdge("ds", "ex");
  (void)flow.AddEdge("ex", "load");

  Executor serial_exec(serial_db.get(), serial_db.get());
  auto serial_report = serial_exec.Run(flow);
  ASSERT_TRUE(serial_report.ok()) << serial_report.status();

  Executor parallel_exec(parallel_db.get(), parallel_db.get());
  ExecOptions options;
  options.max_workers = 4;
  auto parallel_report = parallel_exec.Run(flow, options, RetryPolicy{});
  ASSERT_TRUE(parallel_report.ok()) << parallel_report.status();
  EXPECT_EQ(parallel_db->Fingerprint(), serial_db->Fingerprint());
}

TEST(EtlParallelTest, SchedulerMetricsAreRecorded) {
  auto source = BuildRandomSource(/*seed=*/31);
  Flow flow = BuildWideFlow(6);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  const int64_t runs_before =
      reg.counter("quarry_etl_scheduler_parallel_runs_total").value();
  RunOutcome parallel = RunFlow(*source, flow, 4);
  ASSERT_TRUE(parallel.status.ok()) << parallel.status;
  EXPECT_EQ(reg.counter("quarry_etl_scheduler_parallel_runs_total").value(),
            runs_before + 1);
  EXPECT_GT(reg.histogram("quarry_etl_scheduler_wavefront_width", "",
                          {1, 2, 4, 8, 16, 32, 64})
                .count(),
            0);
  int64_t worker_nodes = 0;
  for (int w = 0; w < 4; ++w) {
    worker_nodes +=
        reg.counter("quarry_etl_scheduler_worker_nodes_total", "",
                    {{"worker", std::to_string(w)}})
            .value();
  }
  EXPECT_GE(worker_nodes, static_cast<int64_t>(flow.num_nodes()));
}

// ---------------------------------------------------------------------------
// Three-way differential harness (DESIGN.md §8): the serial row executor is
// the reference; the parallel scheduler, the vectorized chunk runtime, and
// vectorized-under-the-scheduler must all produce byte-identical target
// fingerprints and order-free identical reports (per-node rows_in/rows_out,
// attempts, loaded tables).

TEST(EtlVectorizedTest, ThreeWayRandomizedFlowsAgree) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    auto source = BuildRandomSource(seed);
    Flow flow = BuildRandomFlow(seed);
    ASSERT_TRUE(flow.Validate().ok()) << "seed " << seed;
    RunOutcome serial = RunFlow(*source, flow, 1);
    ASSERT_TRUE(serial.status.ok()) << "seed " << seed << ": "
                                    << serial.status;
    for (const ExecMode& mode : DifferentialModes()) {
      RunOutcome outcome = RunFlowOpts(*source, flow, ToOptions(mode));
      ExpectEquivalent(flow, serial, outcome,
                       std::string("seed ") + std::to_string(seed) + " " +
                           mode.name);
    }
  }
}

TEST(EtlVectorizedTest, ThreeWayTpchRevenueFlowAgrees) {
  storage::Database src;
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.005, 23}).ok());
  ontology::Ontology onto = ontology::BuildTpchOntology();
  ontology::SourceMapping mapping = ontology::BuildTpchMappings();
  interpreter::Interpreter interp(&onto, &mapping);
  req::InformationRequirement ir;
  ir.id = "ir_revenue";
  ir.name = "revenue";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  ir.dimensions.push_back({"Supplier.s_name"});
  auto design = interp.Interpret(ir);
  ASSERT_TRUE(design.ok()) << design.status();

  RunOutcome serial = RunFlow(src, design->flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  const int64_t chunks_before =
      reg.counter("quarry_etl_chunk_rows_total").value();
  for (const ExecMode& mode : DifferentialModes()) {
    RunOutcome outcome = RunFlowOpts(src, design->flow, ToOptions(mode));
    ExpectEquivalent(design->flow, serial, outcome, mode.name);
  }
  // The vectorized arms actually went through the chunk kernels.
  EXPECT_GT(reg.counter("quarry_etl_chunk_rows_total").value(),
            chunks_before);
}

TEST(EtlVectorizedTest, ChainedSelectionsCarrySelectionVectors) {
  // Selection-on-selection composes a selection vector with an already
  // filtered chunk — the carry-over path chunk sizes can't hide: at
  // chunk_size 1 every chunk is a singleton, at 7 the last chunk of each
  // run is partial, at 4096 one chunk covers the whole table.
  auto source = BuildRandomSource(/*seed=*/37);
  Flow flow("chained_sel");
  (void)flow.AddNode(
      MakeNode("ds", OpType::kDatastore, {{"table", "src0"}}));
  (void)flow.AddNode(
      MakeNode("ex", OpType::kExtraction, {{"table", "src0"}}));
  (void)flow.AddNode(
      MakeNode("s1", OpType::kSelection, {{"predicate", "v >= 10"}}));
  (void)flow.AddNode(
      MakeNode("s2", OpType::kSelection, {{"predicate", "v < 40"}}));
  (void)flow.AddNode(
      MakeNode("s3", OpType::kSelection, {{"predicate", "id >= 2"}}));
  (void)flow.AddNode(MakeNode(
      "fn", OpType::kFunction, {{"column", "f"}, {"expr", "v * 2 + 1"}}));
  (void)flow.AddNode(
      MakeNode("proj", OpType::kProjection, {{"columns", "id,f,s"}}));
  (void)flow.AddNode(
      MakeNode("load", OpType::kLoader, {{"table", "out"}}));
  (void)flow.AddEdge("ds", "ex");
  (void)flow.AddEdge("ex", "s1");
  (void)flow.AddEdge("s1", "s2");
  (void)flow.AddEdge("s2", "s3");
  (void)flow.AddEdge("s3", "fn");
  (void)flow.AddEdge("fn", "proj");
  (void)flow.AddEdge("proj", "load");
  ASSERT_TRUE(flow.Validate().ok());

  RunOutcome serial = RunFlow(*source, flow, 1);
  for (int64_t chunk_size : {1, 7, 1024, 4096}) {
    ExecMode mode{"vectorized", 1, true, chunk_size};
    RunOutcome outcome = RunFlowOpts(*source, flow, ToOptions(mode));
    ExpectEquivalent(flow, serial, outcome,
                     "vectorized chunk_size=" +
                         std::to_string(chunk_size));
  }
}

TEST(EtlVectorizedTest, EmptyStreamsMatchRowPath) {
  // A selection that drops every row empties the whole downstream —
  // aggregation over nothing, a loader that must defer table creation
  // exactly like the row path does.
  auto source = BuildRandomSource(/*seed=*/41);
  Flow flow("empty_stream");
  (void)flow.AddNode(
      MakeNode("ds", OpType::kDatastore, {{"table", "src0"}}));
  (void)flow.AddNode(
      MakeNode("ex", OpType::kExtraction, {{"table", "src0"}}));
  (void)flow.AddNode(
      MakeNode("sel", OpType::kSelection, {{"predicate", "v < -1"}}));
  (void)flow.AddNode(MakeNode(
      "agg", OpType::kAggregation,
      {{"group", "id"}, {"aggs", "SUM(v) AS total"}}));
  (void)flow.AddNode(
      MakeNode("load_rows", OpType::kLoader, {{"table", "out_rows"}}));
  (void)flow.AddNode(
      MakeNode("load_agg", OpType::kLoader, {{"table", "out_agg"}}));
  (void)flow.AddEdge("ds", "ex");
  (void)flow.AddEdge("ex", "sel");
  (void)flow.AddEdge("sel", "agg");
  (void)flow.AddEdge("sel", "load_rows");
  (void)flow.AddEdge("agg", "load_agg");
  ASSERT_TRUE(flow.Validate().ok());

  RunOutcome serial = RunFlow(*source, flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  for (const ExecMode& mode : DifferentialModes()) {
    RunOutcome outcome = RunFlowOpts(*source, flow, ToOptions(mode));
    ExpectEquivalent(flow, serial, outcome, mode.name);
  }
}

TEST(EtlVectorizedTest, VectorizedBudgetTripChargesAtChunkGranularity) {
  // The chunk kernels charge the budget per chunk, so a row allowance trips
  // mid-node instead of after a whole materialization; the checkpoint is
  // still a resumable node-boundary antichain.
  auto source = BuildRandomSource(/*seed=*/43);
  Flow flow = BuildWideFlow(6);
  RunOutcome serial = RunFlow(*source, flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;

  ResourceBudget budget;
  budget.max_rows_materialized = 10;
  ExecContext ctx(CancellationToken{}, Deadline::Infinite(), budget);
  Checkpoint checkpoint;
  storage::Database target("dw");
  Executor executor(&(*source), &target);
  ExecOptions options;
  options.vectorized = true;
  options.chunk_size = 4;  // several chunks per node at 10-row allowance
  auto report = executor.Run(flow, options, RetryPolicy{}, &checkpoint, &ctx);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsResourceExhausted()) << report.status();
  ASSERT_TRUE(checkpoint.valid);

  ctx.ResetCharges();
  auto resumed = executor.Resume(flow, options, &checkpoint, RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint);
}

TEST(EtlVectorizedTest, RowModeResumesVectorizedCheckpoint) {
  // Cross-mode resume, vectorized -> row: a budget-killed vectorized run
  // checkpoints columnar datasets; the row executor must consume them.
  auto source = BuildRandomSource(/*seed=*/47);
  Flow flow = BuildWideFlow(5);
  RunOutcome serial = RunFlow(*source, flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;

  ResourceBudget budget;
  budget.max_rows_materialized = 10;
  ExecContext ctx(CancellationToken{}, Deadline::Infinite(), budget);
  Checkpoint checkpoint;
  storage::Database target("dw");
  Executor executor(&(*source), &target);
  ExecOptions vec_options;
  vec_options.vectorized = true;
  vec_options.chunk_size = 8;
  auto killed =
      executor.Run(flow, vec_options, RetryPolicy{}, &checkpoint, &ctx);
  ASSERT_FALSE(killed.ok());
  ASSERT_TRUE(checkpoint.valid);

  ExecOptions row_options;  // vectorized off: plain serial row executor
  auto resumed =
      executor.Resume(flow, row_options, &checkpoint, RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint);
}

TEST(EtlVectorizedTest, VectorizedModeResumesRowCheckpoint) {
  // Cross-mode resume, row -> vectorized: the chunk kernels must accept
  // row-form checkpointed datasets (DatasetChunks re-chunks them).
  auto source = BuildRandomSource(/*seed=*/53);
  Flow flow = BuildWideFlow(5);
  RunOutcome serial = RunFlow(*source, flow, 1);
  ASSERT_TRUE(serial.status.ok()) << serial.status;

  ResourceBudget budget;
  budget.max_rows_materialized = 10;
  ExecContext ctx(CancellationToken{}, Deadline::Infinite(), budget);
  Checkpoint checkpoint;
  storage::Database target("dw");
  Executor executor(&(*source), &target);
  auto killed =
      executor.Run(flow, ExecOptions{}, RetryPolicy{}, &checkpoint, &ctx);
  ASSERT_FALSE(killed.ok());
  ASSERT_TRUE(checkpoint.valid);

  ExecOptions vec_options;
  vec_options.vectorized = true;
  vec_options.chunk_size = 16;
  auto resumed =
      executor.Resume(flow, vec_options, &checkpoint, RetryPolicy{});
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(target.Fingerprint(), serial.fingerprint);
}

TEST(EtlVectorizedTest, VectorizedLifecycleErrorsMatchRowPath) {
  // Deadline/cancellation surface with the same node-tagged messages in
  // both modes: the chunk gate reuses the row path's context-check wording.
  auto source = BuildRandomSource(/*seed=*/59);
  Flow flow = BuildWideFlow(4);
  ExecContext ctx(Deadline::After(0.0));
  ExecOptions options;
  options.vectorized = true;
  RunOutcome outcome =
      RunFlowOpts(*source, flow, options, RetryPolicy{}, nullptr, &ctx);
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_TRUE(outcome.status.IsDeadlineExceeded()) << outcome.status;
  EXPECT_NE(outcome.status.ToString().find("node '"), std::string::npos)
      << outcome.status;
}

}  // namespace
}  // namespace quarry::etl
