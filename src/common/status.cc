#include "common/status.h"

namespace quarry {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kValidationError:
      return "ValidationError";
    case StatusCode::kUnsatisfiable:
      return "Unsatisfiable";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace {
constexpr const char kRetryAfterKey[] = "retry-after-ms=";
}  // namespace

Status WithRetryAfterMillis(Status status, double millis) {
  if (status.ok()) return status;
  if (status.message().find(kRetryAfterKey) != std::string::npos) {
    return status;
  }
  int64_t ms = static_cast<int64_t>(millis);
  if (static_cast<double>(ms) < millis) ++ms;  // Round up.
  if (ms < 1) ms = 1;
  return Status(status.code(), status.message() + " (" + kRetryAfterKey +
                                   std::to_string(ms) + ")");
}

double RetryAfterMillis(const Status& status) {
  const std::string& msg = status.message();
  size_t pos = msg.find(kRetryAfterKey);
  if (pos == std::string::npos) return -1.0;
  pos += sizeof(kRetryAfterKey) - 1;
  double value = 0.0;
  bool any = false;
  while (pos < msg.size() && msg[pos] >= '0' && msg[pos] <= '9') {
    value = value * 10.0 + (msg[pos] - '0');
    ++pos;
    any = true;
  }
  return any ? value : -1.0;
}

}  // namespace quarry
