file(REMOVE_RECURSE
  "CMakeFiles/quarry_etl.dir/etl/cost_model.cc.o"
  "CMakeFiles/quarry_etl.dir/etl/cost_model.cc.o.d"
  "CMakeFiles/quarry_etl.dir/etl/equivalence.cc.o"
  "CMakeFiles/quarry_etl.dir/etl/equivalence.cc.o.d"
  "CMakeFiles/quarry_etl.dir/etl/exec/executor.cc.o"
  "CMakeFiles/quarry_etl.dir/etl/exec/executor.cc.o.d"
  "CMakeFiles/quarry_etl.dir/etl/expr.cc.o"
  "CMakeFiles/quarry_etl.dir/etl/expr.cc.o.d"
  "CMakeFiles/quarry_etl.dir/etl/flow.cc.o"
  "CMakeFiles/quarry_etl.dir/etl/flow.cc.o.d"
  "CMakeFiles/quarry_etl.dir/etl/schema_inference.cc.o"
  "CMakeFiles/quarry_etl.dir/etl/schema_inference.cc.o.d"
  "CMakeFiles/quarry_etl.dir/etl/xlm.cc.o"
  "CMakeFiles/quarry_etl.dir/etl/xlm.cc.o.d"
  "libquarry_etl.a"
  "libquarry_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarry_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
