# Empty dependencies file for bench_etl_integration.
# This may be replaced when dependencies are built.
