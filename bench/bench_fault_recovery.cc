// Robustness experiments (docs/ROBUSTNESS.md, BENCH_robustness.json):
//  - checkpoint overhead: resilient ETL execution (retry policy + checkpoint
//    + loader snapshots) vs the plain fail-fast path, faults disabled;
//  - recovery latency: resuming a failed run from its checkpoint vs
//    re-running the whole flow, after an injected fault at the last loader.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "deployer/deployer.h"
#include "deployer/sql_generator.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"
#include "storage/sql.h"

namespace {

using quarry::core::Quarry;
using quarry::fault::Injector;

quarry::storage::Database& SharedSource() {
  static quarry::storage::Database* db = [] {
    auto* d = new quarry::storage::Database("tpch");
    if (!quarry::datagen::PopulateTpch(d, {0.01, 77}).ok()) std::abort();
    return d;
  }();
  return *db;
}

/// The unified design of a 4-requirement workload, plus an empty warehouse
/// with its DDL already applied (cloned fresh for every measured run).
struct Scenario {
  std::unique_ptr<Quarry> quarry;
  std::unique_ptr<quarry::storage::Database> empty_warehouse;
  int64_t loader_writes = 0;  ///< Fault-site hits of one clean ETL run.
};

Scenario& SharedScenario() {
  static Scenario* s = [] {
    auto* scenario = new Scenario();
    auto q = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                            quarry::ontology::BuildTpchMappings(),
                            &SharedSource());
    if (!q.ok()) std::abort();
    scenario->quarry = std::move(*q);
    quarry::req::WorkloadConfig config;
    config.num_requirements = 4;
    config.overlap = 0.6;
    config.seed = 21;
    for (const auto& ir : quarry::req::GenerateTpchWorkload(config)) {
      if (!scenario->quarry->AddRequirement(ir).ok()) std::abort();
    }
    auto ddl = quarry::deployer::GenerateSql(scenario->quarry->schema(),
                                             scenario->quarry->mapping(),
                                             SharedSource());
    if (!ddl.ok()) std::abort();
    auto warehouse = std::make_unique<quarry::storage::Database>();
    if (!quarry::storage::ExecuteSql(warehouse.get(), *ddl).ok()) {
      std::abort();
    }
    scenario->empty_warehouse = std::move(warehouse);

    // Count loader writes so the recovery benches can kill the LAST one.
    Injector::Instance().ClearConfigs();
    Injector::Instance().Enable(/*seed=*/7);
    auto target = scenario->empty_warehouse->Clone();
    quarry::etl::Executor executor(&SharedSource(), target.get());
    if (!executor.Run(scenario->quarry->flow()).ok()) std::abort();
    scenario->loader_writes =
        Injector::Instance().HitCount("etl.exec.Loader.write");
    Injector::Instance().Disable();
    return scenario;
  }();
  return *s;
}

void BM_EtlRunPlain(benchmark::State& state) {
  Scenario& s = SharedScenario();
  int64_t rows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto target = s.empty_warehouse->Clone();
    state.ResumeTiming();
    quarry::etl::Executor executor(&SharedSource(), target.get());
    auto report = executor.Run(s.quarry->flow());
    if (!report.ok()) std::abort();
    rows = report->rows_processed;
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_EtlRunPlain);

void BM_EtlRunCheckpointed(benchmark::State& state) {
  Scenario& s = SharedScenario();
  quarry::etl::RetryPolicy retry;
  retry.max_attempts = 3;
  for (auto _ : state) {
    state.PauseTiming();
    auto target = s.empty_warehouse->Clone();
    state.ResumeTiming();
    quarry::etl::Executor executor(&SharedSource(), target.get());
    quarry::etl::Checkpoint checkpoint;
    auto report = executor.Run(s.quarry->flow(), retry, &checkpoint);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(checkpoint.completed.size());
  }
}
BENCHMARK(BM_EtlRunCheckpointed);

void BM_DeployTransactionalFaultsOff(benchmark::State& state) {
  Scenario& s = SharedScenario();
  for (auto _ : state) {
    quarry::storage::Database target;
    auto outcome = s.quarry->DeployResilient(&target);
    if (!outcome.ok() || !outcome->success) std::abort();
    benchmark::DoNotOptimize(outcome->report.tables_created);
  }
}
BENCHMARK(BM_DeployTransactionalFaultsOff);

/// One failed run (fault at the last loader write), then the measured
/// recovery: Resume re-runs only what the checkpoint lacks.
void BM_RecoverViaResume(benchmark::State& state) {
  Scenario& s = SharedScenario();
  for (auto _ : state) {
    state.PauseTiming();
    auto target = s.empty_warehouse->Clone();
    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure("etl.exec.Loader.write",
                                   {.trigger_on_hit = s.loader_writes});
    Injector::Instance().Enable(7);
    quarry::etl::Executor executor(&SharedSource(), target.get());
    quarry::etl::Checkpoint checkpoint;
    if (executor.Run(s.quarry->flow(), quarry::etl::RetryPolicy{},
                     &checkpoint)
            .ok()) {
      std::abort();  // the injected fault must fail the run
    }
    Injector::Instance().Disable();
    state.ResumeTiming();
    auto report = executor.Resume(s.quarry->flow(), &checkpoint);
    if (!report.ok() || !report->recovered) std::abort();
  }
}
BENCHMARK(BM_RecoverViaResume);

/// Same failed run, recovered the naive way: roll the target back and
/// re-run the whole flow from scratch.
void BM_RecoverViaFullRerun(benchmark::State& state) {
  Scenario& s = SharedScenario();
  for (auto _ : state) {
    state.PauseTiming();
    auto target = s.empty_warehouse->Clone();
    Injector::Instance().ClearConfigs();
    Injector::Instance().Configure("etl.exec.Loader.write",
                                   {.trigger_on_hit = s.loader_writes});
    Injector::Instance().Enable(7);
    quarry::etl::Executor executor(&SharedSource(), target.get());
    quarry::etl::Checkpoint checkpoint;
    if (executor.Run(s.quarry->flow(), quarry::etl::RetryPolicy{},
                     &checkpoint)
            .ok()) {
      std::abort();
    }
    Injector::Instance().Disable();
    state.ResumeTiming();
    auto fresh = s.empty_warehouse->Clone();
    quarry::etl::Executor rerun_exec(&SharedSource(), fresh.get());
    auto report = rerun_exec.Run(s.quarry->flow());
    if (!report.ok()) std::abort();
  }
}
BENCHMARK(BM_RecoverViaFullRerun);

void PrintSeries() {
  Scenario& s = SharedScenario();
  std::printf(
      "R1: resilient execution overhead + recovery latency "
      "(TPC-H sf=0.01, 4 IRs, %zu flow nodes)\n",
      s.quarry->flow().num_nodes());

  constexpr int kRuns = 5;
  double plain_ms = 0, checkpointed_ms = 0, resume_ms = 0, rerun_ms = 0;
  quarry::etl::RetryPolicy retry;
  retry.max_attempts = 3;
  for (int i = 0; i < kRuns; ++i) {
    {
      auto target = s.empty_warehouse->Clone();
      quarry::etl::Executor executor(&SharedSource(), target.get());
      quarry::Timer t;
      if (!executor.Run(s.quarry->flow()).ok()) std::abort();
      plain_ms += t.ElapsedMillis();
    }
    {
      auto target = s.empty_warehouse->Clone();
      quarry::etl::Executor executor(&SharedSource(), target.get());
      quarry::etl::Checkpoint checkpoint;
      quarry::Timer t;
      if (!executor.Run(s.quarry->flow(), retry, &checkpoint).ok()) {
        std::abort();
      }
      checkpointed_ms += t.ElapsedMillis();
    }
    {
      auto target = s.empty_warehouse->Clone();
      Injector::Instance().ClearConfigs();
      Injector::Instance().Configure("etl.exec.Loader.write",
                                     {.trigger_on_hit = s.loader_writes});
      Injector::Instance().Enable(7);
      quarry::etl::Executor executor(&SharedSource(), target.get());
      quarry::etl::Checkpoint checkpoint;
      if (executor.Run(s.quarry->flow(), quarry::etl::RetryPolicy{},
                       &checkpoint)
              .ok()) {
        std::abort();
      }
      Injector::Instance().Disable();
      quarry::Timer t_resume;
      if (!executor.Resume(s.quarry->flow(), &checkpoint).ok()) std::abort();
      resume_ms += t_resume.ElapsedMillis();

      auto fresh = s.empty_warehouse->Clone();
      quarry::etl::Executor rerun_exec(&SharedSource(), fresh.get());
      quarry::Timer t_rerun;
      if (!rerun_exec.Run(s.quarry->flow()).ok()) std::abort();
      rerun_ms += t_rerun.ElapsedMillis();
    }
  }
  plain_ms /= kRuns;
  checkpointed_ms /= kRuns;
  resume_ms /= kRuns;
  rerun_ms /= kRuns;
  std::printf("etl_plain_ms         | %8.2f\n", plain_ms);
  std::printf("etl_checkpointed_ms  | %8.2f  (overhead %+.1f%%)\n",
              checkpointed_ms,
              100.0 * (checkpointed_ms - plain_ms) / plain_ms);
  std::printf("recover_resume_ms    | %8.2f\n", resume_ms);
  std::printf("recover_rerun_ms     | %8.2f  (resume is %.1fx faster)\n",
              rerun_ms, rerun_ms / resume_ms);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
