#ifndef QUARRY_STORAGE_GENERATION_STORE_H_
#define QUARRY_STORAGE_GENERATION_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/database.h"
#include "storage/generation_persist.h"

namespace quarry::obs {
class Counter;
class Gauge;
}  // namespace quarry::obs

namespace quarry::storage {

/// Counters of a GenerationStore, snapshotted under its lock
/// (docs/ROBUSTNESS.md §9). `active_pins` is exact at the moment of the
/// snapshot; the soak harness asserts it returns to zero once every reader
/// has released its pin.
struct GenerationStoreStats {
  uint64_t published = 0;         ///< Successful Publish() calls.
  uint64_t publish_failures = 0;  ///< Publishes refused at the fault site.
  uint64_t retired = 0;           ///< Generations the store released.
  uint64_t retires_deferred = 0;  ///< Retire-site faults (kept, retried later).
  int live_generations = 0;       ///< Generations the store still references.
  int active_pins = 0;            ///< Outstanding reader Pins.
};

/// \brief Generation-stamped snapshot store for the target warehouse
/// (docs/ROBUSTNESS.md §9) — the relational mirror of the docstore's
/// generation-stamped snapshot scheme (§6.3).
///
/// Every published generation is an immutable `Database` owned by a
/// shared_ptr. Writers build the *next* generation off to the side (a
/// scratch database obtained from BeginBuild / BeginEmptyBuild, never
/// reachable by readers) and atomically publish it on success; a failed
/// build — lifecycle abort, operator fault, or an injected publish fault —
/// simply discards the scratch, so rollback is a pointer drop instead of a
/// full-database RestoreFrom. Readers Acquire() a Pin: an RAII, refcounted
/// handle onto one generation that keeps serving that exact snapshot for
/// the whole query, no matter how many generations publish meanwhile.
///
/// Retention: the store itself references the current generation and the
/// previous one (the stale-read target, §9.3); anything older is retired —
/// dropped from the store, freed once the last Pin releases. The
/// `storage.generation.publish` and `storage.generation.retire` fault
/// sites let the chaos soak exercise both edges: a publish fault leaves
/// the store serving the old generation, a retire fault defers the release
/// onto a retry list drained by later publishes (or DrainDeferredRetires).
///
/// Thread-safety: every member is safe to call concurrently; publication
/// is a mutex-guarded pointer swap (microseconds, independent of data
/// size), and pinned databases are immutable by construction. The store
/// must outlive its scratch builders, but Pins may outlive the store.
class GenerationStore {
 public:
  /// \brief A pinned read snapshot: one generation, guaranteed immutable
  /// and alive for the Pin's lifetime. Move-only; releasing (destroying)
  /// the last Pin of a retired generation frees it.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { Release(); }
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    bool valid() const { return db_ != nullptr; }
    uint64_t generation() const { return generation_; }
    /// Requires valid().
    const Database& db() const { return *db_; }
    /// Opaque payload published atomically with the database (the core
    /// layer attaches the MD-schema snapshot the generation was deployed
    /// from). May be null for generations published without an annex.
    const std::shared_ptr<const void>& annex() const { return annex_; }

    /// Drops the reference; idempotent.
    void Release();

   private:
    friend class GenerationStore;
    std::shared_ptr<const Database> db_;
    std::shared_ptr<const void> annex_;
    std::shared_ptr<std::atomic<int>> pin_count_;  ///< Shared with the store.
    uint64_t generation_ = 0;
  };

  explicit GenerationStore(std::string name = "warehouse");

  const std::string& name() const { return name_; }

  /// Turns the serialized annex payload a generation was persisted with
  /// back into the opaque in-memory annex (the core layer parses the xMD
  /// document into an md::MdSchema). A failure quarantines the candidate
  /// generation during recovery, exactly like a CRC mismatch.
  using AnnexDecoder =
      std::function<Result<std::shared_ptr<const void>>(const std::string&)>;

  /// Makes the store crash-safe on `dir` (docs/ROBUSTNESS.md §10). Runs the
  /// startup recovery pass first — scanning `dir`, discarding torn
  /// publishes, quarantining corrupt generations and republishing the
  /// newest intact one so readers serve immediately at cold start — then
  /// switches every later Publish to the durable two-phase commit and every
  /// retire to on-disk directory deletion. `decoder` rebuilds the annex of
  /// the recovered generation; `stats` (nullable) reports what recovery
  /// found. If the store already holds an in-memory generation newer than
  /// anything on disk, that generation is checkpointed so the durable
  /// directory catches up. Idempotent against crashes: failing anywhere
  /// leaves the store non-durable and the directory recoverable, and the
  /// call can simply be retried.
  Status EnableDurability(const std::string& dir, AnnexDecoder decoder = {},
                          persist::GenerationRecoveryStats* stats = nullptr);

  bool durable() const;
  /// Empty until EnableDurability succeeds.
  std::string durable_dir() const;

  /// Id of the currently served generation; 0 when nothing has been
  /// published yet. Ids are dense and strictly increasing from 1.
  uint64_t current_generation() const;
  bool has_generation() const { return current_generation() != 0; }

  /// Pins the current generation. NotFound when nothing is published.
  Result<Pin> Acquire() const;

  /// Pins the *previous* generation (N-1) — the stale-read degradation
  /// target (docs/ROBUSTNESS.md §9.3). NotFound when fewer than two
  /// generations have been published or the previous one was retired.
  Result<Pin> AcquirePrevious() const;

  /// A scratch database seeded with a deep copy of the current generation
  /// (or empty when none) — the refresh path: loaders merge the source
  /// delta into the copy, then Publish() swaps it in.
  std::unique_ptr<Database> BeginBuild() const;

  /// A fresh, empty scratch database — the full-deploy path.
  std::unique_ptr<Database> BeginEmptyBuild() const;

  /// Atomically publishes `next` as the new current generation and retires
  /// everything older than the new previous. Returns the new generation id.
  /// The `storage.generation.publish` fault site fires *before* any state
  /// changes: on failure the scratch is discarded, the store is untouched,
  /// and readers keep serving the old generation — the O(1) rollback the
  /// deployer's serve-while-refresh path relies on.
  ///
  /// Durable stores (EnableDurability) additionally run the two-phase
  /// on-disk commit *before* the in-memory pointer swap: the publish is
  /// acknowledged only once the generation's MANIFEST.json has landed, so
  /// a crash at any point either keeps the old generation (torn publish on
  /// disk, discarded by the next recovery) or recovers the new one intact —
  /// never a partial state. `annex_bytes` is the serialized form of
  /// `annex`, persisted alongside the tables so recovery can rebuild the
  /// annex through the AnnexDecoder; pass empty to persist no annex.
  ///
  /// Readers never block on a publish: the disk work happens outside the
  /// reader lock, which is only taken for the final pointer swap.
  Result<uint64_t> Publish(std::unique_ptr<Database> next,
                           std::shared_ptr<const void> annex = nullptr,
                           std::string_view annex_bytes = {});

  /// Content fingerprint recorded when `generation` was published (the
  /// soak harness checks every query result against exactly one of these).
  /// NotFound for ids that were never published.
  Result<uint64_t> PublishedFingerprint(uint64_t generation) const;

  /// Retries every deferred retire (a previous retire drew an injected
  /// fault). Returns how many generations were released. The chaos soak
  /// calls this after disabling injection to prove nothing leaks.
  int DrainDeferredRetires();

  GenerationStoreStats stats() const;

 private:
  struct Generation {
    uint64_t id = 0;
    std::shared_ptr<const Database> db;
    std::shared_ptr<const void> annex;
    /// Serialized annex, kept so EnableDurability can checkpoint a
    /// generation that was published before the store became durable.
    std::string annex_bytes;
  };

  Pin MakePin(const Generation& gen) const;
  /// Retires a batch of generations outside mu_ (on-disk deletion can be
  /// slow; readers must never wait on it). Honours the retire fault site
  /// and the durable directory removal; failures re-park the generation on
  /// the deferred list. Called with publish_mu_ held, mu_ NOT held.
  /// Returns how many generations were released.
  int RetireBatch(std::vector<Generation> gens);
  void UpdateGaugesLocked() const;

  std::string name_;
  /// Serializes publishers (Publish / DrainDeferredRetires /
  /// EnableDurability) end-to-end so the heavy disk I/O of a durable
  /// commit never runs concurrently with another publisher — while mu_,
  /// which readers' Acquire takes, is only ever held for pointer swaps.
  /// Lock order: publish_mu_ before mu_.
  mutable std::mutex publish_mu_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;                     ///< Guarded by mu_.
  Generation current_;                       ///< Guarded by mu_. id 0 = none.
  Generation previous_;                      ///< Guarded by mu_. id 0 = none.
  std::vector<Generation> deferred_retire_;  ///< Guarded by mu_.
  std::map<uint64_t, uint64_t> fingerprints_;  ///< Guarded by mu_.
  GenerationStoreStats stats_;               ///< Guarded by mu_ (not pins).
  bool durable_ = false;                     ///< Guarded by mu_.
  std::string durable_dir_;                  ///< Guarded by mu_.
  /// Shared with every Pin so releases stay safe even if the store is gone.
  std::shared_ptr<std::atomic<int>> pin_count_ =
      std::make_shared<std::atomic<int>>(0);

  // Cached metric instances (process-lifetime pointers, obs/metrics.h).
  obs::Counter* published_total_;
  obs::Counter* publish_failures_total_;
  obs::Counter* retired_total_;
  obs::Counter* retires_deferred_total_;
  obs::Gauge* live_gauge_;
  obs::Gauge* pins_gauge_;
};

}  // namespace quarry::storage

#endif  // QUARRY_STORAGE_GENERATION_STORE_H_
