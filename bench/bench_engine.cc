// Experiment S3 (EXPERIMENTS.md): "Design deployment" scenario — engine
// substrate characterization: per-operator throughput of the embedded ETL
// engine (the Pentaho stand-in) plus deployment+load time as the source
// scale factor grows.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/timer.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "etl/exec/executor.h"
#include "ontology/tpch_ontology.h"

namespace {

using quarry::etl::Executor;
using quarry::etl::Flow;
using quarry::etl::Node;
using quarry::etl::OpType;

quarry::storage::Database& SharedSource() {
  static quarry::storage::Database* db = [] {
    auto* d = new quarry::storage::Database("tpch");
    if (!quarry::datagen::PopulateTpch(d, {0.01, 3}).ok()) std::abort();
    return d;
  }();
  return *db;
}

Node MakeNode(const std::string& id, OpType type,
              std::map<std::string, std::string> params) {
  Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

Flow LineitemPipeline(std::vector<Node> middle) {
  Flow flow("bench");
  (void)flow.AddNode(MakeNode("ds", OpType::kDatastore,
                              {{"table", "lineitem"}}));
  (void)flow.AddNode(MakeNode("ex", OpType::kExtraction,
                              {{"table", "lineitem"}}));
  (void)flow.AddEdge("ds", "ex");
  std::string prev = "ex";
  for (Node& node : middle) {
    std::string id = node.id;
    (void)flow.AddNode(std::move(node));
    (void)flow.AddEdge(prev, id);
    prev = id;
  }
  (void)flow.AddNode(MakeNode("ld", OpType::kLoader, {{"table", "out"}}));
  (void)flow.AddEdge(prev, "ld");
  return flow;
}

int64_t RunAndCount(const Flow& flow) {
  quarry::storage::Database target;
  auto report = Executor(&SharedSource(), &target).Run(flow);
  if (!report.ok()) std::abort();
  return report->rows_processed;
}

void BenchFlow(benchmark::State& state, const Flow& flow) {
  int64_t rows = 0;
  for (auto _ : state) {
    rows = RunAndCount(flow);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_OpSelection(benchmark::State& state) {
  BenchFlow(state, LineitemPipeline({MakeNode(
                       "sel", OpType::kSelection,
                       {{"predicate", "l_quantity > 25"}})}));
}
BENCHMARK(BM_OpSelection)->Unit(benchmark::kMillisecond);

void BM_OpProjection(benchmark::State& state) {
  BenchFlow(state,
            LineitemPipeline({MakeNode(
                "pr", OpType::kProjection,
                {{"columns", "l_orderkey,l_partkey,l_extendedprice"}})}));
}
BENCHMARK(BM_OpProjection)->Unit(benchmark::kMillisecond);

void BM_OpFunction(benchmark::State& state) {
  BenchFlow(state, LineitemPipeline({MakeNode(
                       "fn", OpType::kFunction,
                       {{"column", "revenue"},
                        {"expr",
                         "l_extendedprice * (1 - l_discount)"}})}));
}
BENCHMARK(BM_OpFunction)->Unit(benchmark::kMillisecond);

void BM_OpAggregation(benchmark::State& state) {
  BenchFlow(state, LineitemPipeline({MakeNode(
                       "ag", OpType::kAggregation,
                       {{"group", "l_partkey"},
                        {"aggs",
                         "SUM(l_quantity) AS q;AVG(l_discount) AS d"}})}));
}
BENCHMARK(BM_OpAggregation)->Unit(benchmark::kMillisecond);

void BM_OpSort(benchmark::State& state) {
  BenchFlow(state, LineitemPipeline({MakeNode(
                       "so", OpType::kSort,
                       {{"by", "l_extendedprice"}, {"desc", "true"}})}));
}
BENCHMARK(BM_OpSort)->Unit(benchmark::kMillisecond);

void BM_OpJoin(benchmark::State& state) {
  Flow flow("join");
  (void)flow.AddNode(MakeNode("l", OpType::kDatastore,
                              {{"table", "lineitem"}}));
  (void)flow.AddNode(MakeNode("p", OpType::kDatastore, {{"table", "part"}}));
  (void)flow.AddNode(MakeNode("j", OpType::kJoin,
                              {{"left", "l_partkey"},
                               {"right", "p_partkey"}}));
  (void)flow.AddNode(MakeNode("ld", OpType::kLoader, {{"table", "out"}}));
  (void)flow.AddEdge("l", "j");
  (void)flow.AddEdge("p", "j");
  (void)flow.AddEdge("j", "ld");
  BenchFlow(state, flow);
}
BENCHMARK(BM_OpJoin)->Unit(benchmark::kMillisecond);

void PrintSeries() {
  std::printf("S3: deployment + initial load time vs scale factor\n");
  std::printf("%8s %10s %10s | %10s %12s %10s\n", "sf", "src_rows",
              "gen_ms", "deploy_ms", "etl_rows", "etl_ms");
  for (double sf : {0.002, 0.005, 0.01, 0.02}) {
    quarry::Timer t_gen;
    quarry::storage::Database source("tpch");
    if (!quarry::datagen::PopulateTpch(&source, {sf, 3}).ok()) std::abort();
    double gen_ms = t_gen.ElapsedMillis();
    auto quarry = quarry::core::Quarry::Create(
        quarry::ontology::BuildTpchOntology(),
        quarry::ontology::BuildTpchMappings(), &source);
    if (!quarry.ok()) std::abort();
    quarry::req::InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         quarry::md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    if (!(*quarry)->AddRequirement(ir).ok()) std::abort();
    quarry::Timer t_deploy;
    quarry::storage::Database warehouse;
    auto report = (*quarry)->Deploy(&warehouse);
    if (!report.ok()) std::abort();
    std::printf("%8.3f %10zu %10.1f | %10.1f %12lld %10.1f\n", sf,
                source.TotalRows(), gen_ms, t_deploy.ElapsedMillis(),
                static_cast<long long>(report->etl.rows_processed),
                report->etl.total_millis);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
