// Experiment S2-time (EXPERIMENTS.md): "Quarry efficiently accommodates
// these changes" — the cost of evolving an existing design incrementally
// (ChangeRequirement / RemoveRequirement on the unified design) versus
// rebuilding the whole design from scratch after every change.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"

namespace {

using quarry::core::Quarry;
using quarry::req::InformationRequirement;

quarry::storage::Database& SharedSource() {
  static quarry::storage::Database* db = [] {
    auto* d = new quarry::storage::Database("tpch");
    if (!quarry::datagen::PopulateTpch(d, {0.005, 97}).ok()) std::abort();
    return d;
  }();
  return *db;
}

std::vector<InformationRequirement> Workload(int n) {
  quarry::req::WorkloadConfig config;
  config.num_requirements = n;
  config.overlap = 0.6;
  config.seed = 5;
  return quarry::req::GenerateTpchWorkload(config);
}

std::unique_ptr<Quarry> FreshQuarry() {
  auto quarry = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                               quarry::ontology::BuildTpchMappings(),
                               &SharedSource());
  if (!quarry.ok()) std::abort();
  return std::move(*quarry);
}

void PrintSeries() {
  std::printf(
      "S2-time: accommodating one change — incremental vs from-scratch\n");
  std::printf("%4s | %14s %14s %9s\n", "N", "incremental_ms",
              "from_scratch_ms", "speedup");
  auto median3 = [](double a, double b, double c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  for (int n : {4, 8, 12, 16}) {
    std::vector<InformationRequirement> workload = Workload(n);
    InformationRequirement original = workload[static_cast<size_t>(n / 2)];
    InformationRequirement changed = original;
    changed.dimensions.push_back({"Region.r_name"});
    // Build the base design once.
    auto quarry = FreshQuarry();
    for (const auto& ir : workload) {
      if (!quarry->AddRequirement(ir).ok()) std::abort();
    }
    // Median of three change applications (sub-millisecond work on a
    // shared box is noisy); alternate the definition so every iteration
    // really changes something.
    double inc_samples[3];
    bool use_changed = true;
    for (double& sample : inc_samples) {
      quarry::Timer t_inc;
      if (!quarry->ChangeRequirement(use_changed ? changed : original)
               .ok()) {
        std::abort();
      }
      sample = t_inc.ElapsedMillis();
      use_changed = !use_changed;
    }
    double incremental_ms = median3(inc_samples[0], inc_samples[1],
                                    inc_samples[2]);
    // From scratch: rebuild everything with the changed definition.
    double scratch_samples[3];
    for (double& sample : scratch_samples) {
      quarry::Timer t_scratch;
      auto rebuilt = FreshQuarry();
      for (const auto& ir : workload) {
        const InformationRequirement& use =
            ir.id == changed.id ? changed : ir;
        if (!rebuilt->AddRequirement(use).ok()) std::abort();
      }
      sample = t_scratch.ElapsedMillis();
    }
    double scratch_ms = median3(scratch_samples[0], scratch_samples[1],
                                scratch_samples[2]);
    std::printf("%4d | %14.2f %15.2f %8.2fx\n", n, incremental_ms,
                scratch_ms, scratch_ms / incremental_ms);
  }
  std::printf("\n");
}

void BM_ChangeOneRequirement(benchmark::State& state) {
  std::vector<InformationRequirement> workload =
      Workload(static_cast<int>(state.range(0)));
  auto quarry = FreshQuarry();
  for (const auto& ir : workload) {
    if (!quarry->AddRequirement(ir).ok()) std::abort();
  }
  InformationRequirement a = workload[1];
  InformationRequirement b = workload[1];
  b.dimensions.push_back({"Region.r_name"});
  bool use_b = true;
  for (auto _ : state) {
    if (!quarry->ChangeRequirement(use_b ? b : a).ok()) std::abort();
    use_b = !use_b;
    benchmark::DoNotOptimize(quarry->flow().num_nodes());
  }
  state.counters["requirements"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ChangeOneRequirement)->Arg(4)->Arg(8)->Arg(16);

void BM_RemoveAndReAdd(benchmark::State& state) {
  std::vector<InformationRequirement> workload = Workload(8);
  auto quarry = FreshQuarry();
  for (const auto& ir : workload) {
    if (!quarry->AddRequirement(ir).ok()) std::abort();
  }
  for (auto _ : state) {
    if (!quarry->RemoveRequirement(workload[3].id).ok()) std::abort();
    if (!quarry->AddRequirement(workload[3]).ok()) std::abort();
    benchmark::DoNotOptimize(quarry->requirements().size());
  }
}
BENCHMARK(BM_RemoveAndReAdd);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
