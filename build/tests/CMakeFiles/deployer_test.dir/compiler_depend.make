# Empty compiler generated dependencies file for deployer_test.
# This may be replaced when dependencies are built.
