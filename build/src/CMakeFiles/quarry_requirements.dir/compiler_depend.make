# Empty compiler generated dependencies file for quarry_requirements.
# This may be replaced when dependencies are built.
