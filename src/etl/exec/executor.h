#ifndef QUARRY_ETL_EXEC_EXECUTOR_H_
#define QUARRY_ETL_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/prng.h"
#include "common/result.h"
#include "etl/flow.h"
#include "storage/database.h"

namespace quarry::etl {

/// An intermediate operator result: named columns over rows.
struct Dataset {
  std::vector<std::string> columns;
  std::vector<storage::Row> rows;
};

/// \brief How the executor retries a failed operator (docs/ROBUSTNESS.md).
///
/// Backoff before the Nth retry is exponential with deterministic jitter:
///   exp    = min(base_backoff_millis * 2^(N-1), max_backoff_millis)
///   sleep  = exp * ((1 - jitter_fraction) + jitter_fraction * U)
/// where U is a uniform draw from a Prng seeded with `jitter_seed` — the
/// same policy yields the same sleep sequence on every run. The default
/// base of 0 disables sleeping entirely (tests and benches retry
/// instantly).
struct RetryPolicy {
  int max_attempts = 1;  ///< 1 = fail fast (no retry).
  double base_backoff_millis = 0.0;
  double max_backoff_millis = 64.0;
  double jitter_fraction = 0.5;  ///< Share of the backoff that jitters.
  uint64_t jitter_seed = 0x51;
};

/// Backoff before the retry following `failed_attempts` failures (>= 1),
/// consuming one draw from `prng`. Exposed for determinism tests.
double RetryBackoffMillis(const RetryPolicy& policy, int failed_attempts,
                          Prng* prng);

/// \brief Resumable execution state: everything a re-run needs to continue
/// from the last completed operator instead of re-running extraction.
///
/// `Run` keeps `completed`/`loaded` current as nodes finish; `datasets` is
/// filled only when a run fails (the abandoned run's live intermediates
/// move in wholesale), so the success path never copies a dataset and the
/// checkpoint never holds more intermediates than the executor itself did.
/// `Resume` picks up from the completed prefix.
struct Checkpoint {
  std::string flow_name;
  std::vector<std::string> completed;      ///< Node ids, in execution order.
  std::map<std::string, Dataset> datasets; ///< Failure-time intermediates.
  std::map<std::string, int64_t> loaded;   ///< Rows written by completed loaders.
  std::string failed_node;                 ///< Set when the producing run failed.
  bool valid = false;                      ///< A run has populated this.
};

/// Per-node execution statistics.
struct NodeStats {
  std::string node_id;
  OpType type = OpType::kExtraction;
  int64_t rows_in = 0;
  int64_t rows_out = 0;
  double millis = 0;
  int attempts = 1;  ///< 1 = first attempt succeeded.
};

/// \brief Outcome of executing a flow.
///
/// `rows_processed` (the sum of every operator's input cardinality) is the
/// engine-level measure behind the paper's "overall execution time" quality
/// factor: the ETL Process Integrator's cost model predicts it, and the
/// benches compare predicted vs. measured.
struct ExecutionReport {
  double total_millis = 0;
  int64_t rows_processed = 0;
  std::vector<NodeStats> nodes;
  std::map<std::string, int64_t> loaded;  ///< target table -> rows written
  int64_t attempts = 0;  ///< Total operator attempts (>= nodes run).
  std::vector<std::string> retried_nodes;  ///< Nodes that needed > 1 attempt.
  bool recovered = false;  ///< Completed only thanks to retries or a resume.
};

/// \brief Executes logical ETL flows (xLM) — the repo's stand-in for
/// Pentaho PDI (see DESIGN.md §2).
///
/// Operators are evaluated in topological order, materializing one Dataset
/// per node. Loader semantics: the target table is created on first use
/// (column types inferred from the data) unless it already exists; target
/// columns the dataset lacks load as NULL; when the Loader declares `keys`,
/// a row whose key already exists *merges* — its non-NULL values fill the
/// existing row's NULL cells. This makes dimension and fact loads
/// idempotent and lets several partial loaders of one integrated flow
/// converge on the same table (e.g. two requirements contributing different
/// measures of a merged fact).
///
/// Resilience: each node runs under the given RetryPolicy. Loader attempts
/// snapshot their target table first and restore it on failure, so a retry
/// (or a later Resume) never observes a half-written table. With a
/// Checkpoint attached, a failed Run leaves enough state behind for
/// Resume() to continue from the last completed operator.
class Executor {
 public:
  /// `source` provides Datastore tables; `target` receives Loader output.
  /// Both pointers must outlive the executor. They may alias.
  Executor(const storage::Database* source, storage::Database* target)
      : source_(source), target_(target) {}

  /// Runs the flow; fails fast on the first operator error.
  Result<ExecutionReport> Run(const Flow& flow);

  /// Runs the flow with per-node retries. When `checkpoint` is non-null it
  /// is (re)initialized and kept current, so a failed run can be resumed.
  Result<ExecutionReport> Run(const Flow& flow, const RetryPolicy& retry,
                              Checkpoint* checkpoint = nullptr);

  /// Continues a failed run from `checkpoint`: completed operators are
  /// skipped (their checkpointed outputs feed the remaining ones) and the
  /// checkpoint keeps advancing, so Resume can itself be resumed.
  Result<ExecutionReport> Resume(const Flow& flow, Checkpoint* checkpoint,
                                 const RetryPolicy& retry = {});

 private:
  Result<ExecutionReport> RunInternal(const Flow& flow,
                                      const RetryPolicy& retry,
                                      Checkpoint* checkpoint, bool resume);

  Result<Dataset> RunNode(const Node& node, const Flow& flow,
                          const std::map<std::string, Dataset>& done,
                          ExecutionReport* report);

  const storage::Database* source_;
  storage::Database* target_;
};

}  // namespace quarry::etl

#endif  // QUARRY_ETL_EXEC_EXECUTOR_H_
