#include <gtest/gtest.h>

#include "etl/cost_model.h"
#include "etl/expr.h"
#include "etl/flow.h"
#include "etl/schema_inference.h"
#include "etl/xlm.h"
#include "xml/xml.h"

namespace quarry::etl {
namespace {

using storage::Row;
using storage::Value;

// --- expressions -----------------------------------------------------------

Result<Value> EvalOn(const std::string& text,
                     const std::vector<std::string>& names, const Row& row) {
  auto expr = ParseExpr(text);
  if (!expr.ok()) return expr.status();
  RowView view{&names, &row};
  return (*expr)->Eval(view);
}

TEST(ExprTest, ArithmeticPrecedence) {
  EXPECT_EQ(EvalOn("1 + 2 * 3", {}, {})->as_int(), 7);
  EXPECT_EQ(EvalOn("(1 + 2) * 3", {}, {})->as_int(), 9);
  EXPECT_DOUBLE_EQ(EvalOn("7 / 2", {}, {})->as_double(), 3.5);
  EXPECT_EQ(EvalOn("-3 + 5", {}, {})->as_int(), 2);
  EXPECT_EQ(EvalOn("2 - 3 - 4", {}, {})->as_int(), -5);
}

TEST(ExprTest, ColumnsResolveByName) {
  std::vector<std::string> names{"l_extendedprice", "l_discount"};
  Row row{Value::Double(100.0), Value::Double(0.05)};
  auto v = EvalOn("l_extendedprice * (1 - l_discount)", names, row);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_DOUBLE_EQ(v->as_double(), 95.0);
}

TEST(ExprTest, UnknownColumnFails) {
  EXPECT_TRUE(EvalOn("nope + 1", {"a"}, {Value::Int(1)})
                  .status()
                  .IsNotFound());
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(EvalOn("1 < 2", {}, {})->as_bool());
  EXPECT_TRUE(EvalOn("2 <= 2", {}, {})->as_bool());
  EXPECT_FALSE(EvalOn("1 = 2", {}, {})->as_bool());
  EXPECT_TRUE(EvalOn("1 <> 2", {}, {})->as_bool());
  EXPECT_TRUE(EvalOn("1 != 2", {}, {})->as_bool());
  EXPECT_TRUE(EvalOn("'Spain' = 'Spain'", {}, {})->as_bool());
  EXPECT_TRUE(EvalOn("'a' < 'b'", {}, {})->as_bool());
}

TEST(ExprTest, DateLiteralComparison) {
  auto v = EvalOn("DATE '1995-01-01' < DATE '1996-01-01'", {}, {});
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_TRUE(v->as_bool());
}

TEST(ExprTest, BooleanConnectives) {
  EXPECT_TRUE(EvalOn("TRUE AND NOT FALSE", {}, {})->as_bool());
  EXPECT_TRUE(EvalOn("FALSE OR 1 = 1", {}, {})->as_bool());
  EXPECT_FALSE(EvalOn("FALSE AND 1 = 1", {}, {})->as_bool());
  // AND binds tighter than OR.
  EXPECT_TRUE(EvalOn("TRUE OR FALSE AND FALSE", {}, {})->as_bool());
}

TEST(ExprTest, NullPropagation) {
  std::vector<std::string> names{"x"};
  Row row{Value::Null()};
  EXPECT_TRUE(EvalOn("x + 1", names, row)->is_null());
  EXPECT_TRUE(EvalOn("x = 1", names, row)->is_null());
  // NULL behaves as false under the connectives.
  EXPECT_FALSE(EvalOn("x = 1 OR FALSE", names, row)->as_bool());
  EXPECT_TRUE(EvalOn("NOT (x = 1)", names, row)->as_bool());
}

TEST(ExprTest, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(EvalOn("1 / 0", {}, {})->is_null());
}

TEST(ExprTest, StringConcatViaPlus) {
  EXPECT_EQ(EvalOn("'a' + 'b'", {}, {})->as_string(), "ab");
}

TEST(ExprTest, EscapedQuoteInStringLiteral) {
  EXPECT_EQ(EvalOn("'it''s'", {}, {})->as_string(), "it's");
}

TEST(ExprTest, ParseErrors) {
  EXPECT_TRUE(ParseExpr("").status().IsParseError());
  EXPECT_TRUE(ParseExpr("1 +").status().IsParseError());
  EXPECT_TRUE(ParseExpr("(1").status().IsParseError());
  EXPECT_TRUE(ParseExpr("1 2").status().IsParseError());
  EXPECT_TRUE(ParseExpr("'unterminated").status().IsParseError());
  EXPECT_TRUE(ParseExpr("DATE '13-13-13'").status().IsParseError());
}

TEST(ExprTest, ToStringRoundtrips) {
  for (const char* text :
       {"l_extendedprice * (1 - l_discount)",
        "Nation.n_name = 'Spain' AND l_quantity > 5",
        "NOT (a = 1) OR b <= DATE '1995-03-15'", "-x + 2.5"}) {
    auto e1 = ParseExpr(text);
    ASSERT_TRUE(e1.ok()) << text;
    auto e2 = ParseExpr((*e1)->ToString());
    ASSERT_TRUE(e2.ok()) << (*e1)->ToString();
    EXPECT_TRUE((*e1)->EqualTo(**e2)) << text;
  }
}

TEST(ExprTest, ReferencedColumns) {
  auto e = ParseExpr("a * (b + 1) > c AND a < 2");
  ASSERT_TRUE(e.ok());
  std::set<std::string> expected{"a", "b", "c"};
  EXPECT_EQ((*e)->ReferencedColumns(), expected);
}

// --- flow graph -------------------------------------------------------------

Flow MakeLinearFlow() {
  Flow flow("f");
  Node ds{"ds", OpType::kDatastore, {{"table", "lineitem"}}, {"ir1"}};
  Node ex{"ex", OpType::kExtraction, {{"table", "lineitem"}}, {"ir1"}};
  Node sel{"sel", OpType::kSelection, {{"predicate", "l_quantity > 5"}},
           {"ir1"}};
  Node load{"load", OpType::kLoader, {{"table", "out"}}, {"ir1"}};
  EXPECT_TRUE(flow.AddNode(ds).ok());
  EXPECT_TRUE(flow.AddNode(ex).ok());
  EXPECT_TRUE(flow.AddNode(sel).ok());
  EXPECT_TRUE(flow.AddNode(load).ok());
  EXPECT_TRUE(flow.AddEdge("ds", "ex").ok());
  EXPECT_TRUE(flow.AddEdge("ex", "sel").ok());
  EXPECT_TRUE(flow.AddEdge("sel", "load").ok());
  return flow;
}

TEST(FlowTest, AddRemoveNodesAndEdges) {
  Flow flow = MakeLinearFlow();
  EXPECT_EQ(flow.num_nodes(), 4u);
  EXPECT_EQ(flow.num_edges(), 3u);
  EXPECT_TRUE(flow.AddNode({"ds", OpType::kDatastore, {}, {}})
                  .IsAlreadyExists());
  EXPECT_TRUE(flow.AddEdge("ds", "ex").IsAlreadyExists());
  EXPECT_TRUE(flow.AddEdge("ds", "nope").IsNotFound());
  EXPECT_TRUE(flow.RemoveNode("sel").ok());
  EXPECT_EQ(flow.num_edges(), 1u);  // Incident edges removed.
  EXPECT_TRUE(flow.RemoveNode("sel").IsNotFound());
}

TEST(FlowTest, PredecessorsKeepEdgeOrder) {
  Flow flow("f");
  for (const char* id : {"a", "b", "j"}) {
    ASSERT_TRUE(
        flow.AddNode({id, OpType::kDatastore, {{"table", id}}, {}}).ok());
  }
  ASSERT_TRUE(flow.AddEdge("a", "j").ok());
  ASSERT_TRUE(flow.AddEdge("b", "j").ok());
  EXPECT_EQ(flow.Predecessors("j"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(FlowTest, TopologicalOrderRespectsEdges) {
  Flow flow = MakeLinearFlow();
  auto order = flow.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  auto pos = [&](const std::string& id) {
    return std::find(order->begin(), order->end(), id) - order->begin();
  };
  EXPECT_LT(pos("ds"), pos("ex"));
  EXPECT_LT(pos("ex"), pos("sel"));
  EXPECT_LT(pos("sel"), pos("load"));
}

TEST(FlowTest, CycleDetected) {
  Flow flow("f");
  ASSERT_TRUE(flow.AddNode({"a", OpType::kFunction, {}, {}}).ok());
  ASSERT_TRUE(flow.AddNode({"b", OpType::kFunction, {}, {}}).ok());
  ASSERT_TRUE(flow.AddEdge("a", "b").ok());
  ASSERT_TRUE(flow.AddEdge("b", "a").ok());
  EXPECT_TRUE(flow.TopologicalOrder().status().IsValidationError());
  EXPECT_TRUE(flow.Validate().IsValidationError());
}

TEST(FlowTest, ValidateChecksArityAndSinks) {
  Flow flow = MakeLinearFlow();
  EXPECT_TRUE(flow.Validate().ok());
  // A sink that is not a loader is invalid.
  ASSERT_TRUE(flow.AddNode({"dangling", OpType::kSelection,
                            {{"predicate", "1 = 1"}}, {}})
                  .ok());
  ASSERT_TRUE(flow.AddEdge("ex", "dangling").ok());
  EXPECT_TRUE(flow.Validate().IsValidationError());
}

TEST(FlowTest, ValidateChecksJoinArity) {
  Flow flow("f");
  ASSERT_TRUE(
      flow.AddNode({"ds", OpType::kDatastore, {{"table", "t"}}, {}}).ok());
  ASSERT_TRUE(flow.AddNode({"j", OpType::kJoin, {}, {}}).ok());
  ASSERT_TRUE(flow.AddNode({"l", OpType::kLoader, {{"table", "o"}}, {}}).ok());
  ASSERT_TRUE(flow.AddEdge("ds", "j").ok());
  ASSERT_TRUE(flow.AddEdge("j", "l").ok());
  EXPECT_TRUE(flow.Validate().IsValidationError());  // join needs 2 inputs
}

TEST(FlowTest, SourcesAndSinks) {
  Flow flow = MakeLinearFlow();
  EXPECT_EQ(flow.SourceIds(), (std::vector<std::string>{"ds"}));
  EXPECT_EQ(flow.SinkIds(), (std::vector<std::string>{"load"}));
}

TEST(FlowTest, CloneIsIndependent) {
  Flow flow = MakeLinearFlow();
  Flow copy = flow.Clone();
  ASSERT_TRUE(copy.RemoveNode("sel").ok());
  EXPECT_TRUE(flow.HasNode("sel"));
  EXPECT_EQ(copy.num_nodes(), 3u);
}

TEST(FlowTest, PruneRequirementRemovesExclusiveNodes) {
  Flow flow = MakeLinearFlow();
  // "sel" additionally serves ir2; everything else only ir1.
  (*flow.GetMutableNode("sel"))->requirement_ids.insert("ir2");
  size_t removed = flow.PruneRequirement("ir1");
  EXPECT_EQ(removed, 3u);
  EXPECT_TRUE(flow.HasNode("sel"));
  EXPECT_EQ(flow.RequirementIds(), (std::set<std::string>{"ir2"}));
}

TEST(FlowTest, SignatureDependsOnTypeAndParams) {
  Node a{"x", OpType::kSelection, {{"predicate", "p"}}, {"ir1"}};
  Node b{"y", OpType::kSelection, {{"predicate", "p"}}, {"ir2"}};
  Node c{"z", OpType::kSelection, {{"predicate", "q"}}, {"ir1"}};
  EXPECT_EQ(a.Signature(), b.Signature());  // ids and traces don't matter
  EXPECT_NE(a.Signature(), c.Signature());
}

// --- xLM io -----------------------------------------------------------------

TEST(XlmTest, RoundtripPreservesFlow) {
  Flow flow = MakeLinearFlow();
  auto doc = FlowToXlm(flow);
  auto parsed = FlowFromXlm(*doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name(), flow.name());
  EXPECT_EQ(parsed->num_nodes(), flow.num_nodes());
  EXPECT_EQ(parsed->num_edges(), flow.num_edges());
  EXPECT_EQ(parsed->GetNode("sel").value()->params.at("predicate"),
            "l_quantity > 5");
  EXPECT_EQ(parsed->GetNode("sel").value()->requirement_ids,
            (std::set<std::string>{"ir1"}));
  EXPECT_TRUE(xml::DeepEqual(*doc, *FlowToXlm(*parsed)));
}

TEST(XlmTest, RoundtripThroughText) {
  Flow flow = MakeLinearFlow();
  std::string text = xml::Write(*FlowToXlm(flow));
  // The serialized form matches the paper's tags.
  EXPECT_NE(text.find("<design>"), std::string::npos);
  EXPECT_NE(text.find("<from>ds</from>"), std::string::npos);
  EXPECT_NE(text.find("<enabled>Y</enabled>"), std::string::npos);
  auto doc = xml::Parse(text);
  ASSERT_TRUE(doc.ok());
  auto parsed = FlowFromXlm(**doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_nodes(), 4u);
}

TEST(XlmTest, RejectsBadDocuments) {
  auto not_design = xml::Parse("<flow/>");
  ASSERT_TRUE(not_design.ok());
  EXPECT_TRUE(FlowFromXlm(**not_design).status().IsParseError());
  auto bad_type = xml::Parse(
      "<design><nodes><node><name>a</name><type>Bogus</type></node></nodes>"
      "</design>");
  ASSERT_TRUE(bad_type.ok());
  EXPECT_TRUE(FlowFromXlm(**bad_type).status().IsParseError());
}

TEST(XlmTest, EngineOpTypesAreMapped) {
  EXPECT_STREQ(EngineOpType(OpType::kDatastore), "TableInput");
  EXPECT_STREQ(EngineOpType(OpType::kLoader), "TableOutput");
  EXPECT_STREQ(EngineOpType(OpType::kAggregation), "GroupBy");
}

// --- agg specs & schema inference -------------------------------------------

TEST(AggSpecTest, ParseAndPrint) {
  auto specs = ParseAggSpecs("SUM(revenue) AS total;COUNT(*) AS n;AVG(x)");
  ASSERT_TRUE(specs.ok()) << specs.status();
  ASSERT_EQ(specs->size(), 3u);
  EXPECT_EQ((*specs)[0].function, "SUM");
  EXPECT_EQ((*specs)[0].output, "total");
  EXPECT_EQ((*specs)[1].input, "*");
  EXPECT_EQ((*specs)[2].output, "AVG_x");
  EXPECT_EQ(AggSpecsToString(*specs),
            "SUM(revenue) AS total;COUNT(*) AS n;AVG(x) AS AVG_x");
}

TEST(AggSpecTest, Errors) {
  EXPECT_TRUE(ParseAggSpecs("").status().IsParseError());
  EXPECT_TRUE(ParseAggSpecs("SUM revenue").status().IsParseError());
  EXPECT_TRUE(ParseAggSpecs("MEDIAN(x) AS m").status().IsParseError());
  EXPECT_TRUE(ParseAggSpecs("SUM(*) AS s").status().IsParseError());
  EXPECT_TRUE(ParseAggSpecs("SUM(x) WITH y").status().IsParseError());
}

TableColumns TpchColumns() {
  return {
      {"lineitem",
       {"l_orderkey", "l_linenumber", "l_partkey", "l_suppkey", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax", "l_shipdate",
        "l_returnflag"}},
      {"part", {"p_partkey", "p_name", "p_brand", "p_type", "p_retailprice"}},
  };
}

TEST(SchemaInferenceTest, LinearFlowColumnsPropagate) {
  Flow flow("f");
  ASSERT_TRUE(flow.AddNode({"ds", OpType::kDatastore,
                            {{"table", "lineitem"}}, {}})
                  .ok());
  ASSERT_TRUE(flow.AddNode({"ex", OpType::kExtraction, {}, {}}).ok());
  ASSERT_TRUE(flow.AddNode({"fn", OpType::kFunction,
                            {{"column", "revenue"},
                             {"expr", "l_extendedprice * (1 - l_discount)"}},
                            {}})
                  .ok());
  ASSERT_TRUE(flow.AddNode({"pr", OpType::kProjection,
                            {{"columns", "l_partkey,revenue"}}, {}})
                  .ok());
  ASSERT_TRUE(flow.AddNode({"ag", OpType::kAggregation,
                            {{"group", "l_partkey"},
                             {"aggs", "SUM(revenue) AS total"}},
                            {}})
                  .ok());
  ASSERT_TRUE(flow.AddEdge("ds", "ex").ok());
  ASSERT_TRUE(flow.AddEdge("ex", "fn").ok());
  ASSERT_TRUE(flow.AddEdge("fn", "pr").ok());
  ASSERT_TRUE(flow.AddEdge("pr", "ag").ok());
  auto columns = InferColumns(flow, TpchColumns());
  ASSERT_TRUE(columns.ok()) << columns.status();
  EXPECT_EQ(columns->at("ds").size(), 10u);
  EXPECT_EQ(columns->at("fn").size(), 11u);
  EXPECT_EQ(columns->at("pr"),
            (std::vector<std::string>{"l_partkey", "revenue"}));
  EXPECT_EQ(columns->at("ag"),
            (std::vector<std::string>{"l_partkey", "total"}));
}

TEST(SchemaInferenceTest, JoinMergesAndChecksDuplicates) {
  Flow flow("f");
  ASSERT_TRUE(flow.AddNode({"l", OpType::kDatastore,
                            {{"table", "lineitem"}}, {}})
                  .ok());
  ASSERT_TRUE(
      flow.AddNode({"p", OpType::kDatastore, {{"table", "part"}}, {}}).ok());
  ASSERT_TRUE(flow.AddNode({"j", OpType::kJoin,
                            {{"left", "l_partkey"}, {"right", "p_partkey"}},
                            {}})
                  .ok());
  ASSERT_TRUE(flow.AddEdge("l", "j").ok());
  ASSERT_TRUE(flow.AddEdge("p", "j").ok());
  auto columns = InferColumns(flow, TpchColumns());
  ASSERT_TRUE(columns.ok()) << columns.status();
  EXPECT_EQ(columns->at("j").size(), 15u);

  // Self-join would duplicate every column name.
  Flow bad("b");
  ASSERT_TRUE(
      bad.AddNode({"a", OpType::kDatastore, {{"table", "part"}}, {}}).ok());
  ASSERT_TRUE(
      bad.AddNode({"b", OpType::kDatastore, {{"table", "part"}}, {}}).ok());
  ASSERT_TRUE(bad.AddNode({"j", OpType::kJoin,
                           {{"left", "p_partkey"}, {"right", "p_partkey"}},
                           {}})
                  .ok());
  ASSERT_TRUE(bad.AddEdge("a", "j").ok());
  ASSERT_TRUE(bad.AddEdge("b", "j").ok());
  EXPECT_TRUE(InferColumns(bad, TpchColumns()).status().IsValidationError());
}

TEST(SchemaInferenceTest, UnknownColumnsCaught) {
  Flow flow("f");
  ASSERT_TRUE(flow.AddNode({"ds", OpType::kDatastore,
                            {{"table", "lineitem"}}, {}})
                  .ok());
  ASSERT_TRUE(flow.AddNode({"sel", OpType::kSelection,
                            {{"predicate", "no_such_col > 1"}}, {}})
                  .ok());
  ASSERT_TRUE(flow.AddEdge("ds", "sel").ok());
  EXPECT_TRUE(InferColumns(flow, TpchColumns()).status().IsValidationError());
}

TEST(SchemaInferenceTest, UnknownTableCaught) {
  Flow flow("f");
  ASSERT_TRUE(
      flow.AddNode({"ds", OpType::kDatastore, {{"table", "ghost"}}, {}}).ok());
  EXPECT_TRUE(InferColumns(flow, TpchColumns()).status().IsNotFound());
}

// --- cost model --------------------------------------------------------------

TEST(CostModelTest, LinearFlowCostReflectsCardinalities) {
  Flow flow = MakeLinearFlow();
  std::map<std::string, int64_t> rows{{"lineitem", 1000}};
  auto est = EstimateCost(flow, rows);
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_DOUBLE_EQ(est->node_output_rows.at("ds"), 1000.0);
  EXPECT_DOUBLE_EQ(est->node_output_rows.at("ex"), 1000.0);
  EXPECT_NEAR(est->node_output_rows.at("sel"), 330.0, 1.0);
  EXPECT_GT(est->total_cost, 0.0);
  // Doubling the source roughly doubles the cost.
  std::map<std::string, int64_t> rows2{{"lineitem", 2000}};
  auto est2 = EstimateCost(flow, rows2);
  ASSERT_TRUE(est2.ok());
  EXPECT_NEAR(est2->total_cost / est->total_cost, 2.0, 0.01);
}

TEST(CostModelTest, SelectionBeforeExpensiveOpIsCheaper) {
  // ds -> ex -> sel -> agg -> load   vs   ds -> ex -> agg -> sel' -> load
  auto make = [](bool filter_first) {
    Flow flow("f");
    EXPECT_TRUE(flow.AddNode({"ds", OpType::kDatastore,
                              {{"table", "lineitem"}}, {}})
                    .ok());
    EXPECT_TRUE(flow.AddNode({"ex", OpType::kExtraction, {}, {}}).ok());
    EXPECT_TRUE(flow.AddNode({"sel", OpType::kSelection,
                              {{"predicate", "l_quantity > 5"}}, {}})
                    .ok());
    EXPECT_TRUE(flow.AddNode({"agg", OpType::kAggregation,
                              {{"group", "l_partkey"},
                               {"aggs", "SUM(l_quantity) AS q"}},
                              {}})
                    .ok());
    EXPECT_TRUE(
        flow.AddNode({"load", OpType::kLoader, {{"table", "o"}}, {}}).ok());
    EXPECT_TRUE(flow.AddEdge("ds", "ex").ok());
    if (filter_first) {
      EXPECT_TRUE(flow.AddEdge("ex", "sel").ok());
      EXPECT_TRUE(flow.AddEdge("sel", "agg").ok());
      EXPECT_TRUE(flow.AddEdge("agg", "load").ok());
    } else {
      EXPECT_TRUE(flow.AddEdge("ex", "agg").ok());
      EXPECT_TRUE(flow.AddEdge("agg", "sel").ok());
      EXPECT_TRUE(flow.AddEdge("sel", "load").ok());
    }
    return flow;
  };
  std::map<std::string, int64_t> rows{{"lineitem", 100000}};
  auto cheap = EstimateCost(make(true), rows);
  auto costly = EstimateCost(make(false), rows);
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(costly.ok());
  EXPECT_LT(cheap->total_cost, costly->total_cost);
}

TEST(CostModelTest, UnknownTableCostsZeroRows) {
  Flow flow("f");
  ASSERT_TRUE(
      flow.AddNode({"ds", OpType::kDatastore, {{"table", "ghost"}}, {}}).ok());
  auto est = EstimateCost(flow, {});
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->node_output_rows.at("ds"), 0.0);
}

}  // namespace
}  // namespace quarry::etl
