# Empty dependencies file for quarry_storage.
# This may be replaced when dependencies are built.
