#include "storage/schema.h"

namespace quarry::storage {

Status TableSchema::AddColumn(Column column) {
  if (ColumnIndex(column.name).has_value()) {
    return Status::AlreadyExists("column '" + column.name + "' in table '" +
                                 name_ + "'");
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status TableSchema::SetPrimaryKey(std::vector<std::string> columns) {
  for (const std::string& c : columns) {
    if (!ColumnIndex(c).has_value()) {
      return Status::NotFound("primary-key column '" + c + "' in table '" +
                              name_ + "'");
    }
  }
  primary_key_ = std::move(columns);
  return Status::OK();
}

Status TableSchema::AddForeignKey(ForeignKey fk) {
  for (const std::string& c : fk.columns) {
    if (!ColumnIndex(c).has_value()) {
      return Status::NotFound("foreign-key column '" + c + "' in table '" +
                              name_ + "'");
    }
  }
  if (fk.columns.size() != fk.referenced_columns.size()) {
    return Status::InvalidArgument(
        "foreign key arity mismatch in table '" + name_ + "'");
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

std::optional<size_t> TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<Column> TableSchema::GetColumn(const std::string& name) const {
  auto idx = ColumnIndex(name);
  if (!idx.has_value()) {
    return Status::NotFound("column '" + name + "' in table '" + name_ + "'");
  }
  return columns_[*idx];
}

std::vector<size_t> TableSchema::PrimaryKeyIndexes() const {
  std::vector<size_t> out;
  out.reserve(primary_key_.size());
  for (const std::string& c : primary_key_) {
    out.push_back(*ColumnIndex(c));
  }
  return out;
}

}  // namespace quarry::storage
