# Empty compiler generated dependencies file for deployment_targets.
# This may be replaced when dependencies are built.
