#ifndef QUARRY_ETL_XLM_H_
#define QUARRY_ETL_XLM_H_

#include <memory>

#include "common/result.h"
#include "etl/flow.h"
#include "xml/xml.h"

namespace quarry::etl {

/// \brief xLM encoding of an ETL flow (paper §2.5, ref [12]).
///
/// The layout follows the snippets in Figures 3-4:
///
/// \code{.xml}
/// <design>
///   <metadata><name>...</name></metadata>
///   <edges>
///     <edge><from>DATASTORE_Partsupp</from>
///           <to>EXTRACTION_Partsupp</to><enabled>Y</enabled></edge> ...
///   </edges>
///   <nodes>
///     <node><name>DATASTORE_Partsupp</name><type>Datastore</type>
///           <optype>TableInput</optype>
///           <param name="table" value="partsupp"/>
///           <requirements>ir_revenue</requirements></node> ...
///   </nodes>
/// </design>
/// \endcode
std::unique_ptr<xml::Element> FlowToXlm(const Flow& flow);

/// Inverse of FlowToXlm; the engine-level <optype> tag is advisory and
/// ignored on input.
Result<Flow> FlowFromXlm(const xml::Element& root);

/// Engine-level operator name (Pentaho-PDI-flavoured) for a logical type;
/// written into <optype> for fidelity with the paper's snippets.
const char* EngineOpType(OpType type);

}  // namespace quarry::etl

#endif  // QUARRY_ETL_XLM_H_
