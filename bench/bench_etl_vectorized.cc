// Row-at-a-time vs vectorized chunk execution (DESIGN.md §8,
// BENCH_vectorized.json): the same scan-heavy TPC-H flow runs through both
// executor modes and the wall-clock ratio is the headline number. Every
// measured pair also cross-checks the target fingerprints — a speedup that
// changes bytes is a bug, not a win — so the bench doubles as a coarse
// differential test on real TPC-H data.
//
// Scenarios, per scale factor:
//   scan_agg             lineitem scan -> filter (l_quantity < 24) ->
//                        derived revenue column -> projection -> group-by
//                        aggregation -> tiny loader. Scan-dominated with a
//                        3-row output: the acceptance scenario (>= 2x at
//                        sf 0.02).
//   filter_project_load  same scan + filter + projection but loading every
//                        surviving row. The loader's row-at-a-time merge is
//                        shared by both modes, so this bounds how much of
//                        the pipeline the chunk kernels can actually
//                        accelerate when the sink is write-heavy.
//
// Flags:
//   --smoke      one small scale factor, one iteration, hard-assert
//                fingerprint equality and that the chunk kernels really ran
//                (exit 1 otherwise) — wired into tools/run_all_checks.sh
//   --sf=CSV     comma-separated scale factors (default 0.005,0.01,0.02)
//   --iters=N    timed iterations per mode, best-of (default 5; smoke 1)

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "datagen/tpch.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "obs/metrics.h"
#include "storage/database.h"

namespace quarry {
namespace {

struct Options {
  bool smoke = false;
  std::vector<double> scale_factors = {0.005, 0.01, 0.02};
  int iters = 5;
};

Options ParseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opts.smoke = true;
      opts.scale_factors = {0.005};
      opts.iters = 1;
    } else if (arg.rfind("--sf=", 0) == 0) {
      opts.scale_factors.clear();
      std::string list = arg.substr(5);
      size_t pos = 0;
      while (pos < list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        opts.scale_factors.push_back(
            std::strtod(list.substr(pos, comma - pos).c_str(), nullptr));
        pos = comma + 1;
      }
    } else if (arg.rfind("--iters=", 0) == 0) {
      opts.iters = std::atoi(arg.c_str() + 8);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

etl::Node MakeNode(const std::string& id, etl::OpType type,
                   std::map<std::string, std::string> params) {
  etl::Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

/// Shared scan front: lineitem -> extract -> filter -> revenue column ->
/// projection onto (l_returnflag, l_quantity, revenue).
void AddScanFront(etl::Flow* flow) {
  (void)flow->AddNode(
      MakeNode("ds", etl::OpType::kDatastore, {{"table", "lineitem"}}));
  (void)flow->AddNode(
      MakeNode("ex", etl::OpType::kExtraction, {{"table", "lineitem"}}));
  (void)flow->AddNode(MakeNode("sel", etl::OpType::kSelection,
                               {{"predicate", "l_quantity < 24"}}));
  (void)flow->AddNode(
      MakeNode("fn", etl::OpType::kFunction,
               {{"column", "revenue"},
                {"expr", "l_extendedprice * (1 - l_discount)"}}));
  (void)flow->AddNode(
      MakeNode("proj", etl::OpType::kProjection,
               {{"columns", "l_returnflag,l_quantity,revenue"}}));
  (void)flow->AddEdge("ds", "ex");
  (void)flow->AddEdge("ex", "sel");
  (void)flow->AddEdge("sel", "fn");
  (void)flow->AddEdge("fn", "proj");
}

etl::Flow BuildScanAggFlow() {
  etl::Flow flow("scan_agg");
  AddScanFront(&flow);
  (void)flow.AddNode(MakeNode(
      "agg", etl::OpType::kAggregation,
      {{"group", "l_returnflag"}, {"aggs", "SUM(revenue) AS revenue"}}));
  (void)flow.AddNode(
      MakeNode("load", etl::OpType::kLoader, {{"table", "fact_revenue"}}));
  (void)flow.AddEdge("proj", "agg");
  (void)flow.AddEdge("agg", "load");
  return flow;
}

etl::Flow BuildFilterProjectLoadFlow() {
  etl::Flow flow("filter_project_load");
  AddScanFront(&flow);
  (void)flow.AddNode(
      MakeNode("load", etl::OpType::kLoader, {{"table", "wide_out"}}));
  (void)flow.AddEdge("proj", "load");
  return flow;
}

struct ModeResult {
  double best_ms = 0.0;
  uint64_t fingerprint = 0;
  int64_t rows_processed = 0;
};

ModeResult RunMode(const storage::Database& source, const etl::Flow& flow,
                   bool vectorized, int iters) {
  ModeResult result;
  result.best_ms = 1e30;
  for (int i = 0; i < iters; ++i) {
    storage::Database target("dw");
    etl::Executor executor(&source, &target);
    etl::ExecOptions options;
    options.vectorized = vectorized;
    const auto start = std::chrono::steady_clock::now();
    auto report = executor.Run(flow, options, etl::RetryPolicy{}, nullptr);
    const auto end = std::chrono::steady_clock::now();
    if (!report.ok()) {
      std::fprintf(stderr, "flow %s (%s) failed: %s\n",
                   flow.name().c_str(), vectorized ? "vectorized" : "row",
                   report.status().ToString().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    result.best_ms = std::min(result.best_ms, ms);
    result.fingerprint = target.Fingerprint();
    result.rows_processed = report->rows_processed;
  }
  return result;
}

double LoadAverage1Min() {
  std::ifstream in("/proc/loadavg");
  double load = -1.0;
  if (!in || !(in >> load)) return -1.0;
  return load;
}

int Main(int argc, char** argv) {
  const Options opts = ParseArgs(argc, argv);
  int failures = 0;

  std::printf("{\n  \"bench\": \"bench_etl_vectorized\",\n");
  std::printf("  \"smoke\": %s,\n", opts.smoke ? "true" : "false");
  std::printf("  \"iters_per_mode\": %d,\n", opts.iters);
  std::printf("  \"host_hw_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"host_load_avg_1min\": %.2f,\n", LoadAverage1Min());
  std::printf("  \"scenarios\": [\n");

  bool first = true;
  const int64_t chunk_rows_before = obs::MetricsRegistry::Instance()
                                        .counter("quarry_etl_chunk_rows_total")
                                        .value();
  for (double sf : opts.scale_factors) {
    storage::Database source("tpch");
    auto populated = datagen::PopulateTpch(&source, {sf, 23});
    if (!populated.ok()) {
      std::fprintf(stderr, "PopulateTpch(%g) failed: %s\n", sf,
                   populated.ToString().c_str());
      return 1;
    }
    const int64_t lineitem_rows =
        static_cast<int64_t>((*source.GetTable("lineitem"))->num_rows());

    for (const etl::Flow& flow :
         {BuildScanAggFlow(), BuildFilterProjectLoadFlow()}) {
      ModeResult row = RunMode(source, flow, /*vectorized=*/false,
                               opts.iters);
      ModeResult vec = RunMode(source, flow, /*vectorized=*/true,
                               opts.iters);
      const double speedup = vec.best_ms > 0.0 ? row.best_ms / vec.best_ms
                                               : 0.0;
      const bool bytes_equal = row.fingerprint == vec.fingerprint &&
                               row.rows_processed == vec.rows_processed;
      if (!bytes_equal) ++failures;
      if (!first) std::printf(",\n");
      first = false;
      std::printf(
          "    {\"flow\": \"%s\", \"scale_factor\": %g, "
          "\"lineitem_rows\": %lld, \"row_ms\": %.2f, "
          "\"vectorized_ms\": %.2f, \"speedup\": %.2f, "
          "\"bytes_equal\": %s}",
          flow.name().c_str(), sf,
          static_cast<long long>(lineitem_rows), row.best_ms, vec.best_ms,
          speedup, bytes_equal ? "true" : "false");
      if (!bytes_equal) {
        std::fprintf(stderr,
                     "DIVERGENCE: flow %s sf %g row fp %llu vec fp %llu\n",
                     flow.name().c_str(), sf,
                     static_cast<unsigned long long>(row.fingerprint),
                     static_cast<unsigned long long>(vec.fingerprint));
      }
    }
  }
  std::printf("\n  ]\n}\n");

  // The vectorized arms must have gone through the chunk kernels — a silent
  // row-path fallback would make every "speedup" above meaningless.
  const int64_t chunk_rows = obs::MetricsRegistry::Instance()
                                 .counter("quarry_etl_chunk_rows_total")
                                 .value() -
                             chunk_rows_before;
  if (chunk_rows <= 0) {
    std::fprintf(stderr, "chunk kernels never ran\n");
    ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d invariant(s) failed\n", failures);
    return 1;
  }
  std::fprintf(stderr, "etl vectorized bench: all fingerprints matched\n");
  return 0;
}

}  // namespace
}  // namespace quarry

int main(int argc, char** argv) { return quarry::Main(argc, argv); }
