file(REMOVE_RECURSE
  "libquarry_docstore.a"
)
