#include "datagen/retail.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "common/prng.h"

namespace quarry::datagen {

using storage::DataType;
using storage::Database;
using storage::Table;
using storage::TableSchema;
using storage::Value;

namespace {

constexpr std::array<const char*, 4> kRegions = {"NORTH", "SOUTH", "EAST",
                                                 "WEST"};
constexpr std::array<const char*, 6> kCategories = {
    "GROCERY", "ELECTRONICS", "CLOTHING", "GARDEN", "TOYS", "SPORTS"};
constexpr std::array<const char*, 5> kSegments = {
    "RETAIL", "WHOLESALE", "ONLINE", "CORPORATE", "LOYALTY"};
constexpr std::array<const char*, 8> kCities = {
    "Aville", "Btown", "Cberg", "Dham", "Efield", "Fport", "Gview", "Hfall"};

void Check(const Status& status) { assert(status.ok()); (void)status; }

Status CreateSchemas(Database* db) {
  TableSchema region("retail_region");
  QUARRY_RETURN_NOT_OK(
      region.AddColumn({"rr_regionkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(region.AddColumn({"rr_name", DataType::kString, false}));
  QUARRY_RETURN_NOT_OK(region.SetPrimaryKey({"rr_regionkey"}));
  QUARRY_RETURN_NOT_OK(db->CreateTable(std::move(region)).status());

  TableSchema store("store");
  QUARRY_RETURN_NOT_OK(store.AddColumn({"st_storekey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(store.AddColumn({"st_city", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(
      store.AddColumn({"st_regionkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(store.SetPrimaryKey({"st_storekey"}));
  QUARRY_RETURN_NOT_OK(store.AddForeignKey(
      {{"st_regionkey"}, "retail_region", {"rr_regionkey"}}));
  QUARRY_RETURN_NOT_OK(db->CreateTable(std::move(store)).status());

  TableSchema product("product");
  QUARRY_RETURN_NOT_OK(
      product.AddColumn({"pr_productkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(product.AddColumn({"pr_name", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(
      product.AddColumn({"pr_category", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(
      product.AddColumn({"pr_price", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(product.SetPrimaryKey({"pr_productkey"}));
  QUARRY_RETURN_NOT_OK(db->CreateTable(std::move(product)).status());

  TableSchema customer("retail_customer");
  QUARRY_RETURN_NOT_OK(
      customer.AddColumn({"cu_customerkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(
      customer.AddColumn({"cu_segment", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(customer.AddColumn({"cu_city", DataType::kString, true}));
  QUARRY_RETURN_NOT_OK(customer.SetPrimaryKey({"cu_customerkey"}));
  QUARRY_RETURN_NOT_OK(db->CreateTable(std::move(customer)).status());

  TableSchema sale("sale");
  QUARRY_RETURN_NOT_OK(sale.AddColumn({"sl_salekey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(
      sale.AddColumn({"sl_productkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(sale.AddColumn({"sl_storekey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(
      sale.AddColumn({"sl_customerkey", DataType::kInt64, false}));
  QUARRY_RETURN_NOT_OK(sale.AddColumn({"sl_date", DataType::kDate, true}));
  QUARRY_RETURN_NOT_OK(sale.AddColumn({"sl_units", DataType::kInt64, true}));
  QUARRY_RETURN_NOT_OK(sale.AddColumn({"sl_amount", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(
      sale.AddColumn({"sl_discount", DataType::kDouble, true}));
  QUARRY_RETURN_NOT_OK(sale.SetPrimaryKey({"sl_salekey"}));
  QUARRY_RETURN_NOT_OK(
      sale.AddForeignKey({{"sl_productkey"}, "product", {"pr_productkey"}}));
  QUARRY_RETURN_NOT_OK(
      sale.AddForeignKey({{"sl_storekey"}, "store", {"st_storekey"}}));
  QUARRY_RETURN_NOT_OK(sale.AddForeignKey(
      {{"sl_customerkey"}, "retail_customer", {"cu_customerkey"}}));
  QUARRY_RETURN_NOT_OK(db->CreateTable(std::move(sale)).status());
  return Status::OK();
}

}  // namespace

Status PopulateRetail(Database* db, const RetailConfig& config) {
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  QUARRY_RETURN_NOT_OK(CreateSchemas(db));
  Prng rng(config.seed);
  const int64_t stores = std::max<int64_t>(5, static_cast<int64_t>(
                                                  config.scale_factor * 500));
  const int64_t products = std::max<int64_t>(
      20, static_cast<int64_t>(config.scale_factor * 5'000));
  const int64_t customers = std::max<int64_t>(
      20, static_cast<int64_t>(config.scale_factor * 10'000));
  const int64_t sales = std::max<int64_t>(
      100, static_cast<int64_t>(config.scale_factor * 100'000));

  Table* region = *db->GetTable("retail_region");
  for (int i = 0; i < static_cast<int>(kRegions.size()); ++i) {
    QUARRY_RETURN_NOT_OK(
        region->Insert({Value::Int(i), Value::String(kRegions[i])}));
  }
  Table* store = *db->GetTable("store");
  for (int64_t i = 1; i <= stores; ++i) {
    QUARRY_RETURN_NOT_OK(store->Insert(
        {Value::Int(i), Value::String(kCities[rng.Uniform(0, 7)]),
         Value::Int(rng.Uniform(0, 3))}));
  }
  Table* product = *db->GetTable("product");
  for (int64_t i = 1; i <= products; ++i) {
    QUARRY_RETURN_NOT_OK(product->Insert(
        {Value::Int(i), Value::String("Product#" + std::to_string(i)),
         Value::String(kCategories[rng.Uniform(0, 5)]),
         Value::Double(1.0 + static_cast<double>(rng.Uniform(0, 9999)) / 100.0)}));
  }
  Table* customer = *db->GetTable("retail_customer");
  for (int64_t i = 1; i <= customers; ++i) {
    QUARRY_RETURN_NOT_OK(customer->Insert(
        {Value::Int(i), Value::String(kSegments[rng.Uniform(0, 4)]),
         Value::String(kCities[rng.Uniform(0, 7)])}));
  }
  Table* sale = *db->GetTable("sale");
  const int32_t start = storage::DaysFromCivil(2023, 1, 1);
  const int32_t end = storage::DaysFromCivil(2024, 12, 31);
  for (int64_t i = 1; i <= sales; ++i) {
    int64_t units = rng.Uniform(1, 12);
    double price = 1.0 + static_cast<double>(rng.Uniform(0, 9999)) / 100.0;
    QUARRY_RETURN_NOT_OK(sale->Insert(
        {Value::Int(i), Value::Int(rng.Uniform(1, products)),
         Value::Int(rng.Uniform(1, stores)),
         Value::Int(rng.Uniform(1, customers)),
         Value::Date(static_cast<int32_t>(rng.Uniform(start, end))),
         Value::Int(units), Value::Double(static_cast<double>(units) * price),
         Value::Double(static_cast<double>(rng.Uniform(0, 30)) / 100.0)}));
  }
  return Status::OK();
}

ontology::Ontology BuildRetailOntology() {
  using ontology::Multiplicity;
  ontology::Ontology onto("retail");
  for (const char* concept_id :
       {"Region", "Store", "Product", "Customer", "Sale"}) {
    Check(onto.AddConcept(concept_id));
  }
  Check(onto.AddDataProperty("Region", "rr_name", DataType::kString));
  Check(onto.AddDataProperty("Store", "st_city", DataType::kString));
  Check(onto.AddDataProperty("Product", "pr_name", DataType::kString));
  Check(onto.AddDataProperty("Product", "pr_category", DataType::kString));
  Check(onto.AddDataProperty("Product", "pr_price", DataType::kDouble));
  Check(onto.AddDataProperty("Customer", "cu_segment", DataType::kString));
  Check(onto.AddDataProperty("Customer", "cu_city", DataType::kString));
  Check(onto.AddDataProperty("Sale", "sl_date", DataType::kDate));
  Check(onto.AddDataProperty("Sale", "sl_units", DataType::kInt64));
  Check(onto.AddDataProperty("Sale", "sl_amount", DataType::kDouble));
  Check(onto.AddDataProperty("Sale", "sl_discount", DataType::kDouble));
  Check(onto.AddAssociation("sale_product", "Sale", "Product",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("sale_store", "Sale", "Store",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("sale_customer", "Sale", "Customer",
                            Multiplicity::kManyToOne));
  Check(onto.AddAssociation("store_region", "Store", "Region",
                            Multiplicity::kManyToOne));
  return onto;
}

ontology::SourceMapping BuildRetailMappings() {
  ontology::SourceMapping m;
  Check(m.MapConcept("Region", "retail_region", {"rr_regionkey"}));
  Check(m.MapConcept("Store", "store", {"st_storekey"}));
  Check(m.MapConcept("Product", "product", {"pr_productkey"}));
  Check(m.MapConcept("Customer", "retail_customer", {"cu_customerkey"}));
  Check(m.MapConcept("Sale", "sale", {"sl_salekey"}));
  Check(m.MapProperty("Region.rr_name", "retail_region", "rr_name"));
  Check(m.MapProperty("Store.st_city", "store", "st_city"));
  Check(m.MapProperty("Product.pr_name", "product", "pr_name"));
  Check(m.MapProperty("Product.pr_category", "product", "pr_category"));
  Check(m.MapProperty("Product.pr_price", "product", "pr_price"));
  Check(m.MapProperty("Customer.cu_segment", "retail_customer",
                      "cu_segment"));
  Check(m.MapProperty("Customer.cu_city", "retail_customer", "cu_city"));
  Check(m.MapProperty("Sale.sl_date", "sale", "sl_date"));
  Check(m.MapProperty("Sale.sl_units", "sale", "sl_units"));
  Check(m.MapProperty("Sale.sl_amount", "sale", "sl_amount"));
  Check(m.MapProperty("Sale.sl_discount", "sale", "sl_discount"));
  Check(m.MapAssociation("sale_product", {"sl_productkey"},
                         {"pr_productkey"}));
  Check(m.MapAssociation("sale_store", {"sl_storekey"}, {"st_storekey"}));
  Check(m.MapAssociation("sale_customer", {"sl_customerkey"},
                         {"cu_customerkey"}));
  Check(m.MapAssociation("store_region", {"st_regionkey"},
                         {"rr_regionkey"}));
  return m;
}

}  // namespace quarry::datagen
