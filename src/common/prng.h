#ifndef QUARRY_COMMON_PRNG_H_
#define QUARRY_COMMON_PRNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace quarry {

/// \brief Deterministic 64-bit PRNG (splitmix64).
///
/// Used by the data generator and property tests so that every run of a test
/// or benchmark sees identical data regardless of platform or libstdc++
/// version (std::mt19937 distributions are not cross-version stable).
class Prng {
 public:
  explicit Prng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t Weighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = UniformDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (r < weights[i]) return i;
      r -= weights[i];
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Random lower-case ASCII string of the given length.
  std::string Word(size_t length) {
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(0, 25)));
    }
    return out;
  }

 private:
  uint64_t state_;
};

}  // namespace quarry

#endif  // QUARRY_COMMON_PRNG_H_
