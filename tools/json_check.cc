// json_check: validates that a file (or stdin) parses as JSON with the
// in-tree parser — the validator tools/run_http_smoke.sh points at the
// bodies of /metrics.json, /healthz, /statusz and /requestz, so endpoint
// output is checked by exactly the parser the repo itself trusts.
//
//   json_check [file]      exit 0 = valid JSON, 1 = invalid, 2 = usage/io
//
// With --jsonl, every non-empty line must parse (the requests.jsonl drain
// format).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "json/json.h"

int main(int argc, char** argv) {
  bool jsonl = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: json_check [--jsonl] [file]\n");
      return 2;
    }
  }

  std::string input;
  if (path == nullptr) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    input = buf.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "json_check: cannot read '%s'\n", path);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    input = buf.str();
  }

  if (!jsonl) {
    auto parsed = quarry::json::Parse(input);
    if (!parsed.ok()) {
      std::fprintf(stderr, "json_check: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    return 0;
  }

  std::istringstream lines(input);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto parsed = quarry::json::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "json_check: line %d: %s\n", lineno,
                   parsed.status().ToString().c_str());
      return 1;
    }
  }
  return 0;
}
