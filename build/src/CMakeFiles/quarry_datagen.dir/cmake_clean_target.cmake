file(REMOVE_RECURSE
  "libquarry_datagen.a"
)
