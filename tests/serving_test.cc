// Snapshot-isolated serving (docs/ROBUSTNESS.md §9): GenerationStore
// semantics, serve-while-refresh through core::Quarry, publish/retire fault
// handling, the admission gap regression, and request-lifecycle plumbing
// through the cube-query path. The multi-threaded chaos soak lives in
// serving_soak_test.cc.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/fault_injection.h"
#include "core/quarry.h"
#include "core/session.h"
#include "datagen/tpch.h"
#include "obs/metrics.h"
#include "ontology/tpch_ontology.h"
#include "storage/generation_store.h"

namespace quarry::core {
namespace {

using req::InformationRequirement;
using storage::GenerationStore;
using storage::GenerationStoreStats;
using storage::Value;

int64_t CounterValue(const std::string& family, const obs::Labels& labels) {
  return obs::MetricsRegistry::Instance().counter(family, "", labels).value();
}

// --- GenerationStore ------------------------------------------------------

std::unique_ptr<storage::Database> TinyDb(int64_t marker) {
  auto db = std::make_unique<storage::Database>("w");
  storage::TableSchema schema("t");
  EXPECT_TRUE(schema.AddColumn({"k", storage::DataType::kInt64, false}).ok());
  auto table = db->CreateTable(std::move(schema));
  EXPECT_TRUE(table.ok());
  EXPECT_TRUE((*table)->Insert({Value::Int(marker)}).ok());
  return db;
}

int64_t Marker(const storage::Database& db) {
  return (*db.GetTable("t"))->rows()[0][0].as_int();
}

TEST(GenerationStoreTest, EmptyStoreHasNothingToPin) {
  GenerationStore store("w");
  EXPECT_EQ(store.current_generation(), 0u);
  EXPECT_FALSE(store.has_generation());
  EXPECT_TRUE(store.Acquire().status().IsNotFound());
  EXPECT_TRUE(store.AcquirePrevious().status().IsNotFound());
  EXPECT_TRUE(store.PublishedFingerprint(1).status().IsNotFound());
  // An empty-store build is a fresh database named after the store.
  EXPECT_EQ(store.BeginBuild()->num_tables(), 0u);
}

TEST(GenerationStoreTest, PublishRetainsCurrentAndPreviousOnly) {
  GenerationStore store("w");
  for (int64_t i = 1; i <= 3; ++i) {
    auto gen = store.Publish(TinyDb(i));
    ASSERT_TRUE(gen.ok()) << gen.status();
    EXPECT_EQ(*gen, static_cast<uint64_t>(i));
  }
  auto current = store.Acquire();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->generation(), 3u);
  EXPECT_EQ(Marker(current->db()), 3);
  auto previous = store.AcquirePrevious();
  ASSERT_TRUE(previous.ok());
  EXPECT_EQ(previous->generation(), 2u);
  EXPECT_EQ(Marker(previous->db()), 2);
  // Every published generation keeps its fingerprint on record.
  for (uint64_t g = 1; g <= 3; ++g) {
    EXPECT_TRUE(store.PublishedFingerprint(g).ok()) << g;
  }
  GenerationStoreStats stats = store.stats();
  EXPECT_EQ(stats.published, 3u);
  EXPECT_EQ(stats.retired, 1u);  // gen 1 fell off the current+previous window
  EXPECT_EQ(stats.live_generations, 2);
}

TEST(GenerationStoreTest, PinOutlivesRetirementOfItsGeneration) {
  GenerationStore store("w");
  ASSERT_TRUE(store.Publish(TinyDb(1)).ok());
  auto pin = store.Acquire();
  ASSERT_TRUE(pin.ok());
  ASSERT_TRUE(store.Publish(TinyDb(2)).ok());
  ASSERT_TRUE(store.Publish(TinyDb(3)).ok());  // retires generation 1
  // The pinned snapshot is still alive and still reads its exact state.
  EXPECT_TRUE(pin->valid());
  EXPECT_EQ(pin->generation(), 1u);
  EXPECT_EQ(Marker(pin->db()), 1);
  EXPECT_EQ(store.stats().active_pins, 1);
  pin->Release();
  EXPECT_FALSE(pin->valid());
  EXPECT_EQ(store.stats().active_pins, 0);
}

TEST(GenerationStoreTest, BeginBuildClonesWithoutAffectingReaders) {
  GenerationStore store("w");
  ASSERT_TRUE(store.Publish(TinyDb(1)).ok());
  std::unique_ptr<storage::Database> scratch = store.BeginBuild();
  ASSERT_TRUE(
      (*scratch->GetTable("t"))->Insert({Value::Int(42)}).ok());
  // The scratch mutation is invisible until published.
  auto before = store.Acquire();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before->db().GetTable("t"))->num_rows(), 1u);
  ASSERT_TRUE(store.Publish(std::move(scratch)).ok());
  auto after = store.Acquire();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after->db().GetTable("t"))->num_rows(), 2u);
  // The old pin still reads the old snapshot.
  EXPECT_EQ((*before->db().GetTable("t"))->num_rows(), 1u);
}

TEST(GenerationStoreTest, PublishFaultIsAnO1Rollback) {
  GenerationStore store("w");
  ASSERT_TRUE(store.Publish(TinyDb(1)).ok());
  const uint64_t fp_before = store.Acquire()->db().Fingerprint();

  fault::Injector::Instance().Enable(11);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {0.0, /*trigger_on_hit=*/1, 0, -1});
  auto failed = store.Publish(TinyDb(2));
  EXPECT_FALSE(failed.ok());
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();

  // Nothing changed: same generation, bit-identical content, no leak.
  EXPECT_EQ(store.current_generation(), 1u);
  EXPECT_EQ(store.Acquire()->db().Fingerprint(), fp_before);
  GenerationStoreStats stats = store.stats();
  EXPECT_EQ(stats.publish_failures, 1u);
  EXPECT_EQ(stats.live_generations, 1);
  // The store is healthy afterwards; ids keep increasing.
  auto next = store.Publish(TinyDb(2));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 2u);
}

TEST(GenerationStoreTest, RetireFaultsDeferButNeverLeak) {
  GenerationStore store("w");
  fault::Injector::Instance().Enable(13);
  fault::Injector::Instance().Configure("storage.generation.retire",
                                        {0.0, 0, /*fail_from_hit=*/1, -1});
  for (int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(store.Publish(TinyDb(i)).ok());
  }
  GenerationStoreStats during = store.stats();
  EXPECT_EQ(during.retired, 0u);
  EXPECT_GE(during.retires_deferred, 3u);
  // Deferred generations are still accounted live — parked, not leaked.
  EXPECT_EQ(during.live_generations, 2 + 3);

  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();
  EXPECT_EQ(store.DrainDeferredRetires(), 3);
  GenerationStoreStats after = store.stats();
  EXPECT_EQ(after.retired, 3u);
  EXPECT_EQ(after.live_generations, 2);
  EXPECT_EQ(after.active_pins, 0);
}

// --- the serving path through core::Quarry --------------------------------

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(datagen::PopulateTpch(&src_, {0.005, 29}).ok());
    quarry_ = MakeQuarry({});
  }

  void TearDown() override {
    fault::Injector::Instance().ClearConfigs();
    fault::Injector::Instance().Disable();
  }

  std::unique_ptr<Quarry> MakeQuarry(QuarryConfig config) {
    auto quarry = Quarry::Create(ontology::BuildTpchOntology(),
                                 ontology::BuildTpchMappings(), &src_,
                                 std::move(config));
    EXPECT_TRUE(quarry.ok()) << quarry.status();
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_type"});
    ir.dimensions.push_back({"Supplier.s_name"});
    EXPECT_TRUE((*quarry)->AddRequirement(ir).ok());
    return std::move(*quarry);
  }

  static olap::CubeQuery RevenueByType() {
    olap::CubeQuery query;
    query.fact = "fact_table_revenue";
    query.group_by = {"p_type"};
    query.measures = {{"revenue", md::AggFunc::kSum, "total"}};
    return query;
  }

  /// Grand total over a query result (sums the aggregate column).
  static double Total(const etl::Dataset& data) {
    double total = 0;
    for (const storage::Row& row : data.rows) {
      total += row[1].as_double();
    }
    return total;
  }

  /// New part + a lineitem selling it appear in the operational source.
  void GrowSource(int salt) {
    storage::Table* part = *src_.GetTable("part");
    int64_t new_partkey = static_cast<int64_t>(part->num_rows()) + 1;
    ASSERT_TRUE(part->Insert({Value::Int(new_partkey),
                              Value::String("part " + std::to_string(salt)),
                              Value::String("Brand#99"),
                              Value::String("SMALL"),
                              Value::Double(1234.5)})
                    .ok());
    storage::Table* lineitem = *src_.GetTable("lineitem");
    // (l_orderkey, l_linenumber) is the PK: salt the line number so repeated
    // growth rounds stay unique. Each round adds revenue of exactly
    // 100.0 * (1 - 0.0) = 100.0.
    ASSERT_TRUE(lineitem
                    ->Insert({Value::Int(1), Value::Int(1000 + salt),
                              Value::Int(new_partkey), Value::Int(1),
                              Value::Int(3), Value::Double(100.0),
                              Value::Double(0.0), Value::Double(0.0),
                              Value::DateYmd(1995, 6, 1), Value::String("N")})
                    .ok());
  }

  storage::Database src_;
  std::unique_ptr<Quarry> quarry_;
};

TEST_F(ServingTest, DeployServingPublishesTheFirstGeneration) {
  auto outcome = quarry_->DeployServing();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->success);
  EXPECT_EQ(quarry_->warehouse().current_generation(), 1u);
  EXPECT_TRUE(quarry_->warehouse().PublishedFingerprint(1).ok());

  auto result = quarry_->SubmitQuery(RevenueByType());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->generation, 1u);
  EXPECT_FALSE(result->stale);
  EXPECT_GT(result->data.rows.size(), 0u);
  EXPECT_GT(Total(result->data), 0.0);
}

TEST_F(ServingTest, QueriesKeepTheirSnapshotAcrossRefresh) {
  ASSERT_TRUE(quarry_->DeployServing().ok());
  auto pin = quarry_->warehouse().Acquire();
  ASSERT_TRUE(pin.ok());
  const uint64_t fp_gen1 = pin->db().Fingerprint();

  auto before = quarry_->SubmitQuery(RevenueByType());
  ASSERT_TRUE(before.ok());
  GrowSource(1);
  auto refresh = quarry_->RefreshServing();
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  EXPECT_EQ(quarry_->warehouse().current_generation(), 2u);

  // New queries see the new generation; the inserted lineitem adds revenue.
  auto after = quarry_->SubmitQuery(RevenueByType());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 2u);
  EXPECT_NEAR(Total(after->data), Total(before->data) + 100.0, 1e-6);

  // The pre-refresh pin still reads generation 1, bit-identical.
  EXPECT_EQ(pin->db().Fingerprint(), fp_gen1);
  EXPECT_EQ(*quarry_->warehouse().PublishedFingerprint(1), fp_gen1);
}

TEST_F(ServingTest, RefreshServingRequiresADeployedGeneration) {
  EXPECT_TRUE(quarry_->RefreshServing().status().IsNotFound());
}

TEST_F(ServingTest, PublishFaultDuringRefreshKeepsServingTheOldGeneration) {
  ASSERT_TRUE(quarry_->DeployServing().ok());
  const uint64_t fp_before = quarry_->warehouse().Acquire()->db().Fingerprint();
  GrowSource(1);

  fault::Injector::Instance().Enable(17);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {0.0, /*trigger_on_hit=*/1, 0, -1});
  EXPECT_FALSE(quarry_->RefreshServing().ok());
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();

  // O(1) rollback: the half-built scratch was discarded, the served
  // generation is byte-identical, and a later refresh succeeds.
  EXPECT_EQ(quarry_->warehouse().current_generation(), 1u);
  EXPECT_EQ(quarry_->warehouse().Acquire()->db().Fingerprint(), fp_before);
  auto retry = quarry_->RefreshServing();
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(quarry_->warehouse().current_generation(), 2u);
}

TEST_F(ServingTest, PublishFaultDuringDeployReportsThePublishStage) {
  fault::Injector::Instance().Enable(19);
  fault::Injector::Instance().Configure("storage.generation.publish",
                                        {0.0, /*trigger_on_hit=*/1, 0, -1});
  auto outcome = quarry_->DeployServing();
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();

  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->success);
  ASSERT_TRUE(outcome->failure.has_value());
  EXPECT_EQ(outcome->failure->stage, "publish");
  EXPECT_TRUE(outcome->failure->rolled_back);
  EXPECT_FALSE(quarry_->warehouse().has_generation());

  // The instance recovers without any restore step.
  auto retry = quarry_->DeployServing();
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->success);
  EXPECT_EQ(quarry_->warehouse().current_generation(), 1u);
}

// The pre-serving failure mode this PR closes (kept as a regression
// contrast): an in-place Refresh that dies mid-flow leaves the warehouse in
// a state matching NEITHER the pre-refresh NOR the post-refresh content —
// exactly what a concurrent reader would observe as a torn result. The
// serving path under the identical fault never exposes such a state.
TEST_F(ServingTest, InPlaceRefreshTearsStateWhereServingDoesNot) {
  storage::Database dw;
  ASSERT_TRUE(quarry_->Deploy(&dw).ok());
  GrowSource(1);
  const uint64_t fp_pre = dw.Fingerprint();

  // Dry run on a clone: count loader executions and capture the content a
  // completed refresh produces.
  std::unique_ptr<storage::Database> probe = dw.Clone();
  fault::Injector::Instance().Enable(23);
  ASSERT_TRUE(quarry_->Refresh(probe.get()).ok());
  const int64_t loader_runs =
      fault::Injector::Instance().HitCount("etl.exec.Loader.write");
  ASSERT_GE(loader_runs, 2) << "need >= 2 loaders for a torn state";
  const uint64_t fp_post = probe->Fingerprint();

  // Fail the LAST loader: every other table has committed by then.
  fault::Injector::Instance().Enable(23);  // reset counters
  fault::Injector::Instance().Configure("etl.exec.Loader.write",
                                        {0.0, loader_runs, 0, -1});
  EXPECT_FALSE(quarry_->Refresh(&dw).ok());
  const uint64_t fp_torn = dw.Fingerprint();
  EXPECT_NE(fp_torn, fp_pre);   // some tables already refreshed
  EXPECT_NE(fp_torn, fp_post);  // but not all of them: torn state

  // Serving path, identical fault: the published generation never moves.
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();
  ASSERT_TRUE(quarry_->DeployServing().ok());
  const uint64_t fp_gen1 = quarry_->warehouse().Acquire()->db().Fingerprint();
  GrowSource(2);
  fault::Injector::Instance().Enable(23);
  fault::Injector::Instance().Configure("etl.exec.Loader.write",
                                        {0.0, loader_runs, 0, -1});
  EXPECT_FALSE(quarry_->RefreshServing().ok());
  fault::Injector::Instance().ClearConfigs();
  fault::Injector::Instance().Disable();
  EXPECT_EQ(quarry_->warehouse().current_generation(), 1u);
  EXPECT_EQ(quarry_->warehouse().Acquire()->db().Fingerprint(), fp_gen1);
}

// Regression for the admission gap: the direct design-mutating entry points
// used to bypass the controller that gates Submit*.
TEST_F(ServingTest, DirectRefreshAndDeployPassTheAdmissionGate) {
  QuarryConfig config;
  config.admission = {/*max_in_flight=*/1, /*max_queue_depth=*/0,
                      /*queue_timeout_millis=*/-1.0, /*lane=*/""};
  std::unique_ptr<Quarry> quarry = MakeQuarry(config);

  auto slot = quarry->admission().Admit();
  ASSERT_TRUE(slot.ok());
  storage::Database dw;
  EXPECT_TRUE(quarry->Refresh(&dw).status().IsOverloaded());
  EXPECT_TRUE(quarry->DeployResilient(&dw).status().IsOverloaded());
  EXPECT_TRUE(quarry->DeployServing().status().IsOverloaded());
  EXPECT_TRUE(quarry->RefreshServing().status().IsOverloaded());
  slot->Release();

  auto outcome = quarry->DeployServing();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->success);
}

TEST_F(ServingTest, SubmitQueryHonoursTheRequestLifecycle) {
  ASSERT_TRUE(quarry_->DeployServing().ok());

  CancellationToken token;
  token.Cancel("caller went away");
  ExecContext cancelled(token, Deadline::Infinite());
  EXPECT_TRUE(
      quarry_->SubmitQuery(RevenueByType(), {}, &cancelled).status()
          .IsCancelled());

  ExecContext expired(Deadline::After(0));
  EXPECT_TRUE(
      quarry_->SubmitQuery(RevenueByType(), {}, &expired).status()
          .IsDeadlineExceeded());

  // The same plumbing reaches a standalone engine over a pinned generation
  // (the ExecContext parameter of CubeQueryEngine::Execute).
  auto pin = quarry_->warehouse().Acquire();
  ASSERT_TRUE(pin.ok());
  auto schema =
      std::static_pointer_cast<const md::MdSchema>(pin->annex());
  ASSERT_NE(schema, nullptr);
  olap::CubeQueryEngine engine(schema.get(), &quarry_->mapping(), &pin->db());
  EXPECT_TRUE(engine.Execute(RevenueByType(), &cancelled).status()
                  .IsCancelled());
  EXPECT_TRUE(engine.Execute(RevenueByType(), &expired).status()
                  .IsDeadlineExceeded());
  EXPECT_TRUE(engine.Execute(RevenueByType(), nullptr).ok());
}

TEST_F(ServingTest, QueryLaneShedsWithLabelledMetricsWhenSaturated) {
  QuarryConfig config;
  config.serving.query_admission = {/*max_in_flight=*/0, /*max_queue_depth=*/0,
                                    /*queue_timeout_millis=*/-1.0,
                                    /*lane=*/""};
  std::unique_ptr<Quarry> quarry = MakeQuarry(config);
  ASSERT_TRUE(quarry->DeployServing().ok());

  const obs::Labels shed_labels{{"lane", "query"}, {"reason", "queue_full"}};
  const int64_t shed_before =
      CounterValue("quarry_admission_shed_total", shed_labels);
  // Without allow_stale there is no degradation path: kOverloaded.
  EXPECT_TRUE(quarry->SubmitQuery(RevenueByType()).status().IsOverloaded());
  // With allow_stale but NO build in flight the result must still be
  // kOverloaded — stale reads are only for the serve-while-refresh window.
  EXPECT_TRUE(quarry->SubmitQuery(RevenueByType(), {/*allow_stale=*/true})
                  .status()
                  .IsOverloaded());
  EXPECT_EQ(CounterValue("quarry_admission_shed_total", shed_labels),
            shed_before + 2);
}

TEST_F(ServingTest, ColdStartRecoveryServesWithoutRebuildingTheWarehouse) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "quarry_serving_coldstart").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  // First process lifetime: durable serving session, deploy, one answer.
  ASSERT_TRUE(
      quarry_->EnableServingDurability(dir + "/" + kWarehouseSubdir).ok());
  auto outcome = quarry_->DeployServing();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->success);
  EXPECT_EQ(outcome->published_generation, 1u);
  ASSERT_TRUE(SaveSession(*quarry_, dir).ok());
  auto before = quarry_->SubmitQuery(RevenueByType());
  ASSERT_TRUE(before.ok()) << before.status();
  const uint64_t fp = quarry_->warehouse().Acquire()->db().Fingerprint();
  quarry_.reset();  // "process exit"

  // Cold start: both substrates recover; no ETL runs before first answer.
  RecoveryReport report;
  auto restarted = OpenDurableServingSession(dir, &src_, {}, &report);
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  EXPECT_EQ(report.warehouse.recovered_generation, 1u);
  EXPECT_EQ(report.warehouse.recovered_fingerprint, fp);
  EXPECT_TRUE(report.warehouse.annex_recovered);
  EXPECT_TRUE(report.warehouse.quarantined.empty());
  EXPECT_EQ((*restarted)->recovery_report().warehouse.recovered_generation,
            1u);
  EXPECT_EQ((*restarted)->warehouse().current_generation(), 1u);
  EXPECT_EQ((*restarted)->warehouse().Acquire()->db().Fingerprint(), fp);

  // The recovered generation answers byte-identically, same generation id.
  auto after = (*restarted)->SubmitQuery(RevenueByType());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->generation, before->generation);
  EXPECT_NEAR(Total(after->data), Total(before->data), 1e-9);

  // The annex (the deployed xMD document) survived too: a refresh runs
  // against the recovered schema and commits generation 2 durably.
  GrowSource(7);
  auto refresh = (*restarted)->RefreshServing();
  ASSERT_TRUE(refresh.ok()) << refresh.status();
  EXPECT_EQ((*restarted)->warehouse().current_generation(), 2u);
  auto grown = (*restarted)->SubmitQuery(RevenueByType());
  ASSERT_TRUE(grown.ok());
  EXPECT_NEAR(Total(grown->data), Total(before->data) + 100.0, 1e-6);
  EXPECT_TRUE(
      fs::exists(dir + "/" + kWarehouseSubdir + "/gen-2/MANIFEST.json"));
}

}  // namespace
}  // namespace quarry::core
