#!/usr/bin/env bash
# Runs the concurrency suite (ctest label `tsan`) in a dedicated
# ThreadSanitizer-instrumented build, so every cross-thread handoff is
# checked for data races, not just correctness. The slice covers:
#   - the request-lifecycle tests of docs/ROBUSTNESS.md §7 (CancellationToken,
#     AdmissionController, Submit* serialization);
#   - the wavefront-scheduler suite of docs/ROBUSTNESS.md §8
#     (etl_parallel_test, the SchedulerProperty sweep, and the parallel
#     executor fault matrix in fault_injection_test).
#
# Usage: tools/run_tsan.sh [build-dir]
#   build-dir  defaults to build-tsan (kept separate from the plain build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DQUARRY_SANITIZE=thread
cmake --build "${build_dir}" -j

# halt_on_error makes a TSan report fail the ctest run instead of only
# printing a warning and exiting 0.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

# The serving soak (docs/ROBUSTNESS.md §9) is in this slice as the
# reader-vs-refresh race test; TSan's ~10x slowdown makes the full soak
# excessive here, so bound its knobs unless the caller already set them.
# tools/run_soak.sh runs the full-size soak in the ASan build.
export QUARRY_SOAK_READERS="${QUARRY_SOAK_READERS:-4}"
export QUARRY_SOAK_CYCLES="${QUARRY_SOAK_CYCLES:-10}"

if ! ctest --test-dir "${build_dir}" -L tsan -N | grep -q 'Total Tests: [1-9]'; then
  echo "run_tsan: no tests carry the 'tsan' label" >&2
  exit 1
fi

ctest --test-dir "${build_dir}" -L tsan --output-on-failure
echo "==== tsan suite passed ===="
