#ifndef QUARRY_CORE_TELEMETRY_H_
#define QUARRY_CORE_TELEMETRY_H_

#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/trace.h"

namespace quarry::core {

/// \brief Handle onto the process-wide observability surfaces
/// (docs/OBSERVABILITY.md), reachable as Quarry::Telemetry().
///
/// The underlying recorder and registry are singletons; the handle only
/// adds the Status-returning export convenience the dependency-free obs
/// layer cannot offer itself.
struct TelemetryHandle {
  obs::TraceRecorder& tracer;
  obs::MetricsRegistry& metrics;
  obs::RequestLog& requests;  ///< Structured request-completion event log.

  /// Starts span recording into a fresh buffer.
  void StartTracing(size_t capacity = obs::TraceRecorder::kDefaultCapacity) {
    tracer.Start(capacity);
  }
  void StopTracing() { tracer.Stop(); }

  /// Writes `<dir>/trace.json` (Chrome trace_event), `<dir>/metrics.prom`
  /// (Prometheus text exposition), `<dir>/metrics.json` (JSON snapshot) and
  /// `<dir>/requests.jsonl` (request-completion event log, one JSON object
  /// per line). The directory must exist.
  Status WriteTo(const std::string& dir) const;
};

TelemetryHandle Telemetry();

}  // namespace quarry::core

#endif  // QUARRY_CORE_TELEMETRY_H_
