#ifndef QUARRY_CORE_ADMISSION_H_
#define QUARRY_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/exec_context.h"
#include "common/result.h"

namespace quarry::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace quarry::obs

namespace quarry::core {

/// \brief Load-shedding knobs of the AdmissionController
/// (docs/ROBUSTNESS.md §7).
struct AdmissionOptions {
  /// Requests allowed to run concurrently; further arrivals queue.
  int max_in_flight = 4;
  /// Waiting requests beyond the in-flight set; an arrival that finds the
  /// queue full is shed immediately with kOverloaded. 0 disables queueing
  /// entirely (admit-or-shed).
  int max_queue_depth = 16;
  /// How long one request may sit in the queue before it is shed with
  /// kOverloaded. < 0 = wait indefinitely (its own deadline still applies).
  double queue_timeout_millis = -1.0;
  /// Metric lane: when non-empty, every quarry_admission_* metric this
  /// controller registers carries a {lane="..."} label, so multiple gates
  /// (design pipeline vs query serving vs the stale-read side quota,
  /// docs/ROBUSTNESS.md §9) stay distinguishable on dashboards. Empty (the
  /// default) keeps the unlabeled pre-lane metric identities.
  std::string lane;
};

/// \brief Bounded-concurrency gate in front of the design pipeline
/// (docs/ROBUSTNESS.md §7).
///
/// Admit() either hands out an RAII Ticket (a held slot), parks the caller
/// in a strict FIFO wait queue, or sheds the request with a structured
/// lifecycle error: kOverloaded when the queue is full or the per-request
/// queue timeout fires, kDeadlineExceeded / kCancelled when the request's
/// own ExecContext gives up while queued. Queued waiters poll their context
/// in short slices, so a cancellation from another thread unparks within
/// ~1ms even though no slot was released.
///
/// Fully instrumented: requests/admitted/shed/cancelled/deadline counters,
/// in-flight + queue-depth gauges and a time-in-queue histogram, all
/// registered eagerly at construction so dashboards see explicit zeros
/// (docs/OBSERVABILITY.md).
class AdmissionController {
 public:
  /// \brief A held admission slot. Releasing (or destroying) it wakes the
  /// head of the wait queue. Move-only; a moved-from or default ticket
  /// holds nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool held() const { return controller_ != nullptr; }

    /// Returns the slot; idempotent.
    void Release() {
      if (controller_ != nullptr) {
        controller_->ReleaseSlot();
        controller_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(AdmissionOptions options = {});

  /// Blocks until a slot is free (FIFO among waiters) or the request is
  /// shed. `ctx` is nullable; when given, its cancellation and deadline are
  /// honoured while queued. `queue_wait_micros` (nullable) receives the
  /// time this call spent waiting for its slot — the same value the
  /// quarry_admission_queue_wait_micros histogram observes — so request
  /// profiles can attribute admission wait per request.
  Result<Ticket> Admit(const ExecContext* ctx = nullptr,
                       double* queue_wait_micros = nullptr);

  int in_flight() const;
  int queue_depth() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  friend class Ticket;
  void ReleaseSlot();

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int in_flight_ = 0;           ///< Guarded by mu_.
  uint64_t next_seq_ = 0;       ///< Guarded by mu_.
  std::deque<uint64_t> queue_;  ///< Waiter seq ids, FIFO. Guarded by mu_.

  // Cached metric instances (process-lifetime pointers, see obs/metrics.h).
  obs::Counter* requests_total_;
  obs::Counter* admitted_total_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_queue_timeout_;
  obs::Counter* cancelled_total_;
  obs::Counter* deadline_total_;
  obs::Gauge* in_flight_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* queue_wait_micros_;
};

}  // namespace quarry::core

#endif  // QUARRY_CORE_ADMISSION_H_
