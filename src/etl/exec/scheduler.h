#ifndef QUARRY_ETL_EXEC_SCHEDULER_H_
#define QUARRY_ETL_EXEC_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "common/timer.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"

namespace quarry::etl {

/// \brief Wavefront (ready-queue) scheduler: runs a flow's independent
/// nodes concurrently on a pool of ExecOptions::max_workers threads
/// (docs/ROBUSTNESS.md §8).
///
/// Dependency counters start from Flow::InDegrees(); a node enters the
/// ready queue when its last predecessor completes. Loader nodes carry one
/// extra *chain* edge each — loader N depends on loader N-1 in topological
/// order — which serializes every target-database write (and its
/// snapshot/rollback) without a target mutex and keeps table creation,
/// insert order and merge semantics byte-identical to a serial run.
///
/// Error handling is first-error-wins: the first failing node aborts the
/// run and clears the ready queue, then in-flight workers drain — a sibling
/// that still *succeeds* while draining is recorded as completed (its
/// loader writes already landed, so forgetting it would make Resume re-run
/// it and double-load), while later nodes never start. The checkpoint thus
/// records the completed *set* — the antichain's downward closure — and
/// Resume (serial or parallel) continues exactly where the run stopped.
///
/// All shared run state lives behind one mutex; node execution itself runs
/// unlocked. Input datasets are resolved to pointers under the mutex before
/// the worker releases it (map nodes are stable under unrelated erase), and
/// a dataset is only freed when its last consumer has *completed*, so no
/// worker ever reads a dataset another thread may drop.
class Scheduler {
 public:
  Scheduler(Executor* executor, const ExecOptions& options)
      : executor_(executor), options_(options) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Continues a run whose prologue (validation, run counters, checkpoint
  /// init and resume state) Executor::RunInternal already performed. The
  /// mutable run state — completed set, live intermediate datasets,
  /// consumer refcounts, partially filled report — moves in; `order` is the
  /// flow's topological order. Call once per Scheduler instance.
  Result<ExecutionReport> Run(const Flow& flow,
                              const std::vector<std::string>& order,
                              const RetryPolicy& retry, Checkpoint* checkpoint,
                              const ExecContext* ctx,
                              std::set<std::string> completed,
                              std::map<std::string, Dataset> done,
                              std::map<std::string, size_t> remaining_consumers,
                              ExecutionReport report, bool resumed_any,
                              Timer total);

 private:
  /// The winning (first) node failure; later failures are discarded.
  struct Failure {
    Status status = Status::OK();
    std::string node_id;
    OpType type = OpType::kExtraction;
    int attempts = 1;
  };

  void Worker(int worker_index);

  /// Success bookkeeping for one finished node; caller holds mu_.
  void CompleteNode(const std::string& id, const Node& node, int64_t rows_in,
                    double node_millis, Executor::NodeAttempt* outcome);

  Executor* const executor_;
  const ExecOptions options_;

  // Set once by Run before workers start; read-only while they run.
  const Flow* flow_ = nullptr;
  RetryPolicy retry_;
  Checkpoint* checkpoint_ = nullptr;
  const ExecContext* ctx_ = nullptr;

  Executor::BackoffBudget backoff_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> ready_;
  std::map<std::string, size_t> deps_;  ///< Unmet deps per uncompleted node.
  /// Successor adjacency incl. loader-chain edges (drives dep counting).
  std::map<std::string, std::vector<std::string>> succs_;
  /// Data predecessors in edge order (drives input resolution; chain edges
  /// are scheduling-only and never appear here).
  std::map<std::string, std::vector<std::string>> preds_;
  std::set<std::string> completed_;
  std::map<std::string, Dataset> done_;
  std::map<std::string, size_t> remaining_consumers_;
  ExecutionReport report_;
  size_t pending_ = 0;  ///< Uncompleted nodes (successes decrement).
  size_t in_flight_ = 0;
  bool abort_ = false;
  Failure failure_;
};

}  // namespace quarry::etl

#endif  // QUARRY_ETL_EXEC_SCHEDULER_H_
