#ifndef QUARRY_JSON_JSON_H_
#define QUARRY_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "xml/xml.h"

namespace quarry::json {

/// Shared structural-limit knobs (see xml::ParseLimits): max nesting depth
/// and max input size, enforced as kResourceExhausted.
using ParseLimits = xml::ParseLimits;

class Value;

/// Objects keep insertion order (documents written to the repository must
/// round-trip byte-stably), so they are stored as ordered key/value vectors
/// with linear lookup; repository documents are small.
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// \brief A JSON value (null, bool, number, string, array or object).
///
/// Numbers are stored as int64 when the literal has no fraction/exponent,
/// double otherwise.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int64_t i) : data_(i) {}                     // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(double d) : data_(d) {}                      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Object o) : data_(std::move(o)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(data_))
                    : std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Object field lookup; returns nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Sets (or overwrites) an object field. Converts a null value to an
  /// empty object first; any other non-object type is a logic error.
  void Set(const std::string& key, Value value);

  /// Convenience: string field or fallback.
  std::string GetString(std::string_view key, std::string fallback = "") const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Parses a JSON document. Malformed input returns kParseError; input
/// breaking `limits` (too deeply nested / too large) returns
/// kResourceExhausted.
Result<Value> Parse(std::string_view input, const ParseLimits& limits = {});

/// Serializes a value; `pretty` indents with two spaces.
std::string Write(const Value& value, bool pretty = false);

}  // namespace quarry::json

#endif  // QUARRY_JSON_JSON_H_
