#ifndef QUARRY_CORE_QUARRY_H_
#define QUARRY_CORE_QUARRY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/exec_context.h"
#include "common/result.h"
#include "core/admission.h"
#include "core/metadata_repository.h"
#include "core/tenant.h"
#include "core/telemetry.h"
#include "deployer/deployer.h"
#include "integrator/design_integrator.h"
#include "interpreter/interpreter.h"
#include "obs/profile.h"
#include "olap/cube_query.h"
#include "ontology/mapping.h"
#include "ontology/ontology.h"
#include "requirements/elicitor.h"
#include "requirements/requirement.h"
#include "storage/database.h"
#include "storage/generation_store.h"

namespace quarry::obs {
class Counter;
class Histogram;
}  // namespace quarry::obs

namespace quarry::core {

/// Knobs of the snapshot-isolated serving path (docs/ROBUSTNESS.md §9).
struct ServingOptions {
  /// Query lane in front of SubmitQuery — its own quota, so OLAP reads are
  /// never starved (or flooded) by the design/deploy lane. The Quarry
  /// constructor additionally turns on derive_queue_timeout_from_deadline
  /// and deadline_eviction for this lane (docs/ROBUSTNESS.md §11): a query
  /// carrying a deadline never waits past the point where finishing on time
  /// is possible.
  AdmissionOptions query_admission{/*max_in_flight=*/8,
                                   /*max_queue_depth=*/32,
                                   /*queue_timeout_millis=*/-1.0,
                                   /*lane=*/""};
  /// Bounded admit-or-shed side quota for stale reads: when the query lane
  /// sheds under overload while a publish is pending, a caller that opted
  /// in (QueryOptions::allow_stale) may still be served generation N-1
  /// through this lane instead of being turned away.
  AdmissionOptions stale_admission{/*max_in_flight=*/2,
                                   /*max_queue_depth=*/0,
                                   /*queue_timeout_millis=*/-1.0,
                                   /*lane=*/""};
};

/// Configuration of a Quarry instance.
struct QuarryConfig {
  integrator::MdIntegrationOptions md_options;
  etl::CostModelConfig etl_cost;
  std::string database_name = "demo";
  /// Gate in front of the design-mutating entry points — Submit* and the
  /// direct Refresh / DeployResilient / *Serving calls alike
  /// (docs/ROBUSTNESS.md §7, §9.4).
  AdmissionOptions admission;
  /// How ETL runs execute (docs/ROBUSTNESS.md §8): `max_workers > 1` runs
  /// Deploy/Refresh flows on the wavefront scheduler. Applied to Refresh /
  /// SubmitRefresh always, and to DeployResilient / SubmitDeploy unless the
  /// caller's DeployOptions ask for parallelism themselves.
  etl::ExecOptions etl_exec;
  /// Snapshot-isolated serving (docs/ROBUSTNESS.md §9).
  ServingOptions serving;
};

/// Per-query knobs of Quarry::SubmitQuery.
struct QueryOptions {
  /// Degraded mode under overload: when the query lane sheds while a
  /// refresh/deploy is building the next generation, serve the *previous*
  /// generation through the bounded stale lane instead of failing with
  /// kOverloaded. The result is marked stale and counted in
  /// quarry_serving_queries_total{mode="stale"}.
  bool allow_stale = false;
  /// Collect the EXPLAIN ANALYZE profile tree into QueryResult::profile.
  /// On by default — BENCH_observability.json puts the cost under 2% — but
  /// latency-critical callers can opt out.
  bool collect_profile = true;
};

/// Outcome of Quarry::SubmitQuery: the dataset plus exactly which
/// published warehouse generation produced it, attributed to the request
/// id the query ran under.
struct QueryResult {
  etl::Dataset data;
  uint64_t generation = 0;
  bool stale = false;  ///< Served from generation N-1 via the stale lane.
  uint64_t request_id = 0;
  /// EXPLAIN ANALYZE profile (QueryOptions::collect_profile): per-plan-node
  /// rows/time/attempts plus admission wait, lane and generation served.
  /// profile.ToText() / ToJson() render it (docs/OBSERVABILITY.md).
  obs::RequestProfile profile;
};

/// What startup recovery did, across both durable substrates: the docstore
/// holding the design metadata (docs/ROBUSTNESS.md §6) and the generation
/// store holding the serving warehouse (§10). All-zero for fresh instances.
struct RecoveryReport {
  docstore::RecoveryStats metadata;
  storage::persist::GenerationRecoveryStats warehouse;

  std::string ToString() const;
};

/// \brief The end-to-end Quarry system (paper Fig. 1): wires together the
/// Requirements Elicitor, Requirements Interpreter, Design Integrator,
/// Design Deployer and the Communication & Metadata layer.
///
/// Lifecycle:
///   1. Create() over a domain ontology + source mappings + source data.
///   2. elicitor() assists users in phrasing information requirements.
///   3. AddRequirement() interprets the requirement into partial designs,
///      integrates them into the unified design (validating soundness and
///      satisfiability), and records every artifact (xRQ / partial and
///      unified xMD + xLM) in the metadata repository.
///   4. RemoveRequirement() / ChangeRequirement() accommodate evolution.
///   5. Deploy() emits SQL + ktr, creates the DW star schema and runs the
///      unified ETL to populate it.
class Quarry {
 public:
  /// Validates the mapping against the ontology, snapshots source table
  /// statistics for the cost models, registers the built-in exporters
  /// ("sql", "pdi", "xmd", "xlm") and stores ontology + mappings in the
  /// repository. `source` must outlive the instance.
  static Result<std::unique_ptr<Quarry>> Create(
      ontology::Ontology onto, ontology::SourceMapping mapping,
      const storage::Database* source, QuarryConfig config = {});

  /// Process-wide tracing + metrics surfaces (docs/OBSERVABILITY.md):
  /// Quarry::Telemetry().StartTracing() before a run,
  /// Quarry::Telemetry().WriteTo(dir) to export trace.json / metrics.prom /
  /// metrics.json afterwards. Static — telemetry spans every instance.
  static TelemetryHandle Telemetry() { return core::Telemetry(); }

  const ontology::Ontology& ontology() const { return *onto_; }
  const ontology::SourceMapping& mapping() const { return *mapping_; }
  req::Elicitor& elicitor() { return *elicitor_; }
  MetadataRepository& repository() { return repository_; }
  const MetadataRepository& repository() const { return repository_; }

  /// Makes the metadata repository crash-safe on `dir`
  /// (docs/ROBUSTNESS.md §6): the current state is checkpointed and every
  /// subsequent artifact write (AddRequirement, deployment records, ...)
  /// is WAL-logged with an fsync before it is acknowledged.
  Status EnableDurability(const std::string& dir);

  /// Makes the serving warehouse crash-safe on `dir`
  /// (docs/ROBUSTNESS.md §10): runs warehouse recovery — republishing the
  /// newest intact on-disk generation so SubmitQuery serves immediately at
  /// cold start, without waiting on a full ETL rebuild — then commits every
  /// later DeployServing / RefreshServing publish durably (per-table
  /// CRC-checksummed segments + MANIFEST.json, two-phase). The MD-schema
  /// annex travels with each generation as its serialized xMD document.
  /// Recovery results land in recovery_report().warehouse.
  Status EnableServingDurability(const std::string& dir);

  /// What startup recovery did when this instance was restored from
  /// durable directories (all-zero for fresh instances): metadata recovery
  /// from LoadSession / OpenDurableSession, warehouse recovery from
  /// EnableServingDurability.
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  /// Compat accessor for the metadata half of recovery_report() — the
  /// pre-§10 surface, kept so existing callers keep compiling.
  const docstore::RecoveryStats& recovery_stats() const {
    return recovery_report_.metadata;
  }
  void set_recovery_stats(docstore::RecoveryStats stats) {
    recovery_report_.metadata = std::move(stats);
  }

  const md::MdSchema& schema() const { return design_->schema(); }
  const etl::Flow& flow() const { return design_->flow(); }
  const std::map<std::string, req::InformationRequirement>& requirements()
      const {
    return design_->requirements();
  }

  /// Interprets + integrates a requirement; stores xRQ, the partial xMD and
  /// xLM, and refreshes the unified xMD/xLM in the repository. `ctx`
  /// (nullable) carries the request's cancellation token / deadline /
  /// budgets through the interpreter and integrator.
  Result<integrator::IntegrationOutcome> AddRequirement(
      const req::InformationRequirement& ir, const ExecContext* ctx = nullptr);

  /// Parses the textual "ANALYZE ... MEASURE ... BY ... WHERE ..." notation
  /// (req::ParseRequirementQuery) and adds the resulting requirement.
  Result<integrator::IntegrationOutcome> AddRequirementFromQuery(
      std::string_view query_text, const ExecContext* ctx = nullptr);

  /// Removes a requirement and prunes the unified design.
  Status RemoveRequirement(const std::string& ir_id);

  /// Replaces an integrated requirement with a new definition.
  Result<integrator::IntegrationOutcome> ChangeRequirement(
      const req::InformationRequirement& ir, const ExecContext* ctx = nullptr);

  /// Deploys the unified design into `target`.
  Result<deployer::DeploymentReport> Deploy(storage::Database* target);

  /// Transactional deployment of the unified design into `target`
  /// (docs/ROBUSTNESS.md): per-node ETL retries, rollback (or best-effort
  /// partial keep) on failure, and a deployment record in the metadata
  /// repository. `options.database_name` and `options.metadata` are
  /// overridden with this instance's configuration and repository store;
  /// attach a request lifecycle via `options.context`.
  Result<deployer::DeploymentOutcome> DeployResilient(
      storage::Database* target, deployer::DeployOptions options = {});

  /// Incrementally refreshes an already-deployed `target` with whatever
  /// changed in the source since the last Deploy/Refresh (idempotent
  /// loaders skip known keys).
  Result<etl::ExecutionReport> Refresh(storage::Database* target,
                                       const ExecContext* ctx = nullptr);

  /// The gate in front of the Submit* entry points. Exposed so callers can
  /// observe load (in_flight / queue_depth) or share it across instances.
  AdmissionController& admission() { return *admission_; }

  /// Multi-tenant quota gate in front of every admission lane
  /// (docs/ROBUSTNESS.md §11). Register tenants (RegisterTenant below) and
  /// stamp ExecContext::set_tenant on requests; untenanted requests pass
  /// through ungated.
  TenantRegistry& tenants() { return tenants_; }
  const TenantRegistry& tenants() const { return tenants_; }

  /// Convenience forwarder for tenants().Register.
  Status RegisterTenant(const std::string& id, const TenantQuota& quota) {
    return tenants_.Register(id, quota);
  }

  // --- admission-gated entry points (docs/ROBUSTNESS.md §7) ---------------
  //
  // Each Submit* first passes the admission controller — waiting FIFO for a
  // slot, or failing fast with kOverloaded / kDeadlineExceeded / kCancelled
  // under load — then runs the corresponding operation with `ctx` attached.
  // Design mutations are serialized internally, so concurrent Submit*
  // callers are safe; the admission gate bounds how many of them pile up.

  Result<integrator::IntegrationOutcome> SubmitRequirement(
      const req::InformationRequirement& ir, const ExecContext* ctx = nullptr);

  Result<integrator::IntegrationOutcome> SubmitRequirementFromQuery(
      std::string_view query_text, const ExecContext* ctx = nullptr);

  Status SubmitRemoveRequirement(const std::string& ir_id,
                                 const ExecContext* ctx = nullptr);

  /// `options.context` is overridden with `ctx`.
  Result<deployer::DeploymentOutcome> SubmitDeploy(
      storage::Database* target, deployer::DeployOptions options = {},
      const ExecContext* ctx = nullptr);

  Result<etl::ExecutionReport> SubmitRefresh(storage::Database* target,
                                             const ExecContext* ctx = nullptr);

  // --- snapshot-isolated serving (docs/ROBUSTNESS.md §9) ------------------
  //
  // Instead of deploying into a caller-owned mutable Database, the serving
  // path owns a GenerationStore of immutable published generations. Deploy /
  // refresh build the next generation off to the side and atomically publish
  // it on success; queries pin one generation for their whole run, so a
  // concurrent refresh can never tear a result. A mid-build fault discards
  // the scratch — rollback is O(1), never a full-warehouse RestoreFrom.

  /// The generation store behind the serving path. Read-only access for
  /// observation (current_generation, stats, Acquire for ad-hoc pins);
  /// publishing goes through DeployServing / RefreshServing only.
  storage::GenerationStore& warehouse() { return warehouse_; }
  const storage::GenerationStore& warehouse() const { return warehouse_; }

  /// Deploys the unified design as the next warehouse generation: builds a
  /// scratch database off to the side (DeployTransactional with
  /// target_is_scratch), and on success — or a best-effort partial —
  /// publishes it together with a snapshot of the MD schema. On failure the
  /// scratch is simply discarded: the currently-served generation is
  /// untouched and readers never observe intermediate state. The publish
  /// step itself is a fault site ("storage.generation.publish"); a publish
  /// fault reports stage "publish" and likewise discards the scratch.
  /// Admission-gated on the design lane.
  Result<deployer::DeploymentOutcome> DeployServing(
      deployer::DeployOptions options = {}, const ExecContext* ctx = nullptr);

  /// Incrementally refreshes the serving warehouse: clones the current
  /// generation, runs the refresh ETL against the clone, and publishes it
  /// as generation N+1. Requires a prior successful DeployServing
  /// (NotFound otherwise). Queries keep serving generation N throughout.
  /// Admission-gated on the design lane.
  Result<etl::ExecutionReport> RefreshServing(const ExecContext* ctx = nullptr);

  /// Runs a cube query against a pinned warehouse generation through the
  /// query admission lane. The pin guarantees the generation (tables and
  /// the MD schema snapshot it was published with) stays alive and
  /// immutable for the whole query even if refreshes publish and retire
  /// generations concurrently. Under overload (query lane sheds) with
  /// `opts.allow_stale` set while a build is in flight, degrades to serving
  /// the previous generation through the bounded stale lane; if that is
  /// unavailable too, the original kOverloaded error surfaces. `ctx` is
  /// polled throughout query execution (docs/ROBUSTNESS.md §7).
  Result<QueryResult> SubmitQuery(const olap::CubeQuery& query,
                                  const QueryOptions& opts = {},
                                  const ExecContext* ctx = nullptr);

  /// The query-lane admission controller (observation / sharing).
  AdmissionController& query_admission() { return *query_admission_; }

  /// Renders the unified MD schema via a registered exporter ("sql","xmd").
  Result<std::string> ExportSchema(const std::string& format) const;

  /// Renders the unified ETL flow via a registered exporter ("pdi","xlm").
  Result<std::string> ExportFlow(const std::string& format) const;

 private:
  Quarry(ontology::Ontology onto, ontology::SourceMapping mapping,
         const storage::Database* source, QuarryConfig config);

  Status RefreshUnifiedArtifacts();

  // Un-gated bodies of the admission-gated public entry points. Callers
  // hold submit_mu_ and have already passed the design-lane gate.
  Result<deployer::DeploymentOutcome> DeployResilientInternal(
      storage::Database* target, deployer::DeployOptions options);
  Result<etl::ExecutionReport> RefreshInternal(storage::Database* target,
                                               const ExecContext* ctx);
  Result<deployer::DeploymentOutcome> DeployServingInternal(
      deployer::DeployOptions options);

  /// Serves `query` from a pinned generation. `stale` selects which
  /// generation to pin (previous vs current) and how to label the result.
  /// `admission_wait_micros` (the time spent in the admission queue) and
  /// `collect_profile` feed the result's request profile.
  Result<QueryResult> ExecutePinnedQuery(const olap::CubeQuery& query,
                                         bool stale, const ExecContext* ctx,
                                         bool collect_profile,
                                         double admission_wait_micros);

  std::unique_ptr<ontology::Ontology> onto_;
  std::unique_ptr<ontology::SourceMapping> mapping_;
  const storage::Database* source_;
  QuarryConfig config_;
  std::unique_ptr<req::Elicitor> elicitor_;
  std::unique_ptr<interpreter::Interpreter> interpreter_;
  std::unique_ptr<integrator::DesignIntegrator> design_;
  MetadataRepository repository_;
  RecoveryReport recovery_report_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<AdmissionController> query_admission_;
  std::unique_ptr<AdmissionController> stale_admission_;
  /// Per-tenant quotas/priorities/breakers checked before any lane (§11).
  TenantRegistry tenants_;
  /// Serializes the design-mutating body of Submit* calls: the engine
  /// itself is single-writer, the admission gate only bounds how many
  /// requests wait for it.
  std::mutex submit_mu_;
  /// Published warehouse generations of the serving path (§9).
  storage::GenerationStore warehouse_;
  /// Builds currently constructing the next generation — "a publish is
  /// pending", the precondition for degrading a shed query to a stale read.
  std::atomic<int> serving_builds_in_flight_{0};
  // Serving metrics (process-lifetime registry pointers).
  obs::Counter* queries_fresh_total_ = nullptr;
  obs::Counter* queries_stale_total_ = nullptr;
  obs::Histogram* query_micros_ = nullptr;
};

}  // namespace quarry::core

#endif  // QUARRY_CORE_QUARRY_H_
