file(REMOVE_RECURSE
  "libquarry_xml.a"
)
