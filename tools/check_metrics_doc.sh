#!/usr/bin/env bash
# Lints docs/OBSERVABILITY.md against the metric families the code actually
# registers: every `quarry_*` family name that appears as a string literal
# in src/ must appear in the doc, and every family the doc inventories must
# still exist in src/ (so the doc can't drift in either direction).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
doc="${repo_root}/docs/OBSERVABILITY.md"

if [[ ! -f "${doc}" ]]; then
  echo "check_metrics_doc: missing ${doc}" >&2
  exit 1
fi

# Family names are registered as "quarry_..." string literals; attribute and
# span names never use that prefix, so the grep is precise.
mapfile -t registered < <(
  grep -rhoE '"quarry_[a-z0-9_]+"' "${repo_root}/src" |
    tr -d '"' | sort -u
)
# Trailing-underscore mentions (`quarry_design_`) are prefix references in
# the naming-conventions prose, not families.
mapfile -t documented < <(
  grep -ohE '`quarry_[a-z0-9_]+`' "${doc}" | tr -d '\`' |
    grep -v '_$' | sort -u
)

if [[ ${#registered[@]} -eq 0 ]]; then
  echo "check_metrics_doc: found no registered quarry_* families in src/" >&2
  exit 1
fi

status=0
for family in "${registered[@]}"; do
  if ! grep -q "\`${family}\`" "${doc}"; then
    echo "UNDOCUMENTED: ${family} (registered in src/, missing from ${doc#"${repo_root}"/})"
    status=1
  fi
done
for family in "${documented[@]}"; do
  if ! printf '%s\n' "${registered[@]}" | grep -qx "${family}"; then
    echo "STALE: ${family} (in ${doc#"${repo_root}"/}, no longer registered in src/)"
    status=1
  fi
done

if [[ ${status} -eq 0 ]]; then
  echo "check_metrics_doc: ${#registered[@]} families registered, all documented"
fi
exit ${status}
