#ifndef QUARRY_ETL_EXPR_H_
#define QUARRY_ETL_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace quarry::etl {

/// \brief A row with named columns, as seen by expression evaluation.
///
/// Non-owning: both vectors must outlive the view. Column resolution is
/// linear, which is fine for ETL tuples (tens of columns).
struct RowView {
  const std::vector<std::string>* names = nullptr;
  const storage::Row* row = nullptr;

  /// Value of the column, or an error when the name is unknown.
  Result<storage::Value> Get(const std::string& name) const;
};

/// \brief Expression AST used by Selection predicates, Function (derived
/// column) operators, measure definitions and slicer conditions.
///
/// Grammar (precedence low→high):
///   or:      and ( OR and )*
///   and:     not ( AND not )*
///   not:     NOT not | cmp
///   cmp:     add ( (= | <> | != | < | <= | > | >=) add )?
///   add:     mul ( (+ | -) mul )*
///   mul:     unary ( (* | /) unary )*
///   unary:   - unary | primary
///   primary: number | 'string' | DATE 'Y-M-D' | TRUE | FALSE | NULL
///            | identifier | ( or )
///
/// Identifiers are column names and may contain letters, digits, '_' and
/// '.'. Evaluation uses SQL-ish semantics: any arithmetic or comparison
/// with NULL yields NULL; AND/OR treat NULL as false (two-valued logic is
/// enough for ETL predicates and keeps flows deterministic).
class Expr {
 public:
  enum class Kind { kLiteral, kColumn, kUnary, kBinary };

  using Ptr = std::shared_ptr<const Expr>;

  static Ptr Literal(storage::Value value);
  static Ptr Column(std::string name);
  static Ptr Unary(std::string op, Ptr operand);
  static Ptr Binary(std::string op, Ptr lhs, Ptr rhs);

  Kind kind() const { return kind_; }
  const storage::Value& literal() const { return literal_; }
  const std::string& column() const { return column_; }
  const std::string& op() const { return op_; }
  const std::vector<Ptr>& args() const { return args_; }

  /// Evaluates against a row.
  Result<storage::Value> Eval(const RowView& row) const;

  /// Canonical text form; reparsing it yields an equivalent expression.
  std::string ToString() const;

  /// All column names referenced anywhere in the expression.
  std::set<std::string> ReferencedColumns() const;

  /// Structural equality of canonical forms.
  bool EqualTo(const Expr& other) const {
    return ToString() == other.ToString();
  }

 private:
  Expr() = default;

  Kind kind_ = Kind::kLiteral;
  storage::Value literal_;
  std::string column_;
  std::string op_;
  std::vector<Ptr> args_;
};

/// Parses the grammar above.
Result<Expr::Ptr> ParseExpr(std::string_view text);

/// Scalar evaluation primitives shared by Expr::Eval and the vectorized
/// chunk kernels (etl/exec/vectorized.cc) — both modes must agree
/// bit-for-bit for the differential harness to hold.

/// Two-valued truthiness used by AND/OR/NOT and Selection predicates:
/// only a non-NULL boolean TRUE counts.
bool ExprTruthy(const storage::Value& v);

/// +, -, *, / with the executor's SQL-ish semantics: NULL propagates,
/// int⊕int stays int (except /, which always yields DOUBLE and NULLs out a
/// zero divisor), mixed numerics widen to double, string + string
/// concatenates.
Result<storage::Value> EvalArithmetic(const std::string& op,
                                      const storage::Value& a,
                                      const storage::Value& b);

/// =, <>, <, <=, >, >= via Value::Compare; NULL on either side yields NULL.
Result<storage::Value> EvalComparison(const std::string& op,
                                      const storage::Value& a,
                                      const storage::Value& b);

}  // namespace quarry::etl

#endif  // QUARRY_ETL_EXPR_H_
