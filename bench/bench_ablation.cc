// Ablation experiments for the design choices DESIGN.md §4 calls out:
//  A1  equivalence-rule alignment in the ETL Process Integrator
//      (on vs off: how much operator reuse does alignment buy?)
//  A2  hierarchy folding in the MD Schema Integrator
//      (on vs off: structural complexity of the unified schema)
//  A3  selection push-down (the flagship equivalence rule)
//      (normalized vs as-generated flows: engine rows processed)
//  A4  early-projection insertion (column liveness)
//      (plain vs pruned execution plans: wall time)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "common/timer.h"
#include "datagen/tpch.h"
#include "etl/equivalence.h"
#include "etl/exec/executor.h"
#include "integrator/etl_integrator.h"
#include "integrator/md_integrator.h"
#include "interpreter/interpreter.h"
#include "mdschema/complexity.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"

namespace {

using quarry::etl::Flow;
using quarry::integrator::EtlIntegrationOptions;
using quarry::integrator::EtlIntegrator;
using quarry::integrator::MdIntegrationOptions;
using quarry::integrator::MdIntegrator;
using quarry::interpreter::Interpreter;

struct Env {
  quarry::storage::Database source{"tpch"};
  quarry::ontology::Ontology onto = quarry::ontology::BuildTpchOntology();
  quarry::ontology::SourceMapping mapping =
      quarry::ontology::BuildTpchMappings();
  quarry::etl::TableColumns columns;
  std::map<std::string, int64_t> rows;
  std::vector<quarry::interpreter::PartialDesign> designs;

  Env() {
    if (!quarry::datagen::PopulateTpch(&source, {0.01, 61}).ok()) {
      std::abort();
    }
    for (const std::string& name : source.TableNames()) {
      std::vector<std::string> cols;
      for (const auto& c : (*source.GetTable(name))->schema().columns()) {
        cols.push_back(c.name);
      }
      columns[name] = cols;
      rows[name] = static_cast<int64_t>((*source.GetTable(name))->num_rows());
    }
    Interpreter interpreter(&onto, &mapping);
    quarry::req::WorkloadConfig config;
    config.num_requirements = 6;
    config.overlap = 0.7;
    config.slicer_probability = 1.0;  // Slicers make alignment matter.
    config.seed = 87;
    for (const auto& ir : quarry::req::GenerateTpchWorkload(config)) {
      auto design = interpreter.Interpret(ir);
      if (!design.ok()) std::abort();
      designs.push_back(std::move(*design));
    }
  }
};

Env& SharedEnv() {
  static Env* env = new Env();
  return *env;
}

void PrintAblations() {
  Env& env = SharedEnv();

  // --- A1: equivalence-rule alignment on/off -----------------------------
  // The paper allows plugging in external design tools (§2.2), so the same
  // computation may arrive in a different operator order. We simulate that
  // by integrating each flow twice: once pre-normalized (selections pushed
  // down) and once as generated (selections after the join tree). With
  // alignment the second copy must be recognized as fully redundant.
  std::printf("A1: ETL integration with vs without equivalence-rule "
              "alignment\n    (each of 6 flows integrated in two different "
              "shapes)\n");
  std::printf("  %-12s %10s %10s %12s\n", "alignment", "reused", "nodes",
              "est_cost");
  for (bool align : {true, false}) {
    EtlIntegrationOptions options;
    options.align_with_equivalence_rules = align;
    EtlIntegrator integrator(env.columns, env.rows, {}, options);
    Flow unified("unified");
    int reused = 0;
    double cost = 0;
    for (const auto& design : env.designs) {
      Flow normalized = design.flow.Clone();
      if (!quarry::etl::Normalize(&normalized, env.columns).ok()) {
        std::abort();
      }
      auto first = integrator.Integrate(&unified, normalized);
      if (!first.ok()) std::abort();
      reused += first->nodes_reused;
      auto second = integrator.Integrate(&unified, design.flow);
      if (!second.ok()) std::abort();
      reused += second->nodes_reused;
      cost = second->cost_unified;
    }
    std::printf("  %-12s %10d %10zu %12.0f\n", align ? "on" : "off", reused,
                unified.num_nodes(), cost);
  }

  // --- A2: hierarchy folding on/off ---------------------------------------
  std::printf("\nA2: MD integration with vs without hierarchy folding\n");
  std::printf("  %-12s %8s %8s %12s\n", "folding", "dims", "folded",
              "complexity");
  for (bool fold : {true, false}) {
    MdIntegrationOptions options;
    options.allow_hierarchy_merge = fold;
    MdIntegrator integrator(&env.onto, options);
    quarry::md::MdSchema unified("unified");
    int folded = 0;
    for (const auto& design : env.designs) {
      auto report = integrator.Integrate(&unified, design.schema);
      if (!report.ok()) std::abort();
      folded += report->dimensions_folded;
    }
    std::printf("  %-12s %8zu %8d %12.1f\n", fold ? "on" : "off",
                unified.dimensions().size(), folded,
                quarry::md::StructuralComplexity(unified).score);
  }

  // --- A3: selection push-down effect on engine work ----------------------
  std::printf("\nA3: selection push-down — engine rows processed per flow\n");
  std::printf("  %-18s %14s %14s %8s\n", "flow", "as_generated",
              "normalized", "saving");
  for (size_t i = 0; i < env.designs.size(); ++i) {
    const Flow& original = env.designs[i].flow;
    Flow normalized = original.Clone();
    if (!quarry::etl::Normalize(&normalized, env.columns).ok()) std::abort();
    quarry::storage::Database t1("a"), t2("b");
    auto r1 = quarry::etl::Executor(&env.source, &t1).Run(original);
    auto r2 = quarry::etl::Executor(&env.source, &t2).Run(normalized);
    if (!r1.ok() || !r2.ok()) std::abort();
    double saving = 1.0 - static_cast<double>(r2->rows_processed) /
                              static_cast<double>(r1->rows_processed);
    std::printf("  %-18s %14lld %14lld %7.1f%%\n", original.name().c_str(),
                static_cast<long long>(r1->rows_processed),
                static_cast<long long>(r2->rows_processed), 100.0 * saving);
  }

  // --- A4: early-projection insertion (column liveness) -------------------
  std::printf("\nA4: early projections — execution wall time per flow\n");
  std::printf("  %-18s %12s %12s %8s\n", "flow", "plain_ms", "pruned_ms",
              "saving");
  for (size_t i = 0; i < env.designs.size(); ++i) {
    const Flow& original = env.designs[i].flow;
    Flow pruned = original.Clone();
    auto inserted = quarry::etl::InsertEarlyProjections(&pruned, env.columns);
    if (!inserted.ok()) std::abort();
    quarry::Timer t_plain;
    {
      quarry::storage::Database t("a");
      if (!quarry::etl::Executor(&env.source, &t).Run(original).ok()) {
        std::abort();
      }
    }
    double plain_ms = t_plain.ElapsedMillis();
    quarry::Timer t_pruned;
    {
      quarry::storage::Database t("b");
      if (!quarry::etl::Executor(&env.source, &t).Run(pruned).ok()) {
        std::abort();
      }
    }
    double pruned_ms = t_pruned.ElapsedMillis();
    std::printf("  %-18s %12.1f %12.1f %7.1f%%\n", original.name().c_str(),
                plain_ms, pruned_ms,
                100.0 * (1.0 - pruned_ms / plain_ms));
  }
  std::printf("\n");
}

void BM_IntegrateAligned(benchmark::State& state) {
  Env& env = SharedEnv();
  for (auto _ : state) {
    EtlIntegrator integrator(env.columns, env.rows);
    Flow unified("unified");
    for (const auto& design : env.designs) {
      if (!integrator.Integrate(&unified, design.flow).ok()) std::abort();
    }
    benchmark::DoNotOptimize(unified.num_nodes());
  }
}
BENCHMARK(BM_IntegrateAligned);

void BM_IntegrateUnaligned(benchmark::State& state) {
  Env& env = SharedEnv();
  EtlIntegrationOptions options;
  options.align_with_equivalence_rules = false;
  for (auto _ : state) {
    EtlIntegrator integrator(env.columns, env.rows, {}, options);
    Flow unified("unified");
    for (const auto& design : env.designs) {
      if (!integrator.Integrate(&unified, design.flow).ok()) std::abort();
    }
    benchmark::DoNotOptimize(unified.num_nodes());
  }
}
BENCHMARK(BM_IntegrateUnaligned);

}  // namespace

int main(int argc, char** argv) {
  PrintAblations();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
