file(REMOVE_RECURSE
  "CMakeFiles/bench_olap.dir/bench_olap.cc.o"
  "CMakeFiles/bench_olap.dir/bench_olap.cc.o.d"
  "bench_olap"
  "bench_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
