#ifndef QUARRY_ONTOLOGY_MAPPING_H_
#define QUARRY_ONTOLOGY_MAPPING_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/ontology.h"
#include "xml/xml.h"

namespace quarry::ontology {

/// Maps a concept onto the source table holding its instances.
struct ConceptMapping {
  std::string concept_id;
  std::string table;
  std::vector<std::string> key_columns;  ///< Identify one instance.
};

/// Maps a datatype property onto a source column.
struct PropertyMapping {
  std::string property_id;
  std::string table;
  std::string column;
};

/// Maps an association onto an equi-join between the two mapped tables.
struct AssociationMapping {
  std::string association_id;
  std::vector<std::string> from_columns;  ///< In the from-concept's table.
  std::vector<std::string> to_columns;    ///< In the to-concept's table.
};

/// \brief Source schema mappings: how ontology vocabulary grounds out in the
/// underlying data stores (paper §2.5).
///
/// The Requirements Interpreter consults these to turn a validated
/// requirement into extraction/join/projection operations over concrete
/// tables, and the Design Deployer uses the key columns to build
/// dimension-table identifiers.
class SourceMapping {
 public:
  SourceMapping() = default;

  SourceMapping(const SourceMapping&) = delete;
  SourceMapping& operator=(const SourceMapping&) = delete;
  SourceMapping(SourceMapping&&) = default;
  SourceMapping& operator=(SourceMapping&&) = default;

  Status MapConcept(const std::string& concept_id, const std::string& table,
                    std::vector<std::string> key_columns);
  Status MapProperty(const std::string& property_id, const std::string& table,
                     const std::string& column);
  Status MapAssociation(const std::string& association_id,
                        std::vector<std::string> from_columns,
                        std::vector<std::string> to_columns);

  Result<ConceptMapping> ForConcept(const std::string& concept_id) const;
  Result<PropertyMapping> ForProperty(const std::string& property_id) const;
  Result<AssociationMapping> ForAssociation(
      const std::string& association_id) const;

  size_t num_concept_mappings() const { return concepts_.size(); }

  /// Checks that every mapping refers to existing ontology elements and
  /// that each concept of `onto` used by a property mapping is mapped.
  Status Validate(const Ontology& onto) const;

  std::unique_ptr<xml::Element> ToXml() const;
  static Result<SourceMapping> FromXml(const xml::Element& root);

 private:
  std::map<std::string, ConceptMapping> concepts_;
  std::map<std::string, PropertyMapping> properties_;
  std::map<std::string, AssociationMapping> associations_;
};

}  // namespace quarry::ontology

#endif  // QUARRY_ONTOLOGY_MAPPING_H_
