#ifndef QUARRY_CORE_ADMISSION_H_
#define QUARRY_CORE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>

#include "common/exec_context.h"
#include "common/result.h"

namespace quarry::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace quarry::obs

namespace quarry::core {

/// \brief Load-shedding knobs of the AdmissionController
/// (docs/ROBUSTNESS.md §7, §11).
struct AdmissionOptions {
  /// Requests allowed to run concurrently; further arrivals queue.
  int max_in_flight = 4;
  /// Waiting requests beyond the in-flight set; an arrival that finds the
  /// queue full is shed immediately with kOverloaded (after trying to
  /// preempt a strictly lower-priority waiter). 0 disables queueing
  /// entirely (admit-or-shed).
  int max_queue_depth = 16;
  /// How long one request may sit in the queue before it is shed with
  /// kOverloaded. < 0 = wait indefinitely (its own deadline still applies,
  /// and see derive_queue_timeout_from_deadline).
  double queue_timeout_millis = -1.0;
  /// Metric lane: when non-empty, every quarry_admission_* metric this
  /// controller registers carries a {lane="..."} label, so multiple gates
  /// (design pipeline vs query serving vs the stale-read side quota,
  /// docs/ROBUSTNESS.md §9) stay distinguishable on dashboards. Empty (the
  /// default) keeps the unlabeled pre-lane metric identities.
  std::string lane;
  /// When queue_timeout_millis < 0 and the request carries a bounded
  /// deadline, derive a finite queue timeout as
  /// `remaining_deadline * deadline_queue_fraction` — a request should not
  /// burn its whole deadline parked in the queue and then fail anyway.
  /// Quarry enables this on the query lane.
  bool derive_queue_timeout_from_deadline = false;
  /// Fraction of the remaining deadline a request may spend queued when the
  /// timeout is derived (see above).
  double deadline_queue_fraction = 0.5;
  /// Weighted-fairness aging: one priority class of head start equals this
  /// many milliseconds of waiting. A lower-priority waiter that has waited
  /// `priority_aging_millis` longer than a higher-priority one is selected
  /// first, so low-priority traffic is starvation-free. <= 0 disables aging
  /// (strict priority, FIFO within a class).
  double priority_aging_millis = 100.0;
  /// Deadline-aware eviction (metastable-overload avoidance,
  /// docs/ROBUSTNESS.md §11): an arrival whose remaining deadline cannot
  /// cover the expected queue wait — estimated from the
  /// quarry_admission_queue_wait_micros histogram — is shed immediately
  /// with kOverloaded + a retry-after hint instead of queueing doomed work.
  bool deadline_eviction = false;
  /// Minimum number of genuinely-queued histogram samples before the wait
  /// estimate is trusted for eviction decisions.
  int eviction_min_samples = 64;
};

/// \brief Bounded-concurrency gate in front of the design pipeline and the
/// serving lanes (docs/ROBUSTNESS.md §7, §11).
///
/// Admit() either hands out an RAII Ticket (a held slot), parks the caller
/// in a priority-aware wait queue, or sheds the request with a structured
/// lifecycle error: kOverloaded when the queue is full, the per-request
/// queue timeout fires, the waiter is preempted by a higher-priority
/// arrival, or its deadline provably cannot cover the expected wait;
/// kDeadlineExceeded / kCancelled when the request's own ExecContext gives
/// up while queued.
///
/// Waiter selection is weighted-fair: the next slot goes to the waiter with
/// the best (priority, time-waited) score, where `priority_aging_millis` of
/// queue time cancels out one priority class — high-priority requests jump
/// the line, but low-priority ones age toward the front and never starve.
/// Equal scores fall back to FIFO arrival order, so single-priority
/// workloads keep the original strict-FIFO semantics.
///
/// Each waiter parks on its own condition variable and slot releases wake
/// exactly the selected waiter (no thundering herd); cross-thread
/// cancellation unparks promptly via a CancellationToken callback instead
/// of the historical ~1ms polling slices.
///
/// Fully instrumented: requests/admitted/shed/evicted/cancelled/deadline
/// counters, in-flight + queue-depth gauges and a time-in-queue histogram,
/// all registered eagerly at construction so dashboards see explicit zeros
/// (docs/OBSERVABILITY.md).
class AdmissionController {
 public:
  /// \brief A held admission slot. Releasing (or destroying) it wakes the
  /// best-scored waiter. Move-only; a moved-from or default ticket holds
  /// nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool held() const { return controller_ != nullptr; }

    /// Returns the slot; idempotent.
    void Release() {
      if (controller_ != nullptr) {
        controller_->ReleaseSlot();
        controller_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(AdmissionOptions options = {});

  /// Blocks until a slot is free (weighted-fair among waiters, FIFO within
  /// a priority class) or the request is shed. `ctx` is nullable; when
  /// given, its cancellation, deadline and priority are honoured while
  /// queued. `queue_wait_micros` (nullable) receives the time this call
  /// spent waiting for its slot — the same value the
  /// quarry_admission_queue_wait_micros histogram observes — so request
  /// profiles can attribute admission wait per request.
  Result<Ticket> Admit(const ExecContext* ctx = nullptr,
                       double* queue_wait_micros = nullptr);

  int in_flight() const;
  int queue_depth() const;
  const AdmissionOptions& options() const { return options_; }

  /// Expected queue wait in microseconds for a request arriving now,
  /// estimated from the genuinely-queued tail of the wait histogram
  /// (docs/ROBUSTNESS.md §11); < 0 when there are not yet
  /// `eviction_min_samples` queued admissions to trust.
  double EstimatedQueueWaitMicros() const;

 private:
  friend class Ticket;
  using Clock = std::chrono::steady_clock;

  /// One parked Admit() call. Stack-allocated by the waiting thread and
  /// linked into waiters_; every field is guarded by mu_.
  struct Waiter {
    uint64_t seq = 0;
    Priority priority = Priority::kNormal;
    Clock::time_point enqueued;
    std::condition_variable cv;  ///< Targeted wakeup for this waiter only.
    bool granted = false;        ///< Slot handed over by the releaser.
    bool evicted = false;        ///< Removed by a preempting arrival.
    Status evicted_status;       ///< Valid when evicted.
  };

  void ReleaseSlot();
  /// Grants free slots to the best-scored waiters (removing them from
  /// waiters_ and notifying their cvs). Caller holds mu_.
  void WakeNextLocked(Clock::time_point now);
  /// The waiter the next free slot should go to, nullptr when none.
  /// Caller holds mu_.
  std::list<Waiter*>::iterator SelectNextLocked(Clock::time_point now);
  double EstimatedQueueWaitMicrosLocked() const;

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  int in_flight_ = 0;            ///< Guarded by mu_.
  uint64_t next_seq_ = 0;        ///< Guarded by mu_.
  std::list<Waiter*> waiters_;   ///< Arrival order. Guarded by mu_.

  // Cached metric instances (process-lifetime pointers, see obs/metrics.h).
  obs::Counter* requests_total_;
  obs::Counter* admitted_total_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_queue_timeout_;
  obs::Counter* evicted_deadline_;
  obs::Counter* evicted_preempted_;
  obs::Counter* cancelled_total_;
  obs::Counter* deadline_total_;
  obs::Gauge* in_flight_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* queue_wait_micros_;
};

}  // namespace quarry::core

#endif  // QUARRY_CORE_ADMISSION_H_
