#ifndef QUARRY_OBS_METRICS_H_
#define QUARRY_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace quarry::obs {

/// Label set of one metric instance ("site" -> "wal.append", ...). Kept as
/// an ordered vector so exposition output is deterministic.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing event count (Prometheus counter).
///
/// Lock-free: Increment is a single relaxed fetch_add, safe from any
/// thread. Pointers returned by the registry are stable for the process
/// lifetime, so hot paths cache them (typically in a function-local static)
/// and never pay the registry lookup again.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<int64_t> value_{0};
};

/// \brief Point-in-time numeric value (Prometheus gauge) — e.g. the
/// structural design complexity after the latest integration round.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket distribution (Prometheus histogram).
///
/// Bucket bounds are inclusive upper bounds, strictly increasing; an
/// implicit +Inf bucket catches the rest. Observe is lock-free (one linear
/// bucket scan + three relaxed atomics); bound lists are short (<= ~20).
class Histogram {
 public:
  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i`; index bounds().size() is +Inf.
  int64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;  ///< bounds.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` exponential bucket bounds starting at `start`, each `factor`
/// apart — the standard shape for latency histograms.
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// Canonical microsecond-latency bounds (1us .. ~16s, x4 steps) used by the
/// built-in fsync / operator / stage histograms.
const std::vector<double>& LatencyBucketsMicros();

/// \brief Process-wide registry of named metrics with Prometheus text
/// exposition and a JSON snapshot (docs/OBSERVABILITY.md).
///
/// A metric instance is identified by its family name plus an optional
/// label set; requesting the same (family, labels) twice returns the same
/// instance. Families must keep one type and one bucket layout — mixing
/// types under one name is a programming error and aborts. The registry and
/// every metric it hands out live for the whole process; ResetForTest()
/// zeroes values but never invalidates pointers.
///
/// Dependency note: this layer is deliberately free of quarry::Status and
/// every other repo module, so the lowest layers (WAL, fault injection) can
/// record metrics without a dependency cycle.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& counter(const std::string& family, const std::string& help = "",
                   const Labels& labels = {});
  Gauge& gauge(const std::string& family, const std::string& help = "",
               const Labels& labels = {});
  Histogram& histogram(const std::string& family,
                       const std::string& help = "",
                       const std::vector<double>& bounds =
                           std::vector<double>(),
                       const Labels& labels = {});

  /// Prometheus text exposition format (one HELP/TYPE header per family,
  /// instances sorted by label string — stable across runs).
  std::string PrometheusText() const;

  /// The same data as a JSON object: { "family{labels}": value | {...} }.
  /// Histograms render as {"count":..,"sum":..,"buckets":[{"le":..,"n":..}]}.
  std::string JsonSnapshot() const;

  /// Every registered family name, sorted (tools/check_metrics_doc.sh
  /// lints these against docs/OBSERVABILITY.md).
  std::vector<std::string> FamilyNames() const;

  /// Zeroes every value. Registrations (and cached pointers) stay valid —
  /// tests and benches call this between scenarios.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    Kind kind;
    std::string help;
    std::vector<double> bounds;  ///< Histograms only.
    // label string -> instance; only the map matching `kind` is populated.
    // Instances are intentionally never destroyed (process-lifetime), so
    // cached pointers stay valid forever.
    std::map<std::string, Counter*> counters;
    std::map<std::string, Gauge*> gauges;
    std::map<std::string, Histogram*> histograms;
  };

  Family& GetFamily(const std::string& family, Kind kind,
                    const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace quarry::obs

#endif  // QUARRY_OBS_METRICS_H_
