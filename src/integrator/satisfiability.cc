#include "integrator/satisfiability.h"

namespace quarry::integrator {

Status CheckSatisfies(const md::MdSchema& schema, const etl::Flow& flow,
                      const req::InformationRequirement& ir) {
  // Find the fact serving this requirement.
  const md::Fact* fact = nullptr;
  for (const md::Fact& f : schema.facts()) {
    if (f.requirement_ids.count(ir.id) > 0) {
      fact = &f;
      break;
    }
  }
  if (fact == nullptr) {
    return Status::Unsatisfiable("no fact serves requirement '" + ir.id +
                                 "'");
  }
  for (const req::MeasureSpec& m : ir.measures) {
    const md::Measure* measure = fact->FindMeasure(m.id);
    if (measure == nullptr || measure->requirement_ids.count(ir.id) == 0) {
      return Status::Unsatisfiable("fact '" + fact->name +
                                   "' lost measure '" + m.id +
                                   "' of requirement '" + ir.id + "'");
    }
  }
  for (const req::DimensionSpec& d : ir.dimensions) {
    bool found = false;
    for (const md::DimensionRef& ref : fact->dimension_refs) {
      auto dim = schema.GetDimension(ref.dimension);
      if (!dim.ok()) continue;
      for (const md::Level& level : (*dim)->levels) {
        for (const md::LevelAttribute& attr : level.attributes) {
          if (attr.source_property == d.property_id) found = true;
        }
      }
    }
    if (!found) {
      return Status::Unsatisfiable("dimension attribute '" + d.property_id +
                                   "' of requirement '" + ir.id +
                                   "' is not reachable from fact '" +
                                   fact->name + "'");
    }
  }
  // The ETL flow must still load the fact's table for this requirement.
  bool loader_found = false;
  for (const auto& [id, node] : flow.nodes()) {
    if (node.type != etl::OpType::kLoader) continue;
    auto it = node.params.find("table");
    if (it == node.params.end() || it->second != fact->name) continue;
    if (node.requirement_ids.count(ir.id) > 0) loader_found = true;
  }
  if (!loader_found) {
    return Status::Unsatisfiable("unified ETL flow has no loader for fact '" +
                                 fact->name + "' serving requirement '" +
                                 ir.id + "'");
  }
  return Status::OK();
}

}  // namespace quarry::integrator
