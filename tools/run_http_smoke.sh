#!/usr/bin/env bash
# End-to-end smoke of the telemetry HTTP listener: starts quarry_httpd on an
# ephemeral port, curls all six endpoints, validates every JSON body with
# the in-tree parser (tools/json_check), and checks /metrics carries the
# quarry_* families. Part of tools/run_all_checks.sh.
#
# Usage: tools/run_http_smoke.sh [build-dir]
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
httpd="${build_dir}/tools/quarry_httpd"
json_check="${build_dir}/tools/json_check"

for binary in "${httpd}" "${json_check}"; do
  if [[ ! -x "${binary}" ]]; then
    echo "run_http_smoke: missing ${binary} (build first)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
httpd_pid=""
cleanup() {
  exec 3>&- 2>/dev/null || true
  if [[ -n "${httpd_pid}" ]] && kill -0 "${httpd_pid}" 2>/dev/null; then
    kill "${httpd_pid}" 2>/dev/null || true
    wait "${httpd_pid}" 2>/dev/null || true
  fi
  rm -rf "${workdir}"
}
trap cleanup EXIT

# The server runs until its stdin sees EOF, so feed it a fifo we hold open
# on fd 3; closing fd 3 is the clean-shutdown signal.
mkfifo "${workdir}/ctl"
"${httpd}" <"${workdir}/ctl" >"${workdir}/httpd.log" 2>&1 &
httpd_pid=$!
exec 3>"${workdir}/ctl"

port=""
for _ in $(seq 1 100); do
  if ! kill -0 "${httpd_pid}" 2>/dev/null; then
    echo "run_http_smoke: quarry_httpd exited early:" >&2
    cat "${workdir}/httpd.log" >&2
    exit 1
  fi
  port="$(awk '/^LISTENING /{print $2}' "${workdir}/httpd.log")"
  [[ -n "${port}" ]] && break
  sleep 0.1
done
if [[ -z "${port}" ]]; then
  echo "run_http_smoke: server never printed LISTENING" >&2
  cat "${workdir}/httpd.log" >&2
  exit 1
fi
base="http://127.0.0.1:${port}"
echo "run_http_smoke: serving on ${base}"

failed=0
fetch() {
  local path="$1" out="$2"
  if ! curl -fsS --max-time 10 "${base}${path}" -o "${out}"; then
    echo "run_http_smoke: GET ${path} failed" >&2
    failed=1
    return 1
  fi
}

# /metrics — Prometheus text; must expose the request + HTTP families.
if fetch /metrics "${workdir}/metrics.prom"; then
  for family in quarry_requests_total quarry_request_micros \
    quarry_http_requests_total quarry_request_log_records_total; do
    if ! grep -q "^${family}" "${workdir}/metrics.prom"; then
      echo "run_http_smoke: /metrics missing family ${family}" >&2
      failed=1
    fi
  done
fi

# The JSON endpoints — each body must satisfy the in-tree parser.
for path in /metrics.json /healthz /statusz /requestz /tenantz; do
  out="${workdir}/${path//\//_}.json"
  if fetch "${path}" "${out}"; then
    if ! "${json_check}" "${out}"; then
      echo "run_http_smoke: ${path} body is not valid JSON" >&2
      failed=1
    fi
  fi
done

# /healthz must report serving (quarry_httpd deploys before listening), and
# /requestz must carry the warm-up query records with profiles.
if ! grep -q '"status":"ok"' "${workdir}/_healthz.json" 2>/dev/null; then
  echo "run_http_smoke: /healthz does not report ok" >&2
  failed=1
fi
if ! grep -q '"profile"' "${workdir}/_requestz.json" 2>/dev/null; then
  echo "run_http_smoke: /requestz has no promoted profiles" >&2
  failed=1
fi
# /tenantz must carry the demo tenants quarry_httpd registers, with their
# quota and breaker blocks (docs/ROBUSTNESS.md §11).
for needle in '"id":"analytics"' '"id":"batch"' '"breaker"'; do
  if ! grep -q "${needle}" "${workdir}/_tenantz.json" 2>/dev/null; then
    echo "run_http_smoke: /tenantz missing ${needle}" >&2
    failed=1
  fi
done

# Clean shutdown: close the control fifo (stdin EOF) and wait.
exec 3>&-
for _ in $(seq 1 100); do
  kill -0 "${httpd_pid}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${httpd_pid}" 2>/dev/null; then
  echo "run_http_smoke: server did not stop on stdin EOF" >&2
  kill "${httpd_pid}" 2>/dev/null || true
  failed=1
fi
wait "${httpd_pid}" 2>/dev/null || true
httpd_pid=""

if [[ "${failed}" -ne 0 ]]; then
  echo "run_http_smoke: FAILED" >&2
  exit 1
fi
echo "run_http_smoke: all six endpoints OK"
