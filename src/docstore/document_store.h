#ifndef QUARRY_DOCSTORE_DOCUMENT_STORE_H_
#define QUARRY_DOCSTORE_DOCUMENT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/json.h"

namespace quarry::docstore {

/// \brief A collection of JSON documents keyed by a string `_id`.
///
/// Mirrors the slice of MongoDB the Quarry paper's Communication & Metadata
/// layer uses: insert/get/upsert/remove plus equality queries over
/// top-level fields. Documents are stored in insertion order.
class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const { return order_.size(); }

  /// Inserts a document; assigns a sequential `_id` when absent. Returns
  /// the id. Fails when a document with the same id already exists.
  Result<std::string> Insert(json::Value document);

  /// Fetches a document by id.
  Result<json::Value> Get(const std::string& id) const;

  /// Inserts or replaces the document with the given id (the `_id` field
  /// is set to `id`).
  Status Upsert(const std::string& id, json::Value document);

  Status Remove(const std::string& id);

  bool Contains(const std::string& id) const { return docs_.count(id) > 0; }

  /// Documents whose top-level `field` equals `value`, in insertion order.
  std::vector<json::Value> Find(const std::string& field,
                                const json::Value& value) const;

  /// All ids in insertion order.
  std::vector<std::string> Ids() const { return order_; }

 private:
  std::string name_;
  std::map<std::string, json::Value> docs_;
  std::vector<std::string> order_;
  int64_t next_id_ = 1;
};

/// \brief A named set of collections with optional directory persistence —
/// the repo's MongoDB stand-in (see DESIGN.md §2).
class DocumentStore {
 public:
  DocumentStore() = default;

  DocumentStore(const DocumentStore&) = delete;
  DocumentStore& operator=(const DocumentStore&) = delete;
  DocumentStore(DocumentStore&&) = default;
  DocumentStore& operator=(DocumentStore&&) = default;

  /// Returns the collection, creating it when absent.
  Collection* GetOrCreate(const std::string& name);

  Result<Collection*> Get(const std::string& name);
  Result<const Collection*> Get(const std::string& name) const;

  Status Drop(const std::string& name);

  std::vector<std::string> CollectionNames() const;

  /// Persists every collection as `<dir>/<collection>.json` (an array of
  /// documents). The directory must exist.
  Status SaveToDirectory(const std::string& dir) const;

  /// Loads every `*.json` file of `dir` as a collection.
  static Result<DocumentStore> LoadFromDirectory(const std::string& dir);

  // -- recovery support (see docs/ROBUSTNESS.md) ----------------------------

  /// Deep copy of every collection. Transactional deployment snapshots the
  /// metadata store alongside the target database.
  DocumentStore Clone() const;

  /// Resets this store to the snapshot's state.
  void RestoreFrom(const DocumentStore& snapshot);

  /// Deterministic content hash over collection names, document order and
  /// serialized documents (rollback tests assert the restored store is
  /// bit-identical to its pre-deploy snapshot).
  uint64_t Fingerprint() const;

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace quarry::docstore

#endif  // QUARRY_DOCSTORE_DOCUMENT_STORE_H_
