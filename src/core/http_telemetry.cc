#include "core/http_telemetry.h"

#include <chrono>

#include "core/quarry.h"
#include "json/json.h"
#include "obs/request_log.h"

namespace quarry::core {
namespace {

json::Value LaneStatus(const AdmissionController& lane) {
  json::Object obj;
  obj.emplace_back("lane", lane.options().lane);
  obj.emplace_back("in_flight", static_cast<int64_t>(lane.in_flight()));
  obj.emplace_back("queue_depth", static_cast<int64_t>(lane.queue_depth()));
  obj.emplace_back("max_in_flight",
                   static_cast<int64_t>(lane.options().max_in_flight));
  obj.emplace_back("max_queue_depth",
                   static_cast<int64_t>(lane.options().max_queue_depth));
  return json::Value(std::move(obj));
}

json::Value WarehouseStatus(const storage::GenerationStore& warehouse) {
  const storage::GenerationStoreStats stats = warehouse.stats();
  json::Object obj;
  obj.emplace_back("serving", warehouse.has_generation());
  obj.emplace_back("current_generation",
                   static_cast<int64_t>(warehouse.current_generation()));
  obj.emplace_back("published", static_cast<int64_t>(stats.published));
  obj.emplace_back("publish_failures",
                   static_cast<int64_t>(stats.publish_failures));
  obj.emplace_back("retired", static_cast<int64_t>(stats.retired));
  obj.emplace_back("retires_deferred",
                   static_cast<int64_t>(stats.retires_deferred));
  obj.emplace_back("live_generations",
                   static_cast<int64_t>(stats.live_generations));
  obj.emplace_back("active_pins", static_cast<int64_t>(stats.active_pins));
  return json::Value(std::move(obj));
}

}  // namespace

Result<std::unique_ptr<obs::HttpExporter>> StartTelemetryServer(
    Quarry* quarry, obs::HttpExporterOptions options) {
  if (quarry == nullptr) {
    return Status::InvalidArgument("quarry instance is null");
  }
  auto exporter = std::make_unique<obs::HttpExporter>(std::move(options));
  const auto started = std::chrono::steady_clock::now();

  // /healthz — is this instance serving? 200 while a warehouse generation
  // is published (readers get answers), 503 before the first DeployServing
  // or after a cold start whose recovery found nothing intact. The body
  // carries the "why": generation, publish failures, recovery report.
  exporter->AddHandler("/healthz", [quarry](const obs::HttpExporter::Request&) {
    const storage::GenerationStore& warehouse = quarry->warehouse();
    const bool serving = warehouse.has_generation();
    json::Object obj;
    obj.emplace_back("status", serving ? "ok" : "unavailable");
    obj.emplace_back("serving", serving);
    obj.emplace_back("serving_generation",
                     static_cast<int64_t>(warehouse.current_generation()));
    obj.emplace_back(
        "publish_failures",
        static_cast<int64_t>(warehouse.stats().publish_failures));
    obj.emplace_back("recovery", quarry->recovery_report().ToString());
    obs::HttpExporter::Response resp;
    resp.code = serving ? 200 : 503;
    if (!serving) resp.retry_after_seconds = 1;
    resp.content_type = "application/json";
    resp.body = json::Write(json::Value(std::move(obj)));
    return resp;
  });

  // /tenantz — per-tenant quota / usage / shed / breaker state
  // (docs/ROBUSTNESS.md §11): one row per registered tenant, straight from
  // TenantRegistry::Snapshot().
  exporter->AddHandler(
      "/tenantz", [quarry](const obs::HttpExporter::Request&) {
        json::Array tenants;
        for (const TenantStatus& t : quarry->tenants().Snapshot()) {
          json::Object quota;
          quota.emplace_back("priority", PriorityName(t.quota.priority));
          quota.emplace_back("rate_per_sec", t.quota.rate_per_sec);
          quota.emplace_back("burst", t.quota.burst);
          quota.emplace_back("max_in_flight",
                             static_cast<int64_t>(t.quota.max_in_flight));

          json::Object shed;
          shed.emplace_back("rate", t.shed_rate_total);
          shed.emplace_back("in_flight", t.shed_in_flight_total);
          shed.emplace_back("breaker", t.shed_breaker_total);

          json::Object breaker;
          breaker.emplace_back("state", BreakerStateName(t.breaker));
          breaker.emplace_back("failure_threshold",
                               static_cast<int64_t>(
                                   t.quota.breaker_failure_threshold));
          breaker.emplace_back("consecutive_failures",
                               static_cast<int64_t>(t.consecutive_failures));
          breaker.emplace_back("open_remaining_millis",
                               t.breaker_open_remaining_millis);
          breaker.emplace_back("trips_total", t.breaker_trips_total);

          json::Object row;
          row.emplace_back("id", t.id);
          row.emplace_back("quota", json::Value(std::move(quota)));
          row.emplace_back("tokens", t.tokens);
          row.emplace_back("in_flight", static_cast<int64_t>(t.in_flight));
          row.emplace_back("requests_total", t.requests_total);
          row.emplace_back("admitted_total", t.admitted_total);
          row.emplace_back("shed_total", json::Value(std::move(shed)));
          row.emplace_back("breaker", json::Value(std::move(breaker)));
          tenants.push_back(json::Value(std::move(row)));
        }
        json::Object obj;
        obj.emplace_back("tenants", json::Value(std::move(tenants)));
        obs::HttpExporter::Response resp;
        resp.content_type = "application/json";
        resp.body = json::Write(json::Value(std::move(obj)));
        return resp;
      });

  // /statusz — one page of process vitals: build configuration, uptime,
  // admission-lane load, warehouse stats, request-log totals.
  exporter->AddHandler(
      "/statusz", [quarry, started](const obs::HttpExporter::Request&) {
        json::Object build;
        build.emplace_back("compiler", __VERSION__);
        build.emplace_back("cpp_standard", static_cast<int64_t>(__cplusplus));
#ifdef NDEBUG
        build.emplace_back("assertions", false);
#else
        build.emplace_back("assertions", true);
#endif
#ifdef QUARRY_DISABLE_TRACING
        build.emplace_back("tracing_compiled_out", true);
#else
        build.emplace_back("tracing_compiled_out", false);
#endif

        json::Object lanes;
        lanes.emplace_back("design", LaneStatus(quarry->admission()));
        lanes.emplace_back("query", LaneStatus(quarry->query_admission()));

        const obs::RequestLog& log = obs::RequestLog::Instance();
        json::Object requests;
        requests.emplace_back("total_recorded",
                              static_cast<int64_t>(log.total_recorded()));
        requests.emplace_back(
            "slow_threshold_micros",
            static_cast<int64_t>(log.slow_threshold_micros()));

        json::Object obj;
        obj.emplace_back("build", json::Value(std::move(build)));
        obj.emplace_back(
            "uptime_seconds",
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count());
        obj.emplace_back("admission", json::Value(std::move(lanes)));
        obj.emplace_back("warehouse", WarehouseStatus(quarry->warehouse()));
        obj.emplace_back("requests", json::Value(std::move(requests)));
        obs::HttpExporter::Response resp;
        resp.content_type = "application/json";
        resp.body = json::Write(json::Value(std::move(obj)));
        return resp;
      });

  std::string error;
  if (!exporter->Start(&error)) {
    return Status::ExecutionError("telemetry HTTP server failed to start: " +
                                  error);
  }
  return exporter;
}

}  // namespace quarry::core
