#include "etl/exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "etl/exec/kernel_util.h"
#include "etl/exec/scheduler.h"
#include "etl/expr.h"
#include "etl/schema_inference.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quarry::etl {

using storage::DataType;
using storage::Row;
using storage::Value;
using kernel::AggState;
using kernel::ColumnPositions;
using kernel::ExtractKey;
using kernel::Param;
using kernel::RowKeyEq;
using kernel::RowKeyHash;
using kernel::SplitNonEmpty;

namespace {

// Unlabelled executor totals are cached; per-operator instances go through
// the registry once per op type (the map behind it is tiny).
obs::Counter& RowsInCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_rows_in_total", "Rows entering ETL operators");
  return c;
}

obs::Counter& RowsOutCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_rows_out_total", "Rows produced by ETL operators");
  return c;
}

obs::Counter& RetryCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_node_retries_total",
      "Extra attempts beyond the first across all ETL nodes");
  return c;
}

obs::Counter& RunCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_runs_total", "ETL flow executions started");
  return c;
}

obs::Counter& RunFailureCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_run_failures_total",
      "ETL flow executions that returned an error");
  return c;
}

obs::Counter& ResumeCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_resumes_total",
      "ETL flow executions resumed from a checkpoint");
  return c;
}

/// Runs aborted by their request lifecycle rather than an operator fault,
/// by reason. All three instances register eagerly so dashboards see zeros
/// before the first abort.
obs::Counter& LifecycleAbortCounter(const char* reason) {
  static obs::Counter& cancelled = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_lifecycle_aborts_total",
      "ETL runs aborted by cancellation, deadline expiry or budget "
      "exhaustion",
      {{"reason", "cancelled"}});
  static obs::Counter& deadline = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_lifecycle_aborts_total", "", {{"reason", "deadline"}});
  static obs::Counter& budget = obs::MetricsRegistry::Instance().counter(
      "quarry_etl_lifecycle_aborts_total", "", {{"reason", "budget"}});
  if (std::string_view(reason) == "cancelled") return cancelled;
  if (std::string_view(reason) == "deadline") return deadline;
  return budget;
}

void CountLifecycleAbort(const Status& status) {
  if (status.IsCancelled()) {
    LifecycleAbortCounter("cancelled").Increment();
  } else if (status.IsDeadlineExceeded()) {
    LifecycleAbortCounter("deadline").Increment();
  } else if (status.IsResourceExhausted()) {
    LifecycleAbortCounter("budget").Increment();
  }
}

/// Cooperative cancellation inside row-loop operators: Tick() polls the
/// context once per Executor::kCancelBatchRows rows. With no context the
/// whole thing folds to an integer increment that the compiler removes.
class BatchChecker {
 public:
  BatchChecker(const ExecContext* ctx, const std::string& node_id)
      : ctx_(ctx), node_id_(node_id) {}

  Status Tick() {
    if (ctx_ == nullptr || (++count_ & (Executor::kCancelBatchRows - 1)) != 0) {
      return Status::OK();
    }
    return ctx_->Check("node '" + node_id_ + "'");
  }

 private:
  const ExecContext* ctx_;
  const std::string& node_id_;
  int64_t count_ = 0;
};

/// Cheap lower-bound estimate of a dataset's in-memory footprint, used for
/// the intermediate-bytes budget. Deliberately ignores string payloads so
/// the charge costs O(1) per node, not O(rows).
int64_t ApproxDatasetBytes(const Dataset& data) {
  return ApproxRowsBytes(data.row_count(), data.columns.size());
}

void CountNodeDone(const Node& node, int64_t rows_out, double micros) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Instance();
  obs::Labels op_label{{"op", OpTypeToString(node.type)}};
  reg.counter("quarry_etl_nodes_executed_total",
              "ETL operator executions by operator type", op_label)
      .Increment();
  reg.histogram("quarry_etl_node_micros",
                "Wall time per ETL operator execution in microseconds",
                /*bounds=*/{}, op_label)
      .Observe(micros);
  RowsOutCounter().Increment(rows_out);
}

Result<Dataset> RunAggregation(const Node& node, const Dataset& input,
                               const std::vector<Row>& input_rows,
                               const ExecContext* ctx) {
  BatchChecker batch(ctx, node.id);
  std::vector<std::string> group = SplitNonEmpty(Param(node, "group"));
  QUARRY_ASSIGN_OR_RETURN(auto specs, ParseAggSpecs(Param(node, "aggs")));
  QUARRY_ASSIGN_OR_RETURN(auto group_pos,
                          ColumnPositions(input.columns, group, node.id));
  std::vector<int> agg_pos(specs.size(), -1);
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].input == "*") continue;
    QUARRY_ASSIGN_OR_RETURN(
        auto pos, ColumnPositions(input.columns, {specs[i].input}, node.id));
    agg_pos[i] = static_cast<int>(pos[0]);
  }

  std::unordered_map<Row, std::vector<AggState>, RowKeyHash, RowKeyEq> groups;
  std::vector<Row> group_order;  // deterministic output order
  for (const Row& row : input_rows) {
    QUARRY_RETURN_NOT_OK(batch.Tick());
    Row key = ExtractKey(row, group_pos);
    auto [it, inserted] =
        groups.try_emplace(key, std::vector<AggState>(specs.size()));
    if (inserted) group_order.push_back(key);
    std::vector<AggState>& states = it->second;
    for (size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].input == "*") {
        kernel::AccumulateAggStar(&states[i]);
        continue;
      }
      kernel::AccumulateAgg(&states[i],
                            row[static_cast<size_t>(agg_pos[i])]);
    }
  }

  Dataset out;
  out.columns = group;
  for (const AggSpec& s : specs) out.columns.push_back(s.output);
  out.rows.reserve(group_order.size());
  for (const Row& key : group_order) {
    const std::vector<AggState>& states = groups.at(key);
    Row row = key;
    for (size_t i = 0; i < specs.size(); ++i) {
      row.push_back(kernel::FinalizeAgg(specs[i].function, states[i]));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<Dataset> RunJoin(const Node& node, const Dataset& left,
                        const std::vector<Row>& left_rows,
                        const Dataset& right,
                        const std::vector<Row>& right_rows,
                        const ExecContext* ctx) {
  BatchChecker batch(ctx, node.id);
  std::vector<std::string> left_keys = SplitNonEmpty(Param(node, "left"));
  std::vector<std::string> right_keys = SplitNonEmpty(Param(node, "right"));
  if (left_keys.empty() || left_keys.size() != right_keys.size()) {
    return Status::ExecutionError("join '" + node.id +
                                  "' has mismatched key lists");
  }
  std::string join_type = Param(node, "type");
  if (join_type.empty()) join_type = "inner";
  if (join_type != "inner" && join_type != "left") {
    return Status::ExecutionError("join '" + node.id +
                                  "': unsupported type '" + join_type + "'");
  }
  QUARRY_ASSIGN_OR_RETURN(auto left_pos,
                          ColumnPositions(left.columns, left_keys, node.id));
  QUARRY_ASSIGN_OR_RETURN(
      auto right_pos, ColumnPositions(right.columns, right_keys, node.id));

  // Build on the right input.
  std::unordered_map<Row, std::vector<size_t>, RowKeyHash, RowKeyEq> build;
  build.reserve(right_rows.size());
  for (size_t i = 0; i < right_rows.size(); ++i) {
    Row key = ExtractKey(right_rows[i], right_pos);
    bool has_null = std::any_of(key.begin(), key.end(),
                                [](const Value& v) { return v.is_null(); });
    if (has_null) continue;  // SQL: NULL keys never match.
    build[std::move(key)].push_back(i);
  }

  Dataset out;
  out.columns = left.columns;
  out.columns.insert(out.columns.end(), right.columns.begin(),
                     right.columns.end());
  for (const Row& lrow : left_rows) {
    QUARRY_RETURN_NOT_OK(batch.Tick());
    Row key = ExtractKey(lrow, left_pos);
    bool has_null = std::any_of(key.begin(), key.end(),
                                [](const Value& v) { return v.is_null(); });
    auto it = has_null ? build.end() : build.find(key);
    if (it == build.end()) {
      if (join_type == "left") {
        Row row = lrow;
        row.resize(left.columns.size() + right.columns.size(), Value::Null());
        out.rows.push_back(std::move(row));
      }
      continue;
    }
    for (size_t ridx : it->second) {
      Row row = lrow;
      const Row& rrow = right_rows[ridx];
      row.insert(row.end(), rrow.begin(), rrow.end());
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

Result<DataType> InferColumnType(const std::vector<Row>& rows,
                                 size_t column) {
  for (const Row& row : rows) {
    if (!row[column].is_null()) return row[column].type();
  }
  return DataType::kString;  // All-NULL column: arbitrary but stable.
}

/// Whether this node dispatches to the chunk kernels. Beyond the per-type
/// check, zero-column inputs that still carry rows (e.g. a projection onto
/// an empty column list) stay on the row path — a chunk has no way to
/// represent rows without segments. RunNode and ExecuteNode must agree on
/// this (the budget is charged by whichever side runs), so both call here.
bool UsesVectorizedKernel(const ExecOptions& options, const Node& node,
                          const std::vector<const Dataset*>& inputs) {
  if (!options.vectorized || !HasVectorizedKernel(node.type)) return false;
  for (const Dataset* d : inputs) {
    if (d->columns.empty() && d->row_count() > 0) return false;
  }
  return true;
}

}  // namespace

bool HasVectorizedKernel(OpType type) {
  switch (type) {
    case OpType::kDatastore:
    case OpType::kExtraction:
    case OpType::kSelection:
    case OpType::kProjection:
    case OpType::kFunction:
    case OpType::kJoin:
    case OpType::kAggregation:
    case OpType::kLoader:
      return true;
    case OpType::kSort:
    case OpType::kUnion:
    case OpType::kSurrogateKey:
      return false;
  }
  return false;
}

const std::vector<Row>& DatasetRows(const Dataset& data,
                                    std::vector<Row>* scratch) {
  if (!data.columnar) return data.rows;
  *scratch = data.MaterializeRows();
  return *scratch;
}

const std::vector<storage::Chunk>& DatasetChunks(
    const Dataset& data, int64_t chunk_size,
    std::vector<storage::Chunk>* scratch) {
  if (data.columnar) return data.chunks;
  *scratch = storage::ChunkRows(data.rows, data.columns.size(), chunk_size);
  return *scratch;
}

int64_t ApproxRowsBytes(int64_t rows, size_t columns) {
  return rows * static_cast<int64_t>(sizeof(storage::Row) +
                                     columns * sizeof(storage::Value));
}

double RetryBackoffMillis(const RetryPolicy& policy, int failed_attempts,
                          Prng* prng) {
  double exp = policy.base_backoff_millis *
               std::pow(2.0, std::max(0, failed_attempts - 1));
  exp = std::min(exp, policy.max_backoff_millis);
  // Always consume one draw so the jitter sequence stays aligned with the
  // retry sequence regardless of the base backoff.
  double u = prng != nullptr ? prng->UniformDouble() : 0.0;
  return exp * ((1.0 - policy.jitter_fraction) + policy.jitter_fraction * u);
}

double BoundedBackoffMillis(const RetryPolicy& policy, int failed_attempts,
                            Prng* prng, double backoff_spent_millis,
                            const ExecContext* ctx) {
  double sleep_ms = RetryBackoffMillis(policy, failed_attempts, prng);
  if (policy.total_backoff_budget_millis >= 0) {
    double budget_left =
        policy.total_backoff_budget_millis - backoff_spent_millis;
    sleep_ms = std::min(sleep_ms, std::max(0.0, budget_left));
  }
  if (ctx != nullptr && !ctx->deadline().unbounded()) {
    sleep_ms = std::min(sleep_ms, ctx->deadline().remaining_millis());
  }
  return sleep_ms;
}

Result<Dataset> Executor::RunNode(const Node& node,
                                  const std::vector<const Dataset*>& inputs,
                                  LoaderEffect* loader, const ExecContext* ctx,
                                  const ExecOptions& options) {
  // The per-operator fault site fires before kernel dispatch so fault
  // matrices hit both executor modes at the same place.
  QUARRY_FAULT_POINT(std::string("etl.exec.") + OpTypeToString(node.type));
  if (options.vectorized) {
    if (UsesVectorizedKernel(options, node, inputs)) {
      return RunNodeVectorized(node, inputs, loader, ctx, options);
    }
    obs::MetricsRegistry::Instance()
        .counter("quarry_etl_chunk_fallback_total",
                 "Operators that ran their row kernel in vectorized mode "
                 "(no chunk kernel for the op type)",
                 {{"op", OpTypeToString(node.type)}})
        .Increment();
  }
  BatchChecker batch(ctx, node.id);
  auto input = [&](size_t i) -> const Dataset& { return *inputs[i]; };
  switch (node.type) {
    case OpType::kDatastore: {
      QUARRY_ASSIGN_OR_RETURN(const storage::Table* table,
                              source_->GetTable(Param(node, "table")));
      Dataset out;
      for (const storage::Column& c : table->schema().columns()) {
        out.columns.push_back(c.name);
      }
      out.rows = table->rows();
      return out;
    }
    case OpType::kExtraction:
      return input(0);
    case OpType::kSelection: {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr pred,
                              ParseExpr(Param(node, "predicate")));
      Dataset out;
      out.columns = input(0).columns;
      std::vector<Row> scratch;
      for (const Row& row : DatasetRows(input(0), &scratch)) {
        QUARRY_RETURN_NOT_OK(batch.Tick());
        RowView view{&out.columns, &row};
        QUARRY_ASSIGN_OR_RETURN(Value v, pred->Eval(view));
        if (!v.is_null() && v.is_bool() && v.as_bool()) {
          out.rows.push_back(row);
        }
      }
      return out;
    }
    case OpType::kProjection: {
      std::vector<std::string> keep = SplitNonEmpty(Param(node, "columns"));
      QUARRY_ASSIGN_OR_RETURN(auto positions,
                              ColumnPositions(input(0).columns, keep,
                                              node.id));
      Dataset out;
      out.columns = keep;
      std::vector<Row> scratch;
      const std::vector<Row>& in_rows = DatasetRows(input(0), &scratch);
      out.rows.reserve(in_rows.size());
      for (const Row& row : in_rows) {
        QUARRY_RETURN_NOT_OK(batch.Tick());
        out.rows.push_back(ExtractKey(row, positions));
      }
      return out;
    }
    case OpType::kJoin: {
      if (inputs.size() != 2) {
        return Status::ExecutionError("join '" + node.id +
                                      "' needs exactly 2 inputs");
      }
      std::vector<Row> left_scratch, right_scratch;
      return RunJoin(node, input(0), DatasetRows(input(0), &left_scratch),
                     input(1), DatasetRows(input(1), &right_scratch), ctx);
    }
    case OpType::kAggregation: {
      std::vector<Row> scratch;
      return RunAggregation(node, input(0), DatasetRows(input(0), &scratch),
                            ctx);
    }
    case OpType::kFunction: {
      QUARRY_ASSIGN_OR_RETURN(Expr::Ptr expr, ParseExpr(Param(node, "expr")));
      std::string column = Param(node, "column");
      if (column.empty()) {
        return Status::ExecutionError("function '" + node.id +
                                      "' lacks a column param");
      }
      Dataset out;
      out.columns = input(0).columns;
      out.columns.push_back(column);
      std::vector<Row> scratch;
      const std::vector<Row>& in_rows = DatasetRows(input(0), &scratch);
      out.rows.reserve(in_rows.size());
      for (const Row& row : in_rows) {
        QUARRY_RETURN_NOT_OK(batch.Tick());
        RowView view{&input(0).columns, &row};
        QUARRY_ASSIGN_OR_RETURN(Value v, expr->Eval(view));
        Row extended = row;
        extended.push_back(std::move(v));
        out.rows.push_back(std::move(extended));
      }
      return out;
    }
    case OpType::kSort: {
      std::vector<std::string> by = SplitNonEmpty(Param(node, "by"));
      QUARRY_ASSIGN_OR_RETURN(auto positions,
                              ColumnPositions(input(0).columns, by, node.id));
      bool desc = Param(node, "desc") == "true";
      Dataset out;
      out.columns = input(0).columns;
      out.rows = input(0).MaterializeRows();
      std::stable_sort(out.rows.begin(), out.rows.end(),
                       [&](const Row& a, const Row& b) {
                         for (size_t p : positions) {
                           int cmp = a[p].Compare(b[p]);
                           if (cmp != 0) return desc ? cmp > 0 : cmp < 0;
                         }
                         return false;
                       });
      return out;
    }
    case OpType::kUnion: {
      if (inputs.size() < 2) {
        return Status::ExecutionError("union '" + node.id +
                                      "' needs >= 2 inputs");
      }
      Dataset out;
      out.columns = input(0).columns;
      for (size_t i = 0; i < inputs.size(); ++i) {
        if (input(i).columns != out.columns) {
          return Status::ExecutionError("union '" + node.id +
                                        "' inputs have different schemas");
        }
        std::vector<Row> scratch;
        const std::vector<Row>& in_rows = DatasetRows(input(i), &scratch);
        out.rows.insert(out.rows.end(), in_rows.begin(), in_rows.end());
      }
      return out;
    }
    case OpType::kSurrogateKey: {
      std::vector<std::string> keys = SplitNonEmpty(Param(node, "keys"));
      std::string column = Param(node, "column");
      if (column.empty() || keys.empty()) {
        return Status::ExecutionError("surrogate key '" + node.id +
                                      "' needs column and keys params");
      }
      QUARRY_ASSIGN_OR_RETURN(
          auto positions, ColumnPositions(input(0).columns, keys, node.id));
      std::unordered_map<Row, int64_t, RowKeyHash, RowKeyEq> ids;
      Dataset out;
      out.columns = input(0).columns;
      out.columns.push_back(column);
      std::vector<Row> scratch;
      const std::vector<Row>& in_rows = DatasetRows(input(0), &scratch);
      out.rows.reserve(in_rows.size());
      for (const Row& row : in_rows) {
        QUARRY_RETURN_NOT_OK(batch.Tick());
        Row key = ExtractKey(row, positions);
        auto [it, inserted] =
            ids.try_emplace(std::move(key),
                            static_cast<int64_t>(ids.size()) + 1);
        Row extended = row;
        extended.push_back(Value::Int(it->second));
        out.rows.push_back(std::move(extended));
      }
      return out;
    }
    case OpType::kLoader: {
      const Dataset& data = input(0);
      std::vector<Row> scratch;
      const std::vector<Row>& data_rows = DatasetRows(data, &scratch);
      std::string table_name = Param(node, "table");
      if (table_name.empty()) {
        return Status::ExecutionError("loader '" + node.id +
                                      "' lacks a table param");
      }
      std::vector<std::string> keys = SplitNonEmpty(Param(node, "keys"));
      if (!target_->HasTable(table_name) && data_rows.empty()) {
        // No rows and no pre-created table: defer creation (column types
        // cannot be inferred from an empty dataset; guessing would poison
        // later loads into the same table). Deployed designs always
        // pre-create their tables via DDL, so this only affects ad-hoc
        // runs.
        loader->table = table_name;
        loader->fired = true;  // rows stays 0
        Dataset out;
        out.columns = data.columns;
        return out;
      }
      if (!target_->HasTable(table_name)) {
        storage::TableSchema schema(table_name);
        for (size_t c = 0; c < data.columns.size(); ++c) {
          QUARRY_ASSIGN_OR_RETURN(DataType type,
                                  InferColumnType(data_rows, c));
          QUARRY_RETURN_NOT_OK(
              schema.AddColumn({data.columns[c], type, true}));
        }
        if (!keys.empty()) QUARRY_RETURN_NOT_OK(schema.SetPrimaryKey(keys));
        QUARRY_RETURN_NOT_OK(target_->CreateTable(std::move(schema)).status());
      }
      QUARRY_ASSIGN_OR_RETURN(storage::Table * table,
                              target_->GetTable(table_name));
      // Dataset columns the target lacks are added to it (ALTER TABLE ADD
      // COLUMN semantics) so integrated flows whose loaders were merged
      // onto one fact table can contribute their measure columns even when
      // the table was auto-created by an earlier loader.
      for (size_t c = 0; c < data.columns.size(); ++c) {
        if (table->schema().ColumnIndex(data.columns[c]).has_value()) {
          continue;
        }
        QUARRY_ASSIGN_OR_RETURN(DataType type, InferColumnType(data_rows, c));
        QUARRY_RETURN_NOT_OK(
            table->AddColumn({data.columns[c], type, true}));
      }
      // Bind dataset columns to table columns by name. A target column the
      // dataset does not provide loads as NULL (partial loads converge via
      // the merge pass below).
      std::vector<int> positions;  // per target column; -1 = NULL
      for (const storage::Column& c : table->schema().columns()) {
        auto it = std::find(data.columns.begin(), data.columns.end(), c.name);
        positions.push_back(it == data.columns.end()
                                ? -1
                                : static_cast<int>(it - data.columns.begin()));
      }
      std::vector<size_t> key_positions;
      if (!keys.empty()) {
        QUARRY_ASSIGN_OR_RETURN(auto kp,
                                ColumnPositions(data.columns, keys, node.id));
        key_positions = kp;
      }
      int64_t written = 0;
      // key -> row index in the target table (merge semantics: a re-loaded
      // key fills the NULL cells of the existing row instead of inserting).
      std::unordered_map<Row, size_t, RowKeyHash, RowKeyEq> existing_rows;
      if (!key_positions.empty()) {
        std::vector<size_t> tk;
        for (const std::string& k : keys) {
          tk.push_back(*table->schema().ColumnIndex(k));
        }
        for (size_t r = 0; r < table->num_rows(); ++r) {
          existing_rows.emplace(ExtractKey(table->rows()[r], tk), r);
        }
      }
      for (const Row& row : data_rows) {
        QUARRY_RETURN_NOT_OK(batch.Tick());
        if (!key_positions.empty()) {
          Row key = ExtractKey(row, key_positions);
          auto it = existing_rows.find(key);
          if (it != existing_rows.end()) {
            // Fill NULL cells the dataset can provide.
            size_t target_row = it->second;
            for (size_t c = 0; c < positions.size(); ++c) {
              if (positions[c] < 0) continue;
              const Value& incoming = row[static_cast<size_t>(positions[c])];
              if (incoming.is_null()) continue;
              if (!table->rows()[target_row][c].is_null()) continue;
              QUARRY_RETURN_NOT_OK(table->SetCell(target_row, c, incoming));
            }
            continue;
          }
          Row out;
          out.reserve(positions.size());
          for (int p : positions) {
            out.push_back(p < 0 ? Value::Null()
                                : row[static_cast<size_t>(p)]);
          }
          QUARRY_RETURN_NOT_OK(table->Insert(std::move(out)));
          existing_rows.emplace(std::move(key), table->num_rows() - 1);
          ++written;
          continue;
        }
        Row out;
        out.reserve(positions.size());
        for (int p : positions) {
          out.push_back(p < 0 ? Value::Null() : row[static_cast<size_t>(p)]);
        }
        QUARRY_RETURN_NOT_OK(table->Insert(std::move(out)));
        ++written;
      }
      // Mid-write fault site: fires after the rows above landed in the
      // target, leaving exactly the half-written state the loader snapshot
      // in ExecuteNode must roll back before a retry.
      QUARRY_FAULT_POINT("etl.exec.Loader.write");
      loader->table = table_name;
      loader->rows = written;
      loader->fired = true;
      Dataset out;
      out.columns = data.columns;
      return out;  // Loaders are sinks; emit an empty dataset.
    }
  }
  return Status::Internal("unknown operator type");
}

Executor::NodeAttempt Executor::ExecuteNode(
    const Node& node, const std::vector<const Dataset*>& inputs,
    int64_t rows_in, const RetryPolicy& retry, const ExecContext* ctx,
    bool protect_loader_always, Prng* backoff_prng, BackoffBudget* backoff,
    const ExecOptions& options) {
  const int max_attempts = std::max(1, retry.max_attempts);
  // Vectorized kernels charge the budgets chunk by chunk inside RunNode
  // (so a budget can trip mid-node); charging again here would double-bill.
  // The totals match exactly because ApproxRowsBytes is linear in rows.
  const bool kernel_charges = UsesVectorizedKernel(options, node, inputs);
  // Loader attempts mutate the target; snapshot the table so a failed
  // attempt rolls back before the retry (or a later Resume). Skipped on
  // the plain fail-fast path, which stays zero-overhead. A context makes
  // loaders protected too: a cancellation mid-write must never leave a
  // half-written table behind.
  const bool protect_loader =
      node.type == OpType::kLoader &&
      (max_attempts > 1 || protect_loader_always || ctx != nullptr ||
       fault::Enabled());
  const std::string loader_table =
      protect_loader ? Param(node, "table") : std::string();

  NodeAttempt out;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    out.attempts = attempt;
    // Cancellation point: every attempt of every node starts by checking
    // the request is still live. A failed check behaves exactly like an
    // operator fault (checkpoint populated, loaders rolled back), so
    // Resume after a timeout works like Resume after a fault.
    Status pre_check = CheckContext(ctx, "node '" + node.id + "'");
    if (!pre_check.ok()) {
      out.result = pre_check;
      break;
    }
    std::unique_ptr<storage::Table> table_snapshot;
    bool loader_existed = false;
    if (protect_loader && target_->HasTable(loader_table)) {
      table_snapshot = (*target_->GetTable(loader_table))->Clone();
      loader_existed = true;
    }
    LoaderEffect effect;
    out.result = RunNode(node, inputs, &effect, ctx, options);
    if (out.result.ok() && ctx != nullptr && !kernel_charges) {
      // Budget charges ride inside the attempt so an over-budget node is
      // rolled back (loaders included) like any other failed attempt.
      // Loaders emit an empty dataset (they are sinks), so they charge
      // their input instead — the rows materialized into the target.
      int64_t charged_rows =
          node.type == OpType::kLoader ? rows_in : out.result->row_count();
      Status charge =
          ctx->ChargeRows(charged_rows, "node '" + node.id + "'");
      if (charge.ok()) {
        charge = ctx->ChargeBytes(ApproxDatasetBytes(*out.result),
                                  "node '" + node.id + "'");
      }
      if (!charge.ok()) out.result = charge;
    }
    if (out.result.ok()) {
      out.loader = effect;
      if (effect.fired) {
        obs::MetricsRegistry::Instance()
            .counter("quarry_etl_rows_loaded_total",
                     "Rows written into target tables by loader nodes",
                     {{"table", effect.table}})
            .Increment(effect.rows);
      }
      break;
    }
    if (protect_loader && !loader_table.empty()) {
      if (table_snapshot != nullptr) {
        target_->RestoreTable(std::move(table_snapshot));
      } else if (!loader_existed) {
        target_->EraseTable(loader_table);  // Created by this attempt.
      }
    }
    // A dead request is never retried: another attempt cannot revive a
    // cancelled token, an expired deadline or a spent budget.
    if (IsLifecycleError(out.result.status())) break;
    if (attempt < max_attempts) {
      double sleep_ms = BoundedBackoffMillis(retry, attempt, backoff_prng,
                                             backoff->spent_millis(), ctx);
      if (sleep_ms > 0) {
        backoff->Add(sleep_ms);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
      }
    }
  }
  return out;
}

Result<ExecutionReport> Executor::Run(const Flow& flow) {
  return RunInternal(flow, ExecOptions{}, RetryPolicy{}, nullptr,
                     /*resume=*/false, nullptr);
}

Result<ExecutionReport> Executor::Run(const Flow& flow,
                                      const RetryPolicy& retry,
                                      Checkpoint* checkpoint,
                                      const ExecContext* ctx) {
  return RunInternal(flow, ExecOptions{}, retry, checkpoint, /*resume=*/false,
                     ctx);
}

Result<ExecutionReport> Executor::Run(const Flow& flow,
                                      const ExecOptions& options,
                                      const RetryPolicy& retry,
                                      Checkpoint* checkpoint,
                                      const ExecContext* ctx) {
  return RunInternal(flow, options, retry, checkpoint, /*resume=*/false, ctx);
}

Result<ExecutionReport> Executor::Resume(const Flow& flow,
                                         Checkpoint* checkpoint,
                                         const RetryPolicy& retry,
                                         const ExecContext* ctx) {
  return RunInternal(flow, ExecOptions{}, retry, checkpoint, /*resume=*/true,
                     ctx);
}

Result<ExecutionReport> Executor::Resume(const Flow& flow,
                                         const ExecOptions& options,
                                         Checkpoint* checkpoint,
                                         const RetryPolicy& retry,
                                         const ExecContext* ctx) {
  return RunInternal(flow, options, retry, checkpoint, /*resume=*/true, ctx);
}

Result<ExecutionReport> Executor::RunInternal(const Flow& flow,
                                              const ExecOptions& options,
                                              const RetryPolicy& retry,
                                              Checkpoint* checkpoint,
                                              bool resume,
                                              const ExecContext* ctx) {
  if (ctx != nullptr && ctx->budget().max_flow_nodes > 0 &&
      static_cast<int64_t>(flow.num_nodes()) >
          ctx->budget().max_flow_nodes) {
    // Refused before any work: a requirement that exploded into a huge flow
    // (the SODA scenario) is rejected structurally, not timed out.
    return Status::ResourceExhausted(
        "flow '" + flow.name() + "' has " +
        std::to_string(flow.num_nodes()) + " nodes, budget allows " +
        std::to_string(ctx->budget().max_flow_nodes));
  }
  QUARRY_ASSIGN_OR_RETURN(auto order, flow.TopologicalOrder());
  QUARRY_NAMED_SPAN(run_span, "etl.run");
  QUARRY_SPAN_ATTR(run_span, "flow", flow.name());
  QUARRY_SPAN_ATTR(run_span, "nodes",
                   static_cast<int64_t>(flow.nodes().size()));
  if (RequestId(ctx) != 0) {
    QUARRY_SPAN_ATTR(run_span, "request_id",
                     static_cast<int64_t>(RequestId(ctx)));
  }
  RunCounter().Increment();
  // Touch the failure/retry/resume families so they expose as zeros from
  // the first run instead of appearing only once something goes wrong.
  RunFailureCounter();
  RetryCounter();
  ResumeCounter();
  LifecycleAbortCounter("cancelled");  // Registers all three reasons.
  if (resume) ResumeCounter().Increment();
  ExecutionReport report;
  Timer total;
  Prng backoff_prng(retry.jitter_seed);
  BackoffBudget backoff;  // Against retry.total_backoff_budget_millis.

  std::set<std::string> completed;
  std::map<std::string, Dataset> done;
  bool resumed_any = false;
  if (resume) {
    if (checkpoint == nullptr || !checkpoint->valid) {
      return Status::InvalidArgument("Resume requires a valid checkpoint");
    }
    if (checkpoint->flow_name != flow.name()) {
      return Status::InvalidArgument("checkpoint belongs to flow '" +
                                     checkpoint->flow_name + "', not '" +
                                     flow.name() + "'");
    }
    completed.insert(checkpoint->completed.begin(),
                     checkpoint->completed.end());
    done = std::move(checkpoint->datasets);
    checkpoint->datasets.clear();
    report.loaded = checkpoint->loaded;
    resumed_any = !completed.empty();
  } else if (checkpoint != nullptr) {
    *checkpoint = Checkpoint{};
    checkpoint->flow_name = flow.name();
  }
  if (checkpoint != nullptr) {
    checkpoint->failed_node.clear();
    checkpoint->valid = true;
  }

  // Reference counts so each materialized dataset is freed as soon as its
  // last consumer has run — integrated flows would otherwise hold every
  // intermediate at once and lose their execution-time advantage to memory
  // pressure. On resume, consumers that already ran don't count.
  std::map<std::string, size_t> remaining_consumers;
  for (const auto& [id, node] : flow.nodes()) {
    size_t pending = 0;
    for (const std::string& succ : flow.Successors(id)) {
      if (completed.count(succ) == 0) ++pending;
    }
    remaining_consumers[id] = pending;
  }

  // Parallel runs go through the wavefront scheduler once the shared
  // prologue above (validation, counters, checkpoint/resume state) has run.
  // When source and target alias, a loader write would race the datastore
  // reads of concurrent siblings, so such runs silently degrade to serial.
  if (options.max_workers > 1 && source_ != target_) {
    Scheduler scheduler(this, options);
    return scheduler.Run(flow, order, retry, checkpoint, ctx,
                         std::move(completed), std::move(done),
                         std::move(remaining_consumers), std::move(report),
                         resumed_any, total);
  }

  for (const std::string& id : order) {
    if (completed.count(id) > 0) continue;  // Resumed from checkpoint.
    const Node& node = *flow.GetNode(id).value();
    QUARRY_NAMED_SPAN(node_span,
                      std::string("etl.node.") + OpTypeToString(node.type));
    QUARRY_SPAN_ATTR(node_span, "node_id", id);
    Timer node_timer;
    std::vector<const Dataset*> inputs;
    int64_t rows_in = 0;
    for (const std::string& pred : flow.Predecessors(id)) {
      const Dataset& dataset = done.at(pred);
      inputs.push_back(&dataset);
      rows_in += dataset.row_count();
    }
    RowsInCounter().Increment(rows_in);

    NodeAttempt outcome =
        ExecuteNode(node, inputs, rows_in, retry, ctx,
                    /*protect_loader_always=*/checkpoint != nullptr,
                    &backoff_prng, &backoff, options);
    Result<Dataset>& result = outcome.result;
    const int attempts_used = outcome.attempts;
    if (attempts_used > 1) RetryCounter().Increment(attempts_used - 1);
    if (!result.ok()) {
      CountLifecycleAbort(result.status());
      if (checkpoint != nullptr) {
        checkpoint->failed_node = id;
        // The run is abandoned, so the live intermediates move into the
        // checkpoint wholesale — the success path never copies a dataset.
        checkpoint->datasets = std::move(done);
      }
      RunFailureCounter().Increment();
      QUARRY_SPAN_ATTR(node_span, "error", result.status().message());
      std::string context = "node '" + id + "' (" +
                            OpTypeToString(node.type) + ")";
      if (attempts_used > 1) {
        context += " after " + std::to_string(attempts_used) + " attempts";
      }
      return result.status().WithContext(context);
    }
    if (outcome.loader.fired) {
      report.loaded[outcome.loader.table] += outcome.loader.rows;
    }

    NodeStats stats;
    stats.node_id = id;
    stats.type = node.type;
    stats.rows_in = rows_in;
    stats.rows_out = result->row_count();
    stats.millis = node_timer.ElapsedMillis();
    stats.attempts = attempts_used;
    CountNodeDone(node, stats.rows_out, node_timer.ElapsedMicros());
    QUARRY_SPAN_ATTR(node_span, "rows_in", rows_in);
    QUARRY_SPAN_ATTR(node_span, "rows_out", stats.rows_out);
    QUARRY_SPAN_ATTR(node_span, "attempts", attempts_used);
    report.rows_processed += rows_in;
    report.attempts += attempts_used;
    if (attempts_used > 1) report.retried_nodes.push_back(id);
    report.nodes.push_back(stats);
    completed.insert(id);
    for (const std::string& pred : flow.Predecessors(id)) {
      if (--remaining_consumers[pred] == 0) done.erase(pred);
    }
    if (remaining_consumers[id] > 0) {
      done.emplace(id, std::move(*result));
    }
    if (checkpoint != nullptr) {
      checkpoint->completed.push_back(id);
      checkpoint->loaded = report.loaded;
    }
  }
  report.total_millis = total.ElapsedMillis();
  report.recovered = resumed_any || !report.retried_nodes.empty();
  return report;
}

namespace {

obs::ProfileNode BuildProfileNode(const Flow& flow,
                                  const ExecutionReport& report,
                                  const std::string& id) {
  obs::ProfileNode node;
  node.id = id;
  auto flow_node = flow.GetNode(id);
  node.op = flow_node.ok() ? OpTypeToString(flow_node.value()->type) : "?";
  node.attempts = 0;  // Present in the plan, never executed this run.
  for (const NodeStats& s : report.nodes) {
    if (s.node_id == id) {
      node.rows_in = s.rows_in;
      node.rows_out = s.rows_out;
      node.wall_micros = s.millis * 1000.0;
      node.attempts = s.attempts;
      break;
    }
  }
  size_t fan_in = 0;
  for (const Edge& e : flow.edges()) fan_in += (e.to == id) ? 1 : 0;
  node.children.reserve(fan_in);
  for (const Edge& e : flow.edges()) {
    if (e.to == id) node.children.push_back(BuildProfileNode(flow, report, e.from));
  }
  return node;
}

}  // namespace

std::vector<obs::ProfileNode> BuildProfileTrees(const Flow& flow,
                                                const ExecutionReport& report) {
  // Query and refresh flows are small (typically < 20 nodes), so plain
  // linear scans over the edge vector beat any index structure: building
  // maps/sets costs dozens of allocations while a full scan is a handful of
  // short string compares. This runs on every profiled query, so its cost
  // is part of the EXPLAIN ANALYZE overhead budget
  // (BENCH_observability.json).
  auto has_successor = [&flow](const std::string& id) {
    for (const Edge& e : flow.edges()) {
      if (e.from == id) return true;
    }
    return false;
  };
  std::vector<obs::ProfileNode> roots;
  // Sinks in node-id order (stable across runs).
  for (const auto& [id, node] : flow.nodes()) {
    if (!has_successor(id)) {
      roots.push_back(BuildProfileNode(flow, report, id));
    }
  }
  return roots;
}

}  // namespace quarry::etl
