#ifndef QUARRY_DEPLOYER_DEPLOYER_H_
#define QUARRY_DEPLOYER_DEPLOYER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "docstore/document_store.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "mdschema/md_schema.h"
#include "ontology/mapping.h"
#include "storage/database.h"

namespace quarry::deployer {

/// Outcome of a full deployment.
struct DeploymentReport {
  std::string ddl;       ///< Generated SQL script (also executed).
  std::string pdi_ktr;   ///< Generated Pentaho-style transformation XML.
  int tables_created = 0;
  etl::ExecutionReport etl;  ///< Stats of the initial ETL population run.
  bool referential_integrity_ok = false;
};

/// \brief Knobs of the transactional deployment path.
struct DeployOptions {
  std::string database_name = "demo";
  /// Applied per ETL node, and as the attempt count for DDL execution and
  /// the metadata record write.
  etl::RetryPolicy retry;
  /// How the ETL population stage executes: `exec.max_workers > 1` runs
  /// independent nodes on the wavefront scheduler (docs/ROBUSTNESS.md §8);
  /// target tables stay byte-identical to a serial run either way.
  etl::ExecOptions exec;
  /// Request lifecycle (nullable): cancellation + deadline are checked at
  /// every stage boundary and cooperatively inside the ETL stage; budgets
  /// apply to the ETL run. A deadline or cancellation mid-deploy always
  /// takes the full rollback path — even in best-effort mode — so an
  /// abandoned request never leaves a half-deployed warehouse
  /// (docs/ROBUSTNESS.md §7).
  const ExecContext* context = nullptr;
  /// Degraded mode: on an unrecoverable ETL fault, keep the tables whose
  /// loaders completed (typically the dimensions), roll back only the
  /// unfinished ones, and mark the deployment "partial" in the metadata
  /// store instead of rolling everything back.
  bool best_effort = false;
  /// The target is a disposable scratch generation (serve-while-refresh,
  /// docs/ROBUSTNESS.md §9): skip the pre-deploy deep Clone() of the
  /// target and recover against an empty snapshot instead — rollback
  /// becomes clearing the scratch (the caller discards it wholesale
  /// anyway) rather than an O(rows) copy-back. The metadata store is still
  /// snapshotted and rolled back normally. Only set this when nothing else
  /// can observe the target until it is published.
  bool target_is_scratch = false;
  /// Snapshot/rolled back together with the target; receives the
  /// deployment record in its "deployments" collection. Usually the
  /// metadata repository's underlying store. May be null.
  docstore::DocumentStore* metadata = nullptr;
  /// Id of the deployment record document.
  std::string deployment_id = "deployment";
};

/// \brief Structured description of a failed (or degraded) deployment.
struct DeploymentFailure {
  std::string stage;        ///< "generate" | "ddl" | "etl" | "integrity" | "metadata"
  std::string failed_node;  ///< ETL node id (etl stage only).
  std::map<std::string, int64_t> rows_loaded;  ///< Completed loader progress.
  bool rolled_back = false;  ///< Target + metadata restored to pre-deploy state.
  std::vector<std::string> kept_tables;  ///< Best-effort survivors.
  Status cause;              ///< The underlying error.
};

/// \brief Result of the transactional deployment path: either a complete
/// success, or a structured failure that is either fully rolled back or
/// (best-effort) partially kept.
struct DeploymentOutcome {
  bool success = false;
  bool partial = false;      ///< Best-effort kept some loaded tables.
  DeploymentReport report;   ///< Valid on success; partially filled otherwise.
  std::optional<DeploymentFailure> failure;
  /// Serving path only (Quarry::DeployServing): the warehouse generation
  /// this deployment was published as; 0 when nothing was published
  /// (failure, or a plain into-a-target deployment).
  uint64_t published_generation = 0;
};

/// \brief The Design Deployer (paper §2.4): turns the unified design
/// solutions into executables for the target platforms and performs the
/// initial deployment — CREATE TABLE script executed on the embedded
/// relational engine (the PostgreSQL stand-in) and the unified ETL flow run
/// on the embedded ETL engine (the Pentaho stand-in) to populate it.
///
/// Deployment is transactional (docs/ROBUSTNESS.md): the target database
/// and the metadata store are snapshotted up front; any mid-deploy failure
/// restores both byte-identically and reports a DeploymentFailure, unless
/// best-effort mode keeps the fully-loaded tables and marks the deployment
/// partial.
class Deployer {
 public:
  /// Both databases must outlive the deployer. `source` holds the
  /// operational data the ETL extracts from; `target` receives the DW.
  Deployer(const storage::Database* source, storage::Database* target)
      : source_(source), target_(target) {}

  /// Generates DDL + ktr, executes the DDL against the target, runs the
  /// flow to populate it, and verifies referential integrity. Thin wrapper
  /// over DeployTransactional: on failure the target is already rolled
  /// back and the structured failure's cause is returned as the Status.
  Result<DeploymentReport> Deploy(const md::MdSchema& schema,
                                  const etl::Flow& flow,
                                  const ontology::SourceMapping& mapping,
                                  const std::string& database_name = "demo");

  /// The full-control deployment path. Only infrastructure misuse (e.g. a
  /// cyclic flow) yields a non-OK Result; a deployment that failed and was
  /// rolled back (or degraded to partial) comes back as an OK Result whose
  /// outcome carries the DeploymentFailure.
  Result<DeploymentOutcome> DeployTransactional(
      const md::MdSchema& schema, const etl::Flow& flow,
      const ontology::SourceMapping& mapping, const DeployOptions& options);

  /// Incremental refresh of an already-deployed warehouse: re-runs the ETL
  /// flow without touching the schema. Keyed loaders skip rows already
  /// present and merge-fill new measure columns, so only source changes
  /// since the last run land in the target. Verifies integrity afterwards.
  /// `exec.max_workers > 1` refreshes on the wavefront scheduler.
  Result<etl::ExecutionReport> Refresh(const etl::Flow& flow,
                                       const etl::RetryPolicy& retry = {},
                                       const ExecContext* ctx = nullptr,
                                       const etl::ExecOptions& exec = {});

 private:
  const storage::Database* source_;
  storage::Database* target_;
};

}  // namespace quarry::deployer

#endif  // QUARRY_DEPLOYER_DEPLOYER_H_
