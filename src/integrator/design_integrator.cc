#include "integrator/design_integrator.h"

#include "integrator/satisfiability.h"
#include "mdschema/validator.h"

namespace quarry::integrator {

Result<IntegrationOutcome> DesignIntegrator::AddRequirement(
    const req::InformationRequirement& ir,
    const interpreter::PartialDesign& partial) {
  if (requirements_.count(ir.id) > 0) {
    return Status::AlreadyExists("requirement '" + ir.id +
                                 "' is already integrated");
  }
  md::MdSchema schema_backup = schema_;
  etl::Flow flow_backup = flow_.Clone();

  IntegrationOutcome outcome;
  auto md_report = md_integrator_.Integrate(&schema_, partial.schema);
  if (!md_report.ok()) {
    schema_ = std::move(schema_backup);
    return md_report.status().WithContext("MD integration of '" + ir.id +
                                          "'");
  }
  outcome.md = std::move(*md_report);
  // When stage 1 merged a partial fact into an existing same-grain fact,
  // the partial flow must load the merged fact's table (its new measure
  // columns fill in via the loader's merge semantics).
  etl::Flow flow_to_integrate = partial.flow.Clone();
  std::vector<std::string> loader_ids;
  for (const auto& [id, node] : flow_to_integrate.nodes()) {
    if (node.type == etl::OpType::kLoader) loader_ids.push_back(id);
  }
  for (const std::string& id : loader_ids) {
    etl::Node* node = *flow_to_integrate.GetMutableNode(id);
    auto table_it = node->params.find("table");
    if (table_it == node->params.end()) continue;
    auto mapped = outcome.md.fact_mapping.find(table_it->second);
    if (mapped != outcome.md.fact_mapping.end() &&
        mapped->second != table_it->second) {
      table_it->second = mapped->second;
    }
  }
  auto etl_report = etl_integrator_.Integrate(&flow_, flow_to_integrate);
  if (!etl_report.ok()) {
    schema_ = std::move(schema_backup);
    flow_ = std::move(flow_backup);
    return etl_report.status().WithContext("ETL integration of '" + ir.id +
                                           "'");
  }
  outcome.etl = std::move(*etl_report);

  requirements_.emplace(ir.id, ir);
  Status verified = VerifyAll();
  if (!verified.ok()) {
    requirements_.erase(ir.id);
    schema_ = std::move(schema_backup);
    flow_ = std::move(flow_backup);
    return verified.WithContext("post-integration verification of '" + ir.id +
                                "'");
  }
  return outcome;
}

Status DesignIntegrator::RemoveRequirement(const std::string& ir_id) {
  auto it = requirements_.find(ir_id);
  if (it == requirements_.end()) {
    return Status::NotFound("requirement '" + ir_id + "'");
  }
  md::MdSchema schema_backup = schema_;
  etl::Flow flow_backup = flow_.Clone();
  req::InformationRequirement ir_backup = it->second;

  schema_.PruneRequirement(ir_id);
  flow_.PruneRequirement(ir_id);
  requirements_.erase(it);

  Status verified = VerifyAll();
  if (!verified.ok()) {
    schema_ = std::move(schema_backup);
    flow_ = std::move(flow_backup);
    requirements_.emplace(ir_backup.id, std::move(ir_backup));
    return verified.WithContext("removal of '" + ir_id + "'");
  }
  return Status::OK();
}

Result<IntegrationOutcome> DesignIntegrator::ChangeRequirement(
    const req::InformationRequirement& ir,
    const interpreter::PartialDesign& partial) {
  QUARRY_RETURN_NOT_OK(RemoveRequirement(ir.id));
  return AddRequirement(ir, partial);
}

Status DesignIntegrator::VerifyAll() const {
  if (!schema_.facts().empty() || !schema_.dimensions().empty()) {
    QUARRY_RETURN_NOT_OK(md::CheckSound(schema_, onto_));
  }
  if (flow_.num_nodes() > 0) {
    QUARRY_RETURN_NOT_OK(flow_.Validate());
  }
  for (const auto& [id, ir] : requirements_) {
    QUARRY_RETURN_NOT_OK(CheckSatisfies(schema_, flow_, ir));
  }
  return Status::OK();
}

}  // namespace quarry::integrator
