#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "etl/exec/executor.h"
#include "integrator/design_integrator.h"
#include "integrator/etl_integrator.h"
#include "integrator/md_integrator.h"
#include "integrator/satisfiability.h"
#include "interpreter/interpreter.h"
#include "mdschema/validator.h"
#include "ontology/tpch_ontology.h"

namespace quarry::integrator {
namespace {

using interpreter::Interpreter;
using interpreter::PartialDesign;
using req::InformationRequirement;

class IntegratorTest : public ::testing::Test {
 protected:
  IntegratorTest()
      : onto_(ontology::BuildTpchOntology()),
        mapping_(ontology::BuildTpchMappings()),
        interpreter_(&onto_, &mapping_) {
    EXPECT_TRUE(datagen::PopulateTpch(&src_, {0.005, 17}).ok());
    for (const std::string& name : src_.TableNames()) {
      std::vector<std::string> cols;
      for (const auto& c : (*src_.GetTable(name))->schema().columns()) {
        cols.push_back(c.name);
      }
      source_columns_[name] = cols;
      table_rows_[name] =
          static_cast<int64_t>((*src_.GetTable(name))->num_rows());
    }
  }

  static InformationRequirement RevenueIr() {
    InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    return ir;
  }

  // Same grain as revenue, different measure (merges into the same fact).
  static InformationRequirement DiscountIr() {
    InformationRequirement ir;
    ir.id = "ir_discount";
    ir.name = "revenue";  // same fact table name / focus / grain
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"avg_discount", "Lineitem.l_discount", md::AggFunc::kAvg});
    ir.dimensions.push_back({"Part.p_name"});
    ir.dimensions.push_back({"Supplier.s_name"});
    return ir;
  }

  // Different grain (Part only) and an extra source (Partsupp).
  static InformationRequirement NetprofitIr() {
    InformationRequirement ir;
    ir.id = "ir_netprofit";
    ir.name = "netprofit";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"netprofit",
         "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) - "
         "Partsupp.ps_supplycost * Lineitem.l_quantity",
         md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_name"});
    return ir;
  }

  // Grain at Nation: its dimension can fold into Supplier's hierarchy.
  static InformationRequirement NationIr() {
    InformationRequirement ir;
    ir.id = "ir_nation";
    ir.name = "qty_by_nation";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"qty", "Lineitem.l_quantity", md::AggFunc::kSum});
    ir.dimensions.push_back({"Nation.n_name"});
    return ir;
  }

  PartialDesign Interpret(const InformationRequirement& ir) {
    auto design = interpreter_.Interpret(ir);
    EXPECT_TRUE(design.ok()) << design.status();
    return std::move(*design);
  }

  ontology::Ontology onto_;
  ontology::SourceMapping mapping_;
  Interpreter interpreter_;
  storage::Database src_;
  etl::TableColumns source_columns_;
  std::map<std::string, int64_t> table_rows_;
};

// --- MD Schema Integrator ------------------------------------------------

TEST_F(IntegratorTest, FirstPartialBecomesUnified) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  auto report = integrator.Integrate(&unified, Interpret(RevenueIr()).schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->facts_added, 1);
  EXPECT_EQ(report->dimensions_added, 2);
  EXPECT_EQ(report->facts_merged, 0);
  EXPECT_TRUE(md::CheckSound(unified, &onto_).ok());
}

TEST_F(IntegratorTest, SameGrainFactsMerge) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  auto report =
      integrator.Integrate(&unified, Interpret(DiscountIr()).schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->facts_merged, 1);
  EXPECT_EQ(report->facts_added, 0);
  EXPECT_EQ(report->dimensions_conformed, 2);
  EXPECT_EQ(report->measures_added, 1);
  ASSERT_EQ(unified.facts().size(), 1u);
  EXPECT_EQ(unified.facts()[0].measures.size(), 2u);
  // Both requirements traced on the merged fact.
  EXPECT_EQ(unified.facts()[0].requirement_ids.size(), 2u);
}

TEST_F(IntegratorTest, DifferentGrainKeepsSeparateFactsButConformsDims) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  auto report =
      integrator.Integrate(&unified, Interpret(NetprofitIr()).schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->facts_added, 1);
  EXPECT_EQ(report->dimensions_conformed, 1);  // Part reused
  EXPECT_EQ(report->dimensions_added, 0);
  EXPECT_EQ(unified.facts().size(), 2u);
  EXPECT_EQ(unified.dimensions().size(), 2u);  // Part + Supplier, shared
}

TEST_F(IntegratorTest, ConflictingMeasureDefinitionRejected) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  InformationRequirement conflicting = DiscountIr();
  conflicting.measures[0] = {"revenue", "Lineitem.l_extendedprice",
                             md::AggFunc::kSum};  // same name, new def
  auto report =
      integrator.Integrate(&unified, Interpret(conflicting).schema);
  EXPECT_TRUE(report.status().IsValidationError());
  // Transactional: unified unchanged.
  EXPECT_EQ(unified.facts()[0].measures.size(), 1u);
}

TEST_F(IntegratorTest, HierarchyFoldingReducesComplexity) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  auto report = integrator.Integrate(&unified, Interpret(NationIr()).schema);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->dimensions_folded, 1);
  EXPECT_LT(report->complexity_after, report->complexity_naive_union);
  // Nation is now an upper level of the Supplier dimension.
  EXPECT_TRUE(unified.GetDimension("Nation").status().IsNotFound());
  const md::Dimension& supplier = **unified.GetDimension("Supplier");
  ASSERT_EQ(supplier.levels.size(), 2u);
  EXPECT_EQ(supplier.levels[1].concept_id, "Nation");
  // The nation-grain fact now references Supplier at the Nation level.
  const md::Fact& nation_fact = **unified.GetFact("fact_table_qty_by_nation");
  ASSERT_EQ(nation_fact.dimension_refs.size(), 1u);
  EXPECT_EQ(nation_fact.dimension_refs[0].dimension, "Supplier");
  EXPECT_EQ(nation_fact.dimension_refs[0].level, "Nation");
  EXPECT_TRUE(md::CheckSound(unified, &onto_).ok());
}

TEST_F(IntegratorTest, FoldingCanBeDisabled) {
  MdIntegrationOptions options;
  options.allow_hierarchy_merge = false;
  MdIntegrator integrator(&onto_, options);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  auto report = integrator.Integrate(&unified, Interpret(NationIr()).schema);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dimensions_folded, 0);
  EXPECT_TRUE(unified.GetDimension("Nation").ok());
}

TEST_F(IntegratorTest, IntegratedComplexityBeatsNaiveUnion) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  auto report =
      integrator.Integrate(&unified, Interpret(NetprofitIr()).schema);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->complexity_after, report->complexity_naive_union);
}

TEST_F(IntegratorTest, ProposeAlternativesRanksByComplexity) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  auto alternatives =
      integrator.ProposeAlternatives(unified, Interpret(NationIr()).schema);
  ASSERT_TRUE(alternatives.ok()) << alternatives.status();
  ASSERT_EQ(alternatives->size(), 3u);
  // Sorted cheapest first; folding wins with default weights.
  EXPECT_LE((*alternatives)[0].complexity, (*alternatives)[1].complexity);
  EXPECT_LE((*alternatives)[1].complexity, (*alternatives)[2].complexity);
  EXPECT_NE((*alternatives)[0].description.find("fold"), std::string::npos);
  // Every alternative is sound.
  for (const auto& alt : *alternatives) {
    EXPECT_TRUE(md::CheckSound(alt.schema, &onto_).ok()) << alt.description;
  }
  // The cheapest alternative matches what Integrate() produces.
  md::MdSchema integrated = unified;
  ASSERT_TRUE(
      integrator.Integrate(&integrated, Interpret(NationIr()).schema).ok());
  EXPECT_DOUBLE_EQ((*alternatives)[0].complexity,
                   md::StructuralComplexity(integrated).score);
}

TEST_F(IntegratorTest, SideBySideAlternativeRenamesCollisions) {
  MdIntegrator integrator(&onto_);
  md::MdSchema unified("unified");
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(RevenueIr()).schema).ok());
  // Integrating the same requirement again side-by-side must rename the
  // colliding fact and dimensions.
  auto alternatives =
      integrator.ProposeAlternatives(unified, Interpret(RevenueIr()).schema);
  ASSERT_TRUE(alternatives.ok());
  const MdAlternative* side_by_side = nullptr;
  for (const auto& alt : *alternatives) {
    if (alt.description.find("side by side") != std::string::npos) {
      side_by_side = &alt;
    }
  }
  ASSERT_NE(side_by_side, nullptr);
  EXPECT_TRUE(side_by_side->schema.GetFact("fact_table_revenue_2").ok());
  EXPECT_TRUE(side_by_side->schema.GetDimension("Part_2").ok());
}

// --- ETL Process Integrator ----------------------------------------------

TEST_F(IntegratorTest, EtlIntegrationReusesSharedPrefix) {
  EtlIntegrator integrator(source_columns_, table_rows_);
  etl::Flow unified("unified");
  auto r1 = integrator.Integrate(&unified, Interpret(RevenueIr()).flow);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1->nodes_reused, 0);
  size_t after_first = unified.num_nodes();

  auto r2 = integrator.Integrate(&unified, Interpret(NetprofitIr()).flow);
  ASSERT_TRUE(r2.ok()) << r2.status();
  // Shared: lineitem + part datastores/extractions, the lineitem-part
  // join, and the whole dim_Part branch.
  EXPECT_GE(r2->nodes_reused, 5);
  EXPECT_GT(r2->nodes_added, 0);
  EXPECT_GT(unified.num_nodes(), after_first);
  EXPECT_TRUE(unified.Validate().ok());
  // The unified flow is estimated cheaper than running both separately.
  EXPECT_LT(r2->cost_unified, r2->cost_separate);
}

TEST_F(IntegratorTest, ReusedNodesCarryBothTraces) {
  EtlIntegrator integrator(source_columns_, table_rows_);
  etl::Flow unified("unified");
  ASSERT_TRUE(integrator.Integrate(&unified, Interpret(RevenueIr()).flow).ok());
  ASSERT_TRUE(
      integrator.Integrate(&unified, Interpret(NetprofitIr()).flow).ok());
  const etl::Node& ds = *unified.GetNode("DATASTORE_lineitem").value();
  EXPECT_EQ(ds.requirement_ids,
            (std::set<std::string>{"ir_netprofit", "ir_revenue"}));
  const etl::Node& fact_loader =
      *unified.GetNode("LOAD_fact_table_revenue").value();
  EXPECT_EQ(fact_loader.requirement_ids,
            (std::set<std::string>{"ir_revenue"}));
}

TEST_F(IntegratorTest, UnifiedFlowProducesSameResultsAsSeparateRuns) {
  EtlIntegrator integrator(source_columns_, table_rows_);
  etl::Flow unified("unified");
  PartialDesign revenue = Interpret(RevenueIr());
  PartialDesign netprofit = Interpret(NetprofitIr());
  ASSERT_TRUE(integrator.Integrate(&unified, revenue.flow).ok());
  ASSERT_TRUE(integrator.Integrate(&unified, netprofit.flow).ok());

  storage::Database dw_separate("s"), dw_unified("u");
  ASSERT_TRUE(etl::Executor(&src_, &dw_separate).Run(revenue.flow).ok());
  ASSERT_TRUE(etl::Executor(&src_, &dw_separate).Run(netprofit.flow).ok());
  auto unified_report = etl::Executor(&src_, &dw_unified).Run(unified);
  ASSERT_TRUE(unified_report.ok()) << unified_report.status();

  for (const char* table :
       {"fact_table_revenue", "fact_table_netprofit", "dim_Part"}) {
    const storage::Table& a = **dw_separate.GetTable(table);
    const storage::Table& b = **dw_unified.GetTable(table);
    EXPECT_EQ(a.num_rows(), b.num_rows()) << table;
  }
  // And processes measurably fewer rows than the two separate runs.
  storage::Database scratch1("x"), scratch2("y");
  auto rev_report = etl::Executor(&src_, &scratch1).Run(revenue.flow);
  auto net_report = etl::Executor(&src_, &scratch2).Run(netprofit.flow);
  ASSERT_TRUE(rev_report.ok());
  ASSERT_TRUE(net_report.ok());
  EXPECT_LT(unified_report->rows_processed,
            rev_report->rows_processed + net_report->rows_processed);
}

TEST_F(IntegratorTest, SignaturesDistinguishJoinSides) {
  etl::Flow flow("f");
  etl::Node a{"a", etl::OpType::kDatastore, {{"table", "part"}}, {}};
  etl::Node b{"b", etl::OpType::kDatastore, {{"table", "supplier"}}, {}};
  etl::Node j{"j",
              etl::OpType::kJoin,
              {{"left", "x"}, {"right", "y"}},
              {}};
  ASSERT_TRUE(flow.AddNode(a).ok());
  ASSERT_TRUE(flow.AddNode(b).ok());
  ASSERT_TRUE(flow.AddNode(j).ok());
  ASSERT_TRUE(flow.AddEdge("a", "j").ok());
  ASSERT_TRUE(flow.AddEdge("b", "j").ok());
  auto sigs1 = EtlIntegrator::ComputeSignatures(flow);
  ASSERT_TRUE(sigs1.ok());

  etl::Flow swapped("g");
  ASSERT_TRUE(swapped.AddNode(a).ok());
  ASSERT_TRUE(swapped.AddNode(b).ok());
  ASSERT_TRUE(swapped.AddNode(j).ok());
  ASSERT_TRUE(swapped.AddEdge("b", "j").ok());
  ASSERT_TRUE(swapped.AddEdge("a", "j").ok());
  auto sigs2 = EtlIntegrator::ComputeSignatures(swapped);
  ASSERT_TRUE(sigs2.ok());
  EXPECT_NE(sigs1->at("j"), sigs2->at("j"));
}

// --- Design Integrator (facade) --------------------------------------------

TEST_F(IntegratorTest, AddRemoveChangeLifecycle) {
  DesignIntegrator integrator(&onto_, source_columns_, table_rows_);
  InformationRequirement revenue = RevenueIr();
  InformationRequirement netprofit = NetprofitIr();
  ASSERT_TRUE(
      integrator.AddRequirement(revenue, Interpret(revenue)).ok());
  ASSERT_TRUE(
      integrator.AddRequirement(netprofit, Interpret(netprofit)).ok());
  EXPECT_TRUE(integrator.VerifyAll().ok());
  EXPECT_EQ(integrator.requirements().size(), 2u);
  EXPECT_EQ(integrator.schema().facts().size(), 2u);

  // Duplicate add rejected.
  EXPECT_TRUE(integrator.AddRequirement(revenue, Interpret(revenue))
                  .status()
                  .IsAlreadyExists());

  // Remove netprofit: its fact goes; shared dim Part stays (revenue uses it).
  ASSERT_TRUE(integrator.RemoveRequirement("ir_netprofit").ok());
  EXPECT_TRUE(integrator.schema().GetFact("fact_table_netprofit")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(integrator.schema().GetDimension("Part").ok());
  EXPECT_TRUE(integrator.VerifyAll().ok());
  // The unified flow shrank but still loads revenue.
  EXPECT_TRUE(integrator.flow().HasNode("LOAD_fact_table_revenue"));
  EXPECT_FALSE(integrator.flow().HasNode("LOAD_fact_table_netprofit"));

  // Change revenue: drop the Supplier dimension from the requirement.
  InformationRequirement changed = revenue;
  changed.dimensions.pop_back();
  ASSERT_TRUE(
      integrator.ChangeRequirement(changed, Interpret(changed)).ok());
  EXPECT_TRUE(integrator.VerifyAll().ok());
  const md::Fact& fact = **integrator.schema().GetFact("fact_table_revenue");
  EXPECT_EQ(fact.dimension_refs.size(), 1u);

  // Removing the unknown fails cleanly.
  EXPECT_TRUE(integrator.RemoveRequirement("ghost").IsNotFound());
}

TEST_F(IntegratorTest, RemoveLastRequirementEmptiesDesign) {
  DesignIntegrator integrator(&onto_, source_columns_, table_rows_);
  InformationRequirement revenue = RevenueIr();
  ASSERT_TRUE(
      integrator.AddRequirement(revenue, Interpret(revenue)).ok());
  ASSERT_TRUE(integrator.RemoveRequirement("ir_revenue").ok());
  EXPECT_TRUE(integrator.schema().facts().empty());
  EXPECT_TRUE(integrator.schema().dimensions().empty());
  EXPECT_EQ(integrator.flow().num_nodes(), 0u);
}

TEST_F(IntegratorTest, SatisfiabilityCheckerDetectsLostMeasure) {
  DesignIntegrator integrator(&onto_, source_columns_, table_rows_);
  InformationRequirement revenue = RevenueIr();
  ASSERT_TRUE(
      integrator.AddRequirement(revenue, Interpret(revenue)).ok());
  // Corrupt a copy of the schema: drop the measure.
  md::MdSchema corrupted = integrator.schema();
  (*corrupted.GetMutableFact("fact_table_revenue"))->measures.clear();
  EXPECT_TRUE(CheckSatisfies(corrupted, integrator.flow(), revenue)
                  .IsUnsatisfiable());
  // And a flow without the loader.
  etl::Flow gutted = integrator.flow().Clone();
  ASSERT_TRUE(gutted.RemoveNode("LOAD_fact_table_revenue").ok());
  EXPECT_TRUE(CheckSatisfies(integrator.schema(), gutted, revenue)
                  .IsUnsatisfiable());
}

}  // namespace
}  // namespace quarry::integrator
