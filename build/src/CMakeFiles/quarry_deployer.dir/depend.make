# Empty dependencies file for quarry_deployer.
# This may be replaced when dependencies are built.
