// Durable warehouse generation experiments (docs/ROBUSTNESS.md §10,
// BENCH_durability.json):
//  - cold-start recovery (EnableDurability over a committed store
//    directory: scan + CRC/fingerprint validation + republish) vs the full
//    ETL rebuild a restart costs without durability (DeployServing) — the
//    tentpole claim is that recovery scales with warehouse *size* while
//    the rebuild pays the whole ETL flow every time;
//  - the durable commit itself (PersistGeneration: serialize + atomic
//    writes + fsyncs), the price each serving publish pays for being
//    recoverable.
// Every benchmark records the host context via bench_util.h so
// BENCH_durability.json can say what box the numbers are from.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_util.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "mdschema/md_schema.h"
#include "ontology/tpch_ontology.h"
#include "storage/generation_persist.h"
#include "storage/generation_store.h"
#include "xml/xml.h"

namespace {

namespace fs = std::filesystem;

using quarry::core::Quarry;
using quarry::bench::RecordHostInfo;
using quarry::storage::GenerationStore;

std::string FreshDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The core-layer annex decoder (serialized xMD document -> MdSchema), so
/// the recovery benchmark pays exactly what Quarry's cold start pays.
GenerationStore::AnnexDecoder MdDecoder() {
  return [](const std::string& bytes)
             -> quarry::Result<std::shared_ptr<const void>> {
    auto root = quarry::xml::Parse(bytes);
    if (!root.ok()) return root.status();
    auto schema = quarry::md::MdSchema::FromXml(**root);
    if (!schema.ok()) return schema.status();
    return std::shared_ptr<const void>(
        std::make_shared<const quarry::md::MdSchema>(std::move(*schema)));
  };
}

/// A deployed serving instance over a TPC-H source of the given scale
/// factor (passed as permille so benchmark Args stay integral).
struct Scenario {
  explicit Scenario(int64_t sf_permille) : src("tpch") {
    const double scale_factor =
        static_cast<double>(sf_permille) / 1000.0;
    if (!quarry::datagen::PopulateTpch(&src, {scale_factor, 77}).ok()) {
      std::abort();
    }
    auto q = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                            quarry::ontology::BuildTpchMappings(), &src);
    if (!q.ok()) std::abort();
    quarry = std::move(*q);
    quarry::req::InformationRequirement ir;
    ir.id = "ir_revenue";
    ir.name = "revenue";
    ir.focus_concept = "Lineitem";
    ir.measures.push_back(
        {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
         quarry::md::AggFunc::kSum});
    ir.dimensions.push_back({"Part.p_type"});
    ir.dimensions.push_back({"Supplier.s_name"});
    if (!quarry->AddRequirement(ir).ok()) std::abort();
  }

  quarry::storage::Database src;
  std::unique_ptr<Quarry> quarry;
};

/// Cold-start recovery latency: a fresh store recovering the newest
/// committed generation from disk. The directory is deployed once; each
/// iteration replays exactly what a restarted process does before its
/// first answered query.
void BM_ColdStartRecovery(benchmark::State& state) {
  Scenario scenario(state.range(0));
  std::string dir =
      FreshDir("quarry_bench_genrecover_" + std::to_string(state.range(0)));
  if (!scenario.quarry->EnableServingDurability(dir).ok()) std::abort();
  auto outcome = scenario.quarry->DeployServing();
  if (!outcome.ok() || !outcome->success) std::abort();

  uint64_t rows = 0;
  for (auto _ : state) {
    GenerationStore store("warehouse");
    quarry::storage::persist::GenerationRecoveryStats stats;
    if (!store.EnableDurability(dir, MdDecoder(), &stats).ok()) std::abort();
    if (stats.recovered_generation == 0) std::abort();
    rows = stats.rows_loaded;
    benchmark::DoNotOptimize(store.current_generation());
  }
  state.counters["warehouse_rows"] = static_cast<double>(rows);
  RecordHostInfo(state);
  fs::remove_all(dir);
}
BENCHMARK(BM_ColdStartRecovery)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

/// What the same restart costs without durability: re-running the whole
/// ETL deployment to repopulate the warehouse before it can serve.
void BM_FullEtlRebuild(benchmark::State& state) {
  Scenario scenario(state.range(0));
  uint64_t rows = 0;
  for (auto _ : state) {
    auto outcome = scenario.quarry->DeployServing();
    if (!outcome.ok() || !outcome->success) std::abort();
    benchmark::DoNotOptimize(outcome->published_generation);
  }
  auto pin = scenario.quarry->warehouse().Acquire();
  if (pin.ok()) rows = pin->db().TotalRows();
  state.counters["warehouse_rows"] = static_cast<double>(rows);
  RecordHostInfo(state);
}
BENCHMARK(BM_FullEtlRebuild)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

/// The durable commit itself: serializing and atomically writing one
/// generation (segments + annex + manifest + fsyncs) — the per-publish
/// price of recoverability.
void BM_DurableCommit(benchmark::State& state) {
  Scenario scenario(state.range(0));
  auto outcome = scenario.quarry->DeployServing();
  if (!outcome.ok() || !outcome->success) std::abort();
  auto pin = scenario.quarry->warehouse().Acquire();
  if (!pin.ok()) std::abort();
  std::string dir =
      FreshDir("quarry_bench_gencommit_" + std::to_string(state.range(0)));
  const uint64_t fingerprint = pin->db().Fingerprint();
  uint64_t id = 1;
  for (auto _ : state) {
    if (!quarry::storage::persist::PersistGeneration(dir, id, pin->db(),
                                                     fingerprint, "")
             .ok()) {
      std::abort();
    }
    ++id;
  }
  state.counters["warehouse_rows"] = static_cast<double>(pin->db().TotalRows());
  RecordHostInfo(state);
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableCommit)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
