# Empty dependencies file for retail_test.
# This may be replaced when dependencies are built.
