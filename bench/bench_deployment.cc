// Experiment F3 (EXPERIMENTS.md): the integration & deployment example of
// paper Figure 3 — the revenue and netprofit requirements are integrated
// into unified xMD/xLM, then rendered as PostgreSQL DDL and a Pentaho-style
// ktr; we report artifact sizes and generation latencies.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/quarry.h"
#include "datagen/tpch.h"
#include "deployer/pdi_generator.h"
#include "deployer/sql_generator.h"
#include "etl/xlm.h"
#include "ontology/tpch_ontology.h"

namespace {

using quarry::core::Quarry;
using quarry::req::InformationRequirement;

InformationRequirement RevenueIr() {
  InformationRequirement ir;
  ir.id = "ir_revenue";
  ir.name = "revenue";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       quarry::md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_name"});
  ir.dimensions.push_back({"Orders.o_orderdate"});
  return ir;
}

InformationRequirement NetprofitIr() {
  InformationRequirement ir;
  ir.id = "ir_netprofit";
  ir.name = "netprofit";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"netprofit",
       "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) - "
       "Partsupp.ps_supplycost * Lineitem.l_quantity",
       quarry::md::AggFunc::kSum});
  // Coarser grain than the revenue requirement (Part only), so the paper's
  // Figure 3 shape — two fact tables sharing conformed dimensions — holds.
  ir.dimensions.push_back({"Part.p_name"});
  return ir;
}

struct Env {
  quarry::storage::Database source{"tpch"};
  std::unique_ptr<Quarry> quarry;

  Env() {
    if (!quarry::datagen::PopulateTpch(&source, {0.005, 55}).ok()) {
      std::abort();
    }
    auto q = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                            quarry::ontology::BuildTpchMappings(), &source);
    if (!q.ok()) std::abort();
    quarry = std::move(*q);
    if (!quarry->AddRequirement(RevenueIr()).ok()) std::abort();
    if (!quarry->AddRequirement(NetprofitIr()).ok()) std::abort();
  }
};

Env& SharedEnv() {
  static Env* env = new Env();
  return *env;
}

void PrintSeries() {
  Env& env = SharedEnv();
  std::printf(
      "F3: Figure-3 artifacts (revenue + netprofit integrated design)\n");
  auto unified_xmd = env.quarry->schema().ToXml();
  auto unified_xlm = quarry::etl::FlowToXlm(env.quarry->flow());
  auto sql = env.quarry->ExportSchema("sql");
  auto ktr = env.quarry->ExportFlow("pdi");
  if (!sql.ok() || !ktr.ok()) std::abort();
  std::printf("  %-28s %8s\n", "artifact", "size");
  std::printf("  %-28s %7zu elements\n", "unified xMD",
              unified_xmd->SubtreeSize());
  std::printf("  %-28s %7zu elements\n", "unified xLM",
              unified_xlm->SubtreeSize());
  std::printf("  %-28s %7zu bytes\n", "PostgreSQL DDL", sql->size());
  std::printf("  %-28s %7zu bytes\n", "Pentaho PDI ktr", ktr->size());
  std::printf("  facts=%zu dimensions=%zu flow_nodes=%zu flow_edges=%zu\n\n",
              env.quarry->schema().facts().size(),
              env.quarry->schema().dimensions().size(),
              env.quarry->flow().num_nodes(), env.quarry->flow().num_edges());
}

void BM_GenerateSql(benchmark::State& state) {
  Env& env = SharedEnv();
  for (auto _ : state) {
    auto sql = quarry::deployer::GenerateSql(env.quarry->schema(),
                                             env.quarry->mapping(),
                                             env.source);
    if (!sql.ok()) std::abort();
    benchmark::DoNotOptimize(sql->size());
  }
}
BENCHMARK(BM_GenerateSql);

void BM_GeneratePdi(benchmark::State& state) {
  Env& env = SharedEnv();
  for (auto _ : state) {
    std::string ktr = quarry::deployer::GeneratePdiText(env.quarry->flow());
    benchmark::DoNotOptimize(ktr.size());
  }
}
BENCHMARK(BM_GeneratePdi);

void BM_FullDeployment(benchmark::State& state) {
  Env& env = SharedEnv();
  for (auto _ : state) {
    quarry::storage::Database warehouse;
    auto report = env.quarry->Deploy(&warehouse);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->etl.rows_processed);
    state.counters["etl_rows"] =
        static_cast<double>(report->etl.rows_processed);
  }
}
BENCHMARK(BM_FullDeployment)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
