#ifndef QUARRY_TESTS_ETL_TEST_UTIL_H_
#define QUARRY_TESTS_ETL_TEST_UTIL_H_

// Shared helpers for the parallel-executor differential tests
// (etl_parallel_test.cc) and the scheduler property tests
// (property_test.cc): a seeded random flow generator over a seeded random
// source database, and a runner that executes one flow serially and with N
// workers and hands back everything the comparisons need.

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/prng.h"
#include "common/result.h"
#include "etl/exec/executor.h"
#include "etl/flow.h"
#include "storage/database.h"

namespace quarry::etl::testutil {

inline Node MakeNode(const std::string& id, OpType type,
                     std::map<std::string, std::string> params) {
  Node node;
  node.id = id;
  node.type = type;
  node.params = std::move(params);
  return node;
}

/// Source database with `tables` tables named src0..srcN-1, all sharing the
/// schema (id INT, v INT, w DOUBLE, s STRING) so generated unions and joins
/// always type-check. Row counts and values are seed-deterministic; some
/// cells are NULL to exercise the merge/selection NULL paths.
inline std::unique_ptr<storage::Database> BuildRandomSource(uint64_t seed,
                                                            int tables = 3,
                                                            int max_rows =
                                                                120) {
  using storage::DataType;
  using storage::Value;
  Prng prng(seed * 0x9E3779B97F4A7C15ULL + 1);
  auto db = std::make_unique<storage::Database>("src");
  for (int t = 0; t < tables; ++t) {
    storage::TableSchema schema("src" + std::to_string(t));
    (void)schema.AddColumn({"id", DataType::kInt64, false});
    (void)schema.AddColumn({"v", DataType::kInt64, true});
    (void)schema.AddColumn({"w", DataType::kDouble, true});
    (void)schema.AddColumn({"s", DataType::kString, true});
    storage::Table* table = *db->CreateTable(std::move(schema));
    const int64_t rows = prng.Uniform(1, max_rows);
    for (int64_t r = 0; r < rows; ++r) {
      storage::Row row;
      row.push_back(Value::Int(r));
      row.push_back(prng.Chance(0.1) ? Value::Null()
                                     : Value::Int(prng.Uniform(0, 50)));
      row.push_back(prng.Chance(0.1)
                        ? Value::Null()
                        : Value::Double(prng.UniformDouble() * 100.0));
      row.push_back(prng.Chance(0.1) ? Value::Null()
                                     : Value::String(prng.Word(3)));
      (void)table->Insert(std::move(row));
    }
  }
  return db;
}

/// Builds a random valid flow over BuildRandomSource(seed) tables: a few
/// datastore→extraction roots, then `ops` random operators applied to
/// random live streams (union/join merge two streams), then one loader per
/// remaining stream. Deterministic per seed; every generated flow passes
/// Flow::Validate(). Branchy by construction, so parallel runs actually get
/// concurrent wavefronts.
inline Flow BuildRandomFlow(uint64_t seed, int source_tables = 3,
                            int ops = 12) {
  Prng prng(seed);
  Flow flow("random_" + std::to_string(seed));
  int next_id = 0;
  auto fresh = [&next_id](const char* prefix) {
    return std::string(prefix) + std::to_string(next_id++);
  };

  // A live stream = a node whose dataset is still unconsumed, plus the
  // column list that dataset has (mirrors operator schema semantics).
  struct Stream {
    std::string node;
    std::vector<std::string> columns;
  };
  std::vector<Stream> streams;

  const int roots = static_cast<int>(prng.Uniform(2, 4));
  for (int r = 0; r < roots; ++r) {
    std::string table = "src" + std::to_string(prng.Uniform(
                                    0, source_tables - 1));
    std::string ds = fresh("ds");
    std::string ex = fresh("ex");
    (void)flow.AddNode(MakeNode(ds, OpType::kDatastore, {{"table", table}}));
    (void)flow.AddNode(MakeNode(ex, OpType::kExtraction, {{"table", table}}));
    (void)flow.AddEdge(ds, ex);
    streams.push_back({ex, {"id", "v", "w", "s"}});
  }

  auto has_column = [](const Stream& s, const std::string& c) {
    return std::find(s.columns.begin(), s.columns.end(), c) !=
           s.columns.end();
  };
  auto unique_columns = [](const std::vector<std::string>& cols) {
    std::vector<std::string> out;
    for (const std::string& c : cols) {
      if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
    }
    return out;
  };

  for (int op = 0; op < ops; ++op) {
    size_t pick = static_cast<size_t>(
        prng.Uniform(0, static_cast<int64_t>(streams.size()) - 1));
    Stream& stream = streams[pick];
    switch (prng.Uniform(0, 6)) {
      case 0: {  // Selection on a numeric column when one exists.
        std::string pred;
        if (has_column(stream, "v")) {
          pred = "v >= " + std::to_string(prng.Uniform(0, 40));
        } else if (has_column(stream, "w")) {
          pred = "w < " + std::to_string(prng.Uniform(10, 90)) + ".0";
        } else {
          pred = stream.columns[0] + " = " + stream.columns[0];
        }
        std::string id = fresh("sel");
        (void)flow.AddNode(
            MakeNode(id, OpType::kSelection, {{"predicate", pred}}));
        (void)flow.AddEdge(stream.node, id);
        stream.node = id;
        break;
      }
      case 1: {  // Projection onto a random non-empty prefix-ish subset.
        std::vector<std::string> keep;
        for (const std::string& c : stream.columns) {
          if (prng.Chance(0.7)) keep.push_back(c);
        }
        if (keep.empty()) keep.push_back(stream.columns[0]);
        std::string cols;
        for (size_t i = 0; i < keep.size(); ++i) {
          if (i > 0) cols += ",";
          cols += keep[i];
        }
        std::string id = fresh("proj");
        (void)flow.AddNode(
            MakeNode(id, OpType::kProjection, {{"columns", cols}}));
        (void)flow.AddEdge(stream.node, id);
        stream.node = id;
        stream.columns = keep;
        break;
      }
      case 2: {  // Function: derive a fresh numeric column.
        if (!has_column(stream, "v")) break;
        std::string col = fresh("f");
        std::string id = fresh("fn");
        (void)flow.AddNode(MakeNode(
            id, OpType::kFunction,
            {{"column", col},
             {"expr", "v * " + std::to_string(prng.Uniform(2, 5)) + " + 1"}}));
        (void)flow.AddEdge(stream.node, id);
        stream.node = id;
        stream.columns.push_back(col);
        break;
      }
      case 3: {  // Sort by a random existing column.
        std::string by = stream.columns[static_cast<size_t>(prng.Uniform(
            0, static_cast<int64_t>(stream.columns.size()) - 1))];
        std::string id = fresh("sort");
        (void)flow.AddNode(MakeNode(
            id, OpType::kSort,
            {{"by", by}, {"desc", prng.Chance(0.5) ? "true" : "false"}}));
        (void)flow.AddEdge(stream.node, id);
        stream.node = id;
        break;
      }
      case 4: {  // Aggregation: group by one column, aggregate another.
        if (stream.columns.size() < 2) break;
        std::string group = stream.columns[0];
        std::string measure = stream.columns[1];
        std::string out_col = fresh("agg_out");
        std::string id = fresh("agg");
        const char* fn = prng.Chance(0.5) ? "SUM" : "COUNT";
        (void)flow.AddNode(MakeNode(
            id, OpType::kAggregation,
            {{"group", group},
             {"aggs", std::string(fn) + "(" + measure + ") AS " + out_col}}));
        (void)flow.AddEdge(stream.node, id);
        stream.node = id;
        stream.columns = {group, out_col};
        break;
      }
      case 5: {  // Union of two schema-identical streams.
        if (streams.size() < 2) break;
        size_t other = static_cast<size_t>(prng.Uniform(
            0, static_cast<int64_t>(streams.size()) - 1));
        if (other == pick || streams[other].columns != stream.columns) break;
        std::string id = fresh("uni");
        (void)flow.AddNode(MakeNode(id, OpType::kUnion, {}));
        (void)flow.AddEdge(stream.node, id);
        (void)flow.AddEdge(streams[other].node, id);
        stream.node = id;
        streams.erase(streams.begin() + static_cast<long>(other));
        break;
      }
      case 6: {  // Join on id, then project away duplicate column names.
        if (streams.size() < 2) break;
        size_t other = static_cast<size_t>(prng.Uniform(
            0, static_cast<int64_t>(streams.size()) - 1));
        if (other == pick) break;
        Stream& right = streams[other];
        if (!has_column(stream, "id") || !has_column(right, "id")) break;
        std::string join_id = fresh("join");
        (void)flow.AddNode(MakeNode(
            join_id, OpType::kJoin,
            {{"left", "id"},
             {"right", "id"},
             {"type", prng.Chance(0.3) ? "left" : "inner"}}));
        (void)flow.AddEdge(stream.node, join_id);
        (void)flow.AddEdge(right.node, join_id);
        std::vector<std::string> merged = stream.columns;
        merged.insert(merged.end(), right.columns.begin(),
                      right.columns.end());
        std::vector<std::string> keep = unique_columns(merged);
        std::string cols;
        for (size_t i = 0; i < keep.size(); ++i) {
          if (i > 0) cols += ",";
          cols += keep[i];
        }
        std::string proj_id = fresh("proj");
        (void)flow.AddNode(
            MakeNode(proj_id, OpType::kProjection, {{"columns", cols}}));
        (void)flow.AddEdge(join_id, proj_id);
        stream.node = proj_id;
        stream.columns = keep;
        streams.erase(streams.begin() + static_cast<long>(other));
        break;
      }
    }
  }

  int table_no = 0;
  for (Stream& stream : streams) {
    std::string id = fresh("load");
    std::map<std::string, std::string> params{
        {"table", "out" + std::to_string(table_no++)}};
    if (has_column(stream, "id") && prng.Chance(0.5)) params["keys"] = "id";
    (void)flow.AddNode(MakeNode(id, OpType::kLoader, std::move(params)));
    (void)flow.AddEdge(stream.node, id);
  }
  return flow;
}

/// One executed run: target fingerprint plus everything the differential
/// comparisons look at.
struct RunOutcome {
  Status status = Status::OK();
  uint64_t fingerprint = 0;
  ExecutionReport report;
};

/// Runs `flow` against a fresh target with full control over ExecOptions —
/// the three-way differential harness drives worker count AND the
/// vectorized chunk runtime through this. The retry/checkpoint/ctx knobs
/// mirror Executor::Run's.
inline RunOutcome RunFlowOpts(const storage::Database& source,
                              const Flow& flow, const ExecOptions& options,
                              const RetryPolicy& retry = {},
                              Checkpoint* checkpoint = nullptr,
                              const ExecContext* ctx = nullptr) {
  storage::Database target("dw");
  Executor executor(&source, &target);
  RunOutcome outcome;
  Result<ExecutionReport> report =
      executor.Run(flow, options, retry, checkpoint, ctx);
  outcome.status = report.status();
  if (report.ok()) outcome.report = std::move(*report);
  outcome.fingerprint = target.Fingerprint();
  return outcome;
}

/// Runs `flow` against a fresh target with the given worker count.
inline RunOutcome RunFlow(const storage::Database& source, const Flow& flow,
                          int workers, const RetryPolicy& retry = {},
                          Checkpoint* checkpoint = nullptr,
                          const ExecContext* ctx = nullptr) {
  ExecOptions options;
  options.max_workers = workers;
  return RunFlowOpts(source, flow, options, retry, checkpoint, ctx);
}

/// One executor configuration in the three-way differential matrix.
struct ExecMode {
  const char* name;
  int workers;
  bool vectorized;
  int64_t chunk_size = 1024;
};

inline ExecOptions ToOptions(const ExecMode& mode) {
  ExecOptions options;
  options.max_workers = mode.workers;
  options.vectorized = mode.vectorized;
  options.chunk_size = mode.chunk_size;
  return options;
}

/// The non-serial arms of the three-way harness (DESIGN.md §8): the serial
/// row executor is the reference; parallel, vectorized, and
/// vectorized-under-the-scheduler must all land on its exact bytes.
inline std::vector<ExecMode> DifferentialModes() {
  return {{"parallel4", 4, false},
          {"vectorized", 1, true},
          {"vectorized_parallel4", 4, true}};
}

/// Node stats keyed by id — completion order differs between serial and
/// parallel runs, so comparisons must be order-free.
inline std::map<std::string, NodeStats> StatsById(
    const ExecutionReport& report) {
  std::map<std::string, NodeStats> out;
  for (const NodeStats& stats : report.nodes) out[stats.node_id] = stats;
  return out;
}

}  // namespace quarry::etl::testutil

#endif  // QUARRY_TESTS_ETL_TEST_UTIL_H_
