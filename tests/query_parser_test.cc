#include "requirements/query_parser.h"

#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "core/quarry.h"
#include "ontology/tpch_ontology.h"

namespace quarry::req {
namespace {

TEST(QueryParserTest, PaperIntroductionSentence) {
  // "Analyze the revenue from the last year's sales, per products that are
  // ordered from Spain." — as the textual notation.
  const char* text = R"(
ANALYZE revenue ON Lineitem
MEASURE revenue = Lineitem.l_extendedprice * (1 - Lineitem.l_discount) SUM
BY Part.p_name
WHERE Nation.n_name = 'SPAIN' AND Orders.o_orderdate >= '1995-01-01'
)";
  auto ir = ParseRequirementQuery(text);
  ASSERT_TRUE(ir.ok()) << ir.status();
  EXPECT_EQ(ir->id, "revenue");
  EXPECT_EQ(ir->focus_concept, "Lineitem");
  ASSERT_EQ(ir->measures.size(), 1u);
  EXPECT_EQ(ir->measures[0].aggregation, md::AggFunc::kSum);
  EXPECT_EQ(ir->measures[0].expression,
            "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)");
  ASSERT_EQ(ir->dimensions.size(), 1u);
  EXPECT_EQ(ir->dimensions[0].property_id, "Part.p_name");
  ASSERT_EQ(ir->slicers.size(), 2u);
  EXPECT_EQ(ir->slicers[0].value, "SPAIN");
  EXPECT_EQ(ir->slicers[1].op, ">=");
  EXPECT_EQ(ir->slicers[1].value, "1995-01-01");
}

TEST(QueryParserTest, MultipleMeasuresAndDimensions) {
  const char* text =
      "ANALYZE sales AS \"Sales overview\" ON Lineitem "
      "MEASURE qty = Lineitem.l_quantity SUM, "
      "avg_discount = Lineitem.l_discount AVG "
      "BY Part.p_brand, Supplier.s_name, Orders.o_orderdate";
  auto ir = ParseRequirementQuery(text);
  ASSERT_TRUE(ir.ok()) << ir.status();
  EXPECT_EQ(ir->name, "Sales overview");
  ASSERT_EQ(ir->measures.size(), 2u);
  EXPECT_EQ(ir->measures[1].id, "avg_discount");
  EXPECT_EQ(ir->measures[1].aggregation, md::AggFunc::kAvg);
  EXPECT_EQ(ir->dimensions.size(), 3u);
  EXPECT_TRUE(ir->slicers.empty());
}

TEST(QueryParserTest, AggregationDefaultsToSum) {
  auto ir = ParseRequirementQuery(
      "ANALYZE q MEASURE m = Lineitem.l_quantity BY Part.p_name");
  ASSERT_TRUE(ir.ok()) << ir.status();
  EXPECT_EQ(ir->measures[0].aggregation, md::AggFunc::kSum);
  EXPECT_TRUE(ir->focus_concept.empty());  // Interpreter derives it.
}

TEST(QueryParserTest, MultipleMeasuresWithoutExplicitAgg) {
  auto ir = ParseRequirementQuery(
      "ANALYZE q MEASURE a = Lineitem.l_quantity, "
      "b = Lineitem.l_tax BY Part.p_name");
  ASSERT_TRUE(ir.ok()) << ir.status();
  ASSERT_EQ(ir->measures.size(), 2u);
  EXPECT_EQ(ir->measures[0].expression, "Lineitem.l_quantity");
  EXPECT_EQ(ir->measures[1].expression, "Lineitem.l_tax");
}

TEST(QueryParserTest, NumericLiteralInWhere) {
  auto ir = ParseRequirementQuery(
      "ANALYZE q MEASURE m = Lineitem.l_quantity BY Part.p_name "
      "WHERE Lineitem.l_quantity > 25");
  ASSERT_TRUE(ir.ok()) << ir.status();
  ASSERT_EQ(ir->slicers.size(), 1u);
  EXPECT_EQ(ir->slicers[0].op, ">");
  EXPECT_EQ(ir->slicers[0].value, "25");
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  auto ir = ParseRequirementQuery(
      "analyze q on Lineitem measure m = Lineitem.l_quantity sum "
      "by Part.p_name where Part.p_type = 'SMALL'");
  ASSERT_TRUE(ir.ok()) << ir.status();
  EXPECT_EQ(ir->focus_concept, "Lineitem");
}

TEST(QueryParserTest, Errors) {
  EXPECT_TRUE(ParseRequirementQuery("").status().IsParseError());
  EXPECT_TRUE(ParseRequirementQuery("SELECT 1").status().IsParseError());
  EXPECT_TRUE(ParseRequirementQuery("ANALYZE q BY Part.p_name")
                  .status()
                  .IsParseError());  // no MEASURE
  EXPECT_TRUE(ParseRequirementQuery("ANALYZE q MEASURE m = Lineitem.l_q")
                  .status()
                  .IsParseError());  // no BY
  EXPECT_TRUE(
      ParseRequirementQuery(
          "ANALYZE q MEASURE m = BY Part.p_name")  // empty expression
          .status()
          .IsParseError());
  EXPECT_TRUE(
      ParseRequirementQuery(
          "ANALYZE q MEASURE m = Lineitem.l_quantity BY Part.p_name junk")
          .status()
          .IsParseError());  // trailing input
  EXPECT_TRUE(
      ParseRequirementQuery(
          "ANALYZE q MEASURE m = 1 +* 2 BY Part.p_name")
          .status()
          .IsParseError());  // bad expression
}

TEST(QueryParserTest, RoundtripThroughText) {
  const char* text =
      "ANALYZE revenue AS \"Revenue\" ON Lineitem "
      "MEASURE revenue = Lineitem.l_extendedprice * (1 - "
      "Lineitem.l_discount) SUM "
      "BY Part.p_name, Supplier.s_name "
      "WHERE Nation.n_name = 'SPAIN' AND Lineitem.l_quantity >= 5";
  auto ir1 = ParseRequirementQuery(text);
  ASSERT_TRUE(ir1.ok()) << ir1.status();
  std::string rendered = RequirementQueryToString(*ir1);
  auto ir2 = ParseRequirementQuery(rendered);
  ASSERT_TRUE(ir2.ok()) << ir2.status() << "\n" << rendered;
  EXPECT_EQ(ir1->id, ir2->id);
  EXPECT_EQ(ir1->name, ir2->name);
  EXPECT_EQ(ir1->measures.size(), ir2->measures.size());
  EXPECT_EQ(ir1->measures[0].expression, ir2->measures[0].expression);
  EXPECT_EQ(ir1->dimensions.size(), ir2->dimensions.size());
  ASSERT_EQ(ir1->slicers.size(), ir2->slicers.size());
  EXPECT_EQ(ir1->slicers[1].value, ir2->slicers[1].value);
}

TEST(QueryParserTest, EndToEndThroughQuarryImporter) {
  storage::Database src("tpch");
  ASSERT_TRUE(datagen::PopulateTpch(&src, {0.01, 71}).ok());
  auto quarry = core::Quarry::Create(ontology::BuildTpchOntology(),
                                     ontology::BuildTpchMappings(), &src);
  ASSERT_TRUE(quarry.ok()) << quarry.status();
  auto outcome = (*quarry)->AddRequirementFromQuery(
      "ANALYZE revenue ON Lineitem "
      "MEASURE revenue = Lineitem.l_extendedprice * (1 - "
      "Lineitem.l_discount) SUM "
      "BY Part.p_name, Supplier.s_name "
      "WHERE Nation.n_name = 'SPAIN'");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ((*quarry)->requirements().size(), 1u);
  storage::Database dw;
  auto deployment = (*quarry)->Deploy(&dw);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_GT((*dw.GetTable("fact_table_revenue"))->num_rows(), 0u);
  // Unknown importer name fails cleanly.
  EXPECT_TRUE((*quarry)->repository().Import("yaml", "x").status()
                  .IsNotFound());
}

}  // namespace
}  // namespace quarry::req
