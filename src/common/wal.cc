#include "common/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace quarry::wal {

namespace {

// Cached metric instances (docs/OBSERVABILITY.md): the registry hands out
// process-lifetime pointers, so the lookup cost is paid once.
obs::Counter& AppendCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_wal_appends_total", "Records appended to any WAL");
  return c;
}

obs::Counter& AppendBytesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_wal_bytes_written_total",
      "Framed bytes appended to any WAL (payload + frame overhead)");
  return c;
}

obs::Counter& SyncCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_wal_syncs_total", "Explicit WAL fsync calls");
  return c;
}

obs::Histogram& SyncLatency() {
  static obs::Histogram& h = obs::MetricsRegistry::Instance().histogram(
      "quarry_wal_sync_micros", "WAL fsync latency in microseconds");
  return h;
}

obs::Counter& AtomicWriteCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Instance().counter(
      "quarry_wal_atomic_writes_total",
      "AtomicWriteFile commits (snapshot files, manifests)");
  return c;
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256>* table = [] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      (*t)[i] = c;
    }
    return t;
  }();
  return *table;
}

void PutU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

/// write(2) the whole buffer, retrying short writes and EINTR.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError("write failed on '" + path +
                                    "': " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::ExecutionError("fsync failed on '" + path +
                                  "': " + std::strerror(errno));
  }
  return Status::OK();
}

std::string FrameRecord(std::string_view payload) {
  std::string frame(kWalFrameOverhead + payload.size(), '\0');
  PutU32(frame.data(), static_cast<uint32_t>(payload.size()));
  PutU32(frame.data() + 4, Crc32(payload.data(), payload.size()));
  std::memcpy(frame.data() + kWalFrameOverhead, payload.data(),
              payload.size());
  return frame;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  const auto& table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<Writer>> Writer::Open(const std::string& path) {
  QUARRY_FAULT_POINT("wal.open");
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::ExecutionError("cannot open WAL '" + path +
                                  "': " + std::strerror(errno));
  }
  auto writer = std::unique_ptr<Writer>(new Writer(path, fd));
  char header[kWalHeaderSize];
  std::memcpy(header, kWalMagic, 4);
  PutU32(header + 4, kWalVersion);
  QUARRY_RETURN_NOT_OK(WriteAll(fd, header, kWalHeaderSize, path));
  QUARRY_RETURN_NOT_OK(FsyncFd(fd, path));
  return writer;
}

Writer::~Writer() {
  if (fd_ >= 0) ::close(fd_);
}

Status Writer::Append(std::string_view payload) {
  if (failed_) {
    return Status::ExecutionError("WAL '" + path_ +
                                  "' is fail-stopped after a write error");
  }
  QUARRY_FAULT_POINT("wal.append");
  std::string frame = FrameRecord(payload);
#ifndef QUARRY_DISABLE_FAULT_INJECTION
  if (fault::Enabled()) {
    Status torn = fault::Check("wal.append.torn");
    if (!torn.ok()) {
      // Simulate a crash mid-write: a prefix of the frame reaches the file
      // (flushed, so recovery really sees it), then the process "dies".
      // The torn tail makes any later frame unreadable, so the writer
      // fail-stops rather than append acknowledged records behind it.
      size_t cut = frame.size() / 2;
      if (cut == 0) cut = 1;
      (void)WriteAll(fd_, frame.data(), cut, path_);
      (void)FsyncFd(fd_, path_);
      bytes_written_ += cut;
      failed_ = true;
      return torn;
    }
  }
#endif
  Status written = WriteAll(fd_, frame.data(), frame.size(), path_);
  if (!written.ok()) {
    failed_ = true;  // an unknown prefix of the frame may be on disk
    return written;
  }
  bytes_written_ += frame.size();
  ++records_appended_;
  AppendCounter().Increment();
  AppendBytesCounter().Increment(static_cast<int64_t>(frame.size()));
  return Status::OK();
}

Status Writer::Sync() {
  if (failed_) {
    return Status::ExecutionError("WAL '" + path_ +
                                  "' is fail-stopped after a write error");
  }
  QUARRY_FAULT_POINT("wal.sync");
  Timer sync_timer;
  Status synced = FsyncFd(fd_, path_);
  SyncLatency().Observe(sync_timer.ElapsedMicros());
  SyncCounter().Increment();
  // A failed fsync leaves the kernel's view of the file unknowable
  // (pages may have been dropped), so the log also fail-stops here.
  if (!synced.ok()) failed_ = true;
  return synced;
}

Result<ReadResult> ReadLog(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("WAL '" + path + "': " + std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return Status::ExecutionError("read failed on '" + path +
                                    "': " + std::strerror(err));
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  ReadResult out;
  if (data.size() < kWalHeaderSize) {
    // A crash during Writer::Open can leave a short header; the log simply
    // holds no records yet.
    out.torn_tail = !data.empty();
    out.tail_bytes_discarded = data.size();
    return out;
  }
  if (std::memcmp(data.data(), kWalMagic, 4) != 0) {
    return Status::ParseError("'" + path + "' is not a Quarry WAL file");
  }
  if (GetU32(data.data() + 4) != kWalVersion) {
    return Status::ParseError("WAL '" + path + "' has unsupported version " +
                              std::to_string(GetU32(data.data() + 4)));
  }
  size_t pos = kWalHeaderSize;
  out.valid_bytes = pos;
  while (pos + kWalFrameOverhead <= data.size()) {
    uint32_t len = GetU32(data.data() + pos);
    uint32_t crc = GetU32(data.data() + pos + 4);
    if (pos + kWalFrameOverhead + len > data.size()) break;  // torn frame
    const char* payload = data.data() + pos + kWalFrameOverhead;
    if (Crc32(payload, len) != crc) break;  // torn or corrupt frame
    out.records.emplace_back(payload, len);
    pos += kWalFrameOverhead + len;
    out.valid_bytes = pos;
  }
  out.tail_bytes_discarded = data.size() - out.valid_bytes;
  out.torn_tail = out.tail_bytes_discarded > 0;
  return out;
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::ExecutionError("cannot open directory '" + dir +
                                  "': " + std::strerror(errno));
  }
  // Some filesystems reject fsync on a directory fd; that is not a
  // durability bug we can fix, so only real I/O errors surface.
  int rc = ::fsync(fd);
  int err = errno;
  ::close(fd);
  if (rc != 0 && err != EINVAL && err != EBADF) {
    return Status::ExecutionError("fsync failed on directory '" + dir +
                                  "': " + std::strerror(err));
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  QUARRY_FAULT_POINT("wal.file.write");
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::ExecutionError("cannot open '" + tmp +
                                  "': " + std::strerror(errno));
  }
#ifndef QUARRY_DISABLE_FAULT_INJECTION
  if (fault::Enabled()) {
    Status torn = fault::Check("wal.file.write.torn");
    if (!torn.ok()) {
      // Crash mid-write: a partial tmp file is left behind. It is invisible
      // under the target name, so recovery ignores it.
      (void)WriteAll(fd, data.data(), data.size() / 2, tmp);
      ::close(fd);
      return torn;
    }
  }
#endif
  Status write_status = WriteAll(fd, data.data(), data.size(), tmp);
  if (write_status.ok()) {
#ifndef QUARRY_DISABLE_FAULT_INJECTION
    if (fault::Enabled()) {
      write_status = fault::Check("wal.file.sync");
    }
    if (write_status.ok())
#endif
      write_status = FsyncFd(fd, tmp);
  }
  if (::close(fd) != 0 && write_status.ok()) {
    write_status = Status::ExecutionError("close failed on '" + tmp +
                                          "': " + std::strerror(errno));
  }
  if (!write_status.ok()) return write_status;

  QUARRY_FAULT_POINT("wal.file.rename");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::ExecutionError("rename '" + tmp + "' -> '" + path +
                                  "' failed: " + ec.message());
  }
  AtomicWriteCounter().Increment();
  return SyncDirectory(std::filesystem::path(path).parent_path().string());
}

}  // namespace quarry::wal
