#ifndef QUARRY_MDSCHEMA_COMPLEXITY_H_
#define QUARRY_MDSCHEMA_COMPLEXITY_H_

#include "mdschema/md_schema.h"

namespace quarry::md {

/// \brief Weights of the structural-design-complexity cost model — the
/// example quality factor the paper names for MD schemas (§2.3, §3).
///
/// The score is a weighted element count: schemas with fewer, more shared
/// (conformed) design elements score lower. The MD Schema Integrator picks
/// the integration alternative minimizing this score.
struct ComplexityWeights {
  double fact = 3.0;
  double dimension = 2.0;
  double level = 1.5;
  double attribute = 0.25;
  double measure = 1.0;
  double fact_dimension_edge = 1.0;  ///< Per DimensionRef.
  double rollup_edge = 0.75;         ///< Per adjacent level pair.
};

/// Element counts plus the weighted score.
struct ComplexityReport {
  int facts = 0;
  int dimensions = 0;
  int levels = 0;
  int attributes = 0;
  int measures = 0;
  int fact_dimension_edges = 0;
  int rollup_edges = 0;
  double score = 0;
};

/// Computes the structural complexity of `schema`.
ComplexityReport StructuralComplexity(
    const MdSchema& schema, const ComplexityWeights& weights = {});

}  // namespace quarry::md

#endif  // QUARRY_MDSCHEMA_COMPLEXITY_H_
