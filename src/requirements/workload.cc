#include "requirements/workload.h"

#include <array>
#include <set>

#include "common/prng.h"

namespace quarry::req {

namespace {

// Dimension candidates: descriptive TPC-H properties, hot pool first.
constexpr std::array<const char*, 3> kHotDimensions = {
    "Part.p_name", "Supplier.s_name", "Orders.o_orderdate"};
constexpr std::array<const char*, 6> kColdDimensions = {
    "Part.p_brand",        "Part.p_type",          "Customer.c_mktsegment",
    "Nation.n_name",       "Region.r_name",        "Lineitem.l_returnflag"};

// Measure expression templates over Lineitem (all numeric, all valid).
constexpr std::array<const char*, 5> kMeasureExprs = {
    "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
    "Lineitem.l_quantity",
    "Lineitem.l_extendedprice",
    "Lineitem.l_extendedprice * Lineitem.l_tax",
    "Lineitem.l_extendedprice * (1 - Lineitem.l_discount) * "
    "(1 + Lineitem.l_tax)",
};

constexpr std::array<const char*, 3> kSlicerProps = {
    "Lineitem.l_returnflag", "Orders.o_orderstatus", "Nation.n_name"};
constexpr std::array<const char*, 3> kSlicerValues = {"R", "O", "SPAIN"};

}  // namespace

std::vector<InformationRequirement> GenerateTpchWorkload(
    const WorkloadConfig& config) {
  Prng rng(config.seed);
  std::vector<InformationRequirement> out;
  out.reserve(static_cast<size_t>(config.num_requirements));
  for (int i = 0; i < config.num_requirements; ++i) {
    InformationRequirement ir;
    ir.id = "ir_wl_" + std::to_string(i);
    ir.name = "wl_" + std::to_string(i);
    ir.focus_concept = "Lineitem";
    // Unique measure name per requirement so same-grain facts merge.
    ir.measures.push_back(
        {"m_" + std::to_string(i),
         kMeasureExprs[static_cast<size_t>(
             rng.Uniform(0, static_cast<int>(kMeasureExprs.size()) - 1))],
         md::AggFunc::kSum});
    std::set<std::string> chosen;
    while (static_cast<int>(chosen.size()) <
           config.dimensions_per_requirement) {
      const char* pick;
      if (rng.Chance(config.overlap)) {
        pick = kHotDimensions[static_cast<size_t>(rng.Uniform(
            0, static_cast<int>(kHotDimensions.size()) - 1))];
      } else {
        pick = kColdDimensions[static_cast<size_t>(rng.Uniform(
            0, static_cast<int>(kColdDimensions.size()) - 1))];
      }
      chosen.insert(pick);
    }
    for (const std::string& property : chosen) {
      ir.dimensions.push_back({property});
    }
    if (rng.Chance(config.slicer_probability)) {
      size_t s = static_cast<size_t>(
          rng.Uniform(0, static_cast<int>(kSlicerProps.size()) - 1));
      ir.slicers.push_back({kSlicerProps[s], "=", kSlicerValues[s]});
    }
    out.push_back(std::move(ir));
  }
  return out;
}

}  // namespace quarry::req
