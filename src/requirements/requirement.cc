#include "requirements/requirement.h"

namespace quarry::req {

std::unique_ptr<xml::Element> ToXrq(const InformationRequirement& ir) {
  auto root = std::make_unique<xml::Element>("cube");
  root->SetAttr("id", ir.id);
  root->SetAttr("name", ir.name);
  if (!ir.focus_concept.empty()) root->SetAttr("focus", ir.focus_concept);
  xml::Element* dimensions = root->AddChild("dimensions");
  for (const DimensionSpec& d : ir.dimensions) {
    dimensions->AddChild("concept")->SetAttr("id", d.property_id);
  }
  xml::Element* measures = root->AddChild("measures");
  for (const MeasureSpec& m : ir.measures) {
    xml::Element* concept_el = measures->AddChild("concept");
    concept_el->SetAttr("id", m.id);
    concept_el->AddTextChild("function", m.expression);
    concept_el->AddTextChild("aggregation", md::AggFuncToString(m.aggregation));
  }
  xml::Element* slicers = root->AddChild("slicers");
  for (const Slicer& s : ir.slicers) {
    xml::Element* comparison = slicers->AddChild("comparison");
    comparison->AddChild("concept")->SetAttr("id", s.property_id);
    comparison->AddTextChild("operator", s.op);
    comparison->AddTextChild("value", s.value);
  }
  xml::Element* aggregations = root->AddChild("aggregations");
  for (const AggregationSpec& a : ir.aggregations) {
    xml::Element* aggregation = aggregations->AddChild("aggregation");
    aggregation->SetAttr("order", std::to_string(a.order));
    aggregation->AddChild("dimension")->SetAttr("refID",
                                                a.dimension_property);
    aggregation->AddChild("measure")->SetAttr("refID", a.measure_id);
    aggregation->AddTextChild("function", md::AggFuncToString(a.function));
  }
  return root;
}

Result<InformationRequirement> FromXrq(const xml::Element& root) {
  if (root.name() != "cube") {
    return Status::ParseError("expected <cube>, got <" + root.name() + ">");
  }
  InformationRequirement ir;
  ir.id = root.AttrOr("id");
  ir.name = root.AttrOr("name");
  ir.focus_concept = root.AttrOr("focus");
  if (ir.id.empty()) {
    return Status::ParseError("xRQ cube lacks an id attribute");
  }
  if (const xml::Element* dimensions = root.FirstChild("dimensions");
      dimensions != nullptr) {
    for (const xml::Element* c : dimensions->Children("concept")) {
      ir.dimensions.push_back({c->AttrOr("id")});
    }
  }
  if (const xml::Element* measures = root.FirstChild("measures");
      measures != nullptr) {
    for (const xml::Element* c : measures->Children("concept")) {
      MeasureSpec m;
      m.id = c->AttrOr("id");
      m.expression = c->ChildText("function");
      std::string agg = c->ChildText("aggregation");
      if (!agg.empty()) {
        QUARRY_ASSIGN_OR_RETURN(m.aggregation, md::AggFuncFromString(agg));
      }
      if (m.id.empty() || m.expression.empty()) {
        return Status::ParseError("xRQ measure needs an id and a function");
      }
      ir.measures.push_back(std::move(m));
    }
  }
  if (const xml::Element* slicers = root.FirstChild("slicers");
      slicers != nullptr) {
    for (const xml::Element* comparison : slicers->Children("comparison")) {
      Slicer s;
      const xml::Element* concept_el = comparison->FirstChild("concept");
      if (concept_el == nullptr) {
        return Status::ParseError("xRQ comparison lacks a concept");
      }
      s.property_id = concept_el->AttrOr("id");
      s.op = comparison->ChildText("operator");
      s.value = comparison->ChildText("value");
      if (s.op.empty()) {
        return Status::ParseError("xRQ comparison lacks an operator");
      }
      ir.slicers.push_back(std::move(s));
    }
  }
  if (const xml::Element* aggregations = root.FirstChild("aggregations");
      aggregations != nullptr) {
    for (const xml::Element* a : aggregations->Children("aggregation")) {
      AggregationSpec spec;
      spec.order = std::atoi(a->AttrOr("order", "1").c_str());
      if (const xml::Element* d = a->FirstChild("dimension"); d != nullptr) {
        spec.dimension_property = d->AttrOr("refID");
      }
      if (const xml::Element* m = a->FirstChild("measure"); m != nullptr) {
        spec.measure_id = m->AttrOr("refID");
      }
      std::string fn = a->ChildText("function");
      if (!fn.empty()) {
        QUARRY_ASSIGN_OR_RETURN(spec.function, md::AggFuncFromString(fn));
      }
      ir.aggregations.push_back(std::move(spec));
    }
  }
  return ir;
}

}  // namespace quarry::req
