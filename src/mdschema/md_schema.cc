#include "mdschema/md_schema.h"

#include <algorithm>

#include "common/str_util.h"

namespace quarry::md {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVERAGE";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kCount:
      return "COUNT";
  }
  return "UNKNOWN";
}

const char* AggFuncToEtlName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kCount:
      return "COUNT";
  }
  return "SUM";
}

Result<AggFunc> AggFuncFromString(const std::string& text) {
  std::string upper = ToUpper(text);
  if (upper == "SUM") return AggFunc::kSum;
  if (upper == "AVERAGE" || upper == "AVG") return AggFunc::kAvg;
  if (upper == "MIN") return AggFunc::kMin;
  if (upper == "MAX") return AggFunc::kMax;
  if (upper == "COUNT") return AggFunc::kCount;
  return Status::ParseError("unknown aggregation function '" + text + "'");
}

const Level* Dimension::FindLevel(const std::string& level_name) const {
  for (const Level& level : levels) {
    if (level.name == level_name) return &level;
  }
  return nullptr;
}

Level* Dimension::FindLevel(const std::string& level_name) {
  for (Level& level : levels) {
    if (level.name == level_name) return &level;
  }
  return nullptr;
}

const Measure* Fact::FindMeasure(const std::string& measure_name) const {
  for (const Measure& m : measures) {
    if (m.name == measure_name) return &m;
  }
  return nullptr;
}

Status MdSchema::AddFact(Fact fact) {
  for (const Fact& f : facts_) {
    if (f.name == fact.name) {
      return Status::AlreadyExists("fact '" + fact.name + "'");
    }
  }
  facts_.push_back(std::move(fact));
  return Status::OK();
}

Status MdSchema::AddDimension(Dimension dimension) {
  for (const Dimension& d : dimensions_) {
    if (d.name == dimension.name) {
      return Status::AlreadyExists("dimension '" + dimension.name + "'");
    }
  }
  dimensions_.push_back(std::move(dimension));
  return Status::OK();
}

Result<const Fact*> MdSchema::GetFact(const std::string& name) const {
  for (const Fact& f : facts_) {
    if (f.name == name) return &f;
  }
  return Status::NotFound("fact '" + name + "'");
}

Result<Fact*> MdSchema::GetMutableFact(const std::string& name) {
  for (Fact& f : facts_) {
    if (f.name == name) return &f;
  }
  return Status::NotFound("fact '" + name + "'");
}

Result<const Dimension*> MdSchema::GetDimension(
    const std::string& name) const {
  for (const Dimension& d : dimensions_) {
    if (d.name == name) return &d;
  }
  return Status::NotFound("dimension '" + name + "'");
}

Result<Dimension*> MdSchema::GetMutableDimension(const std::string& name) {
  for (Dimension& d : dimensions_) {
    if (d.name == name) return &d;
  }
  return Status::NotFound("dimension '" + name + "'");
}

Status MdSchema::RemoveFact(const std::string& name) {
  auto it = std::find_if(facts_.begin(), facts_.end(),
                         [&](const Fact& f) { return f.name == name; });
  if (it == facts_.end()) return Status::NotFound("fact '" + name + "'");
  facts_.erase(it);
  return Status::OK();
}

Status MdSchema::RemoveDimension(const std::string& name) {
  auto it =
      std::find_if(dimensions_.begin(), dimensions_.end(),
                   [&](const Dimension& d) { return d.name == name; });
  if (it == dimensions_.end()) {
    return Status::NotFound("dimension '" + name + "'");
  }
  dimensions_.erase(it);
  return Status::OK();
}

std::set<std::string> MdSchema::RequirementIds() const {
  std::set<std::string> out;
  for (const Fact& f : facts_) {
    out.insert(f.requirement_ids.begin(), f.requirement_ids.end());
    for (const Measure& m : f.measures) {
      out.insert(m.requirement_ids.begin(), m.requirement_ids.end());
    }
  }
  for (const Dimension& d : dimensions_) {
    out.insert(d.requirement_ids.begin(), d.requirement_ids.end());
  }
  return out;
}

size_t MdSchema::PruneRequirement(const std::string& requirement_id) {
  size_t removed = 0;
  // Measures first, then facts, then dimensions (so a dimension only
  // referenced by removed facts can go too).
  for (auto fact_it = facts_.begin(); fact_it != facts_.end();) {
    Fact& fact = *fact_it;
    fact.requirement_ids.erase(requirement_id);
    for (auto m_it = fact.measures.begin(); m_it != fact.measures.end();) {
      m_it->requirement_ids.erase(requirement_id);
      if (m_it->requirement_ids.empty()) {
        m_it = fact.measures.erase(m_it);
        ++removed;
      } else {
        ++m_it;
      }
    }
    if (fact.requirement_ids.empty() || fact.measures.empty()) {
      fact_it = facts_.erase(fact_it);
      ++removed;
    } else {
      ++fact_it;
    }
  }
  // A dimension survives if some remaining fact references it or its trace
  // still names a live requirement; within a surviving dimension, levels
  // whose own trace empties out (and that no fact references) are pruned —
  // e.g. an upper level folded in for a now-removed requirement.
  auto referenced = [&](const std::string& dim_name) {
    for (const Fact& f : facts_) {
      for (const DimensionRef& ref : f.dimension_refs) {
        if (ref.dimension == dim_name) return true;
      }
    }
    return false;
  };
  auto level_referenced = [&](const std::string& dim_name,
                              const std::string& level_name) {
    for (const Fact& f : facts_) {
      for (const DimensionRef& ref : f.dimension_refs) {
        if (ref.dimension == dim_name && ref.level == level_name) {
          return true;
        }
      }
    }
    return false;
  };
  for (auto d_it = dimensions_.begin(); d_it != dimensions_.end();) {
    d_it->requirement_ids.erase(requirement_id);
    for (auto l_it = d_it->levels.begin(); l_it != d_it->levels.end();) {
      l_it->requirement_ids.erase(requirement_id);
      if (l_it->requirement_ids.empty() &&
          !level_referenced(d_it->name, l_it->name)) {
        l_it = d_it->levels.erase(l_it);
        ++removed;
      } else {
        ++l_it;
      }
    }
    if ((d_it->requirement_ids.empty() && !referenced(d_it->name)) ||
        d_it->levels.empty()) {
      d_it = dimensions_.erase(d_it);
      ++removed;
    } else {
      ++d_it;
    }
  }
  return removed;
}

namespace {

void WriteRequirements(const std::set<std::string>& ids, xml::Element* e) {
  if (ids.empty()) return;
  std::vector<std::string> sorted(ids.begin(), ids.end());
  e->AddTextChild("requirements", Join(sorted, ","));
}

std::set<std::string> ReadRequirements(const xml::Element& e) {
  std::set<std::string> out;
  std::string text = e.ChildText("requirements");
  if (text.empty()) return out;
  for (const std::string& id : Split(text, ',')) out.insert(id);
  return out;
}

Result<storage::DataType> DataTypeFromString(const std::string& text) {
  if (text == "BIGINT") return storage::DataType::kInt64;
  if (text == "DOUBLE PRECISION") return storage::DataType::kDouble;
  if (text == "VARCHAR") return storage::DataType::kString;
  if (text == "DATE") return storage::DataType::kDate;
  if (text == "BOOLEAN") return storage::DataType::kBool;
  return Status::ParseError("unknown data type '" + text + "'");
}

}  // namespace

std::unique_ptr<xml::Element> MdSchema::ToXml() const {
  auto root = std::make_unique<xml::Element>("MDschema");
  root->SetAttr("name", name_);
  xml::Element* facts = root->AddChild("facts");
  for (const Fact& f : facts_) {
    xml::Element* fact = facts->AddChild("fact");
    fact->AddTextChild("name", f.name);
    fact->AddTextChild("concept", f.concept_id);
    xml::Element* measures = fact->AddChild("measures");
    for (const Measure& m : f.measures) {
      xml::Element* measure = measures->AddChild("measure");
      measure->AddTextChild("name", m.name);
      measure->AddTextChild("expression", m.expression);
      measure->AddTextChild("aggregation", AggFuncToString(m.aggregation));
      measure->AddTextChild("additive", m.additive ? "Y" : "N");
      WriteRequirements(m.requirement_ids, measure);
    }
    xml::Element* refs = fact->AddChild("dimensionRefs");
    for (const DimensionRef& ref : f.dimension_refs) {
      xml::Element* r = refs->AddChild("dimensionRef");
      r->SetAttr("dimension", ref.dimension);
      r->SetAttr("level", ref.level);
    }
    WriteRequirements(f.requirement_ids, fact);
  }
  xml::Element* dims = root->AddChild("dimensions");
  for (const Dimension& d : dimensions_) {
    xml::Element* dim = dims->AddChild("dimension");
    dim->AddTextChild("name", d.name);
    xml::Element* levels = dim->AddChild("levels");
    for (const Level& level : d.levels) {
      xml::Element* l = levels->AddChild("level");
      l->AddTextChild("name", level.name);
      l->AddTextChild("concept", level.concept_id);
      WriteRequirements(level.requirement_ids, l);
      xml::Element* attrs = l->AddChild("attributes");
      for (const LevelAttribute& a : level.attributes) {
        xml::Element* attr = attrs->AddChild("attribute");
        attr->SetAttr("name", a.name);
        attr->SetAttr("type", storage::DataTypeToString(a.type));
        attr->SetAttr("source", a.source_property);
      }
    }
    WriteRequirements(d.requirement_ids, dim);
  }
  return root;
}

Result<MdSchema> MdSchema::FromXml(const xml::Element& root) {
  if (root.name() != "MDschema") {
    return Status::ParseError("expected <MDschema>, got <" + root.name() +
                              ">");
  }
  MdSchema schema(root.AttrOr("name"));
  if (const xml::Element* facts = root.FirstChild("facts");
      facts != nullptr) {
    for (const xml::Element* f : facts->Children("fact")) {
      Fact fact;
      fact.name = f->ChildText("name");
      fact.concept_id = f->ChildText("concept");
      fact.requirement_ids = ReadRequirements(*f);
      if (const xml::Element* measures = f->FirstChild("measures");
          measures != nullptr) {
        for (const xml::Element* m : measures->Children("measure")) {
          Measure measure;
          measure.name = m->ChildText("name");
          measure.expression = m->ChildText("expression");
          QUARRY_ASSIGN_OR_RETURN(
              measure.aggregation,
              AggFuncFromString(m->ChildText("aggregation")));
          measure.additive = m->ChildText("additive") != "N";
          measure.requirement_ids = ReadRequirements(*m);
          fact.measures.push_back(std::move(measure));
        }
      }
      if (const xml::Element* refs = f->FirstChild("dimensionRefs");
          refs != nullptr) {
        for (const xml::Element* r : refs->Children("dimensionRef")) {
          fact.dimension_refs.push_back(
              {r->AttrOr("dimension"), r->AttrOr("level")});
        }
      }
      QUARRY_RETURN_NOT_OK(schema.AddFact(std::move(fact)));
    }
  }
  if (const xml::Element* dims = root.FirstChild("dimensions");
      dims != nullptr) {
    for (const xml::Element* d : dims->Children("dimension")) {
      Dimension dim;
      dim.name = d->ChildText("name");
      dim.requirement_ids = ReadRequirements(*d);
      if (const xml::Element* levels = d->FirstChild("levels");
          levels != nullptr) {
        for (const xml::Element* l : levels->Children("level")) {
          Level level;
          level.name = l->ChildText("name");
          level.concept_id = l->ChildText("concept");
          level.requirement_ids = ReadRequirements(*l);
          if (const xml::Element* attrs = l->FirstChild("attributes");
              attrs != nullptr) {
            for (const xml::Element* a : attrs->Children("attribute")) {
              LevelAttribute attr;
              attr.name = a->AttrOr("name");
              QUARRY_ASSIGN_OR_RETURN(attr.type,
                                      DataTypeFromString(a->AttrOr("type")));
              attr.source_property = a->AttrOr("source");
              level.attributes.push_back(std::move(attr));
            }
          }
          dim.levels.push_back(std::move(level));
        }
      }
      QUARRY_RETURN_NOT_OK(schema.AddDimension(std::move(dim)));
    }
  }
  return schema;
}

}  // namespace quarry::md
