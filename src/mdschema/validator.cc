#include "mdschema/validator.h"

#include <set>

namespace quarry::md {

const char* ViolationKindToString(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kStructural:
      return "Structural";
    case ViolationKind::kSummarizability:
      return "Summarizability";
    case ViolationKind::kAggregation:
      return "Aggregation";
    case ViolationKind::kBase:
      return "Base";
  }
  return "Unknown";
}

namespace {

void Add(std::vector<Violation>* out, ViolationKind kind,
         const std::string& element, const std::string& message) {
  out->push_back({kind, element, message});
}

}  // namespace

std::vector<Violation> Validate(const MdSchema& schema,
                                const ontology::Ontology* onto) {
  std::vector<Violation> out;

  std::set<std::string> fact_names;
  for (const Fact& fact : schema.facts()) {
    if (!fact_names.insert(fact.name).second) {
      Add(&out, ViolationKind::kStructural, fact.name, "duplicate fact name");
    }
    if (fact.measures.empty()) {
      Add(&out, ViolationKind::kStructural, fact.name, "fact has no measures");
    }
    if (fact.dimension_refs.empty()) {
      Add(&out, ViolationKind::kBase, fact.name,
          "fact has an empty base (no dimension references)");
    }
    std::set<std::string> measure_names;
    for (const Measure& m : fact.measures) {
      if (!measure_names.insert(m.name).second) {
        Add(&out, ViolationKind::kStructural, fact.name + "." + m.name,
            "duplicate measure name");
      }
      if (!m.additive && m.aggregation == AggFunc::kSum) {
        Add(&out, ViolationKind::kAggregation, fact.name + "." + m.name,
            "non-additive measure aggregated with SUM");
      }
    }
    // A fact may reference one dimension at several *distinct* levels
    // (this arises when conforming maps two partial dimensions onto one
    // hierarchy: the lower level functionally determines the upper, so
    // the base stays consistent, merely redundant). Referencing the same
    // (dimension, level) twice is a genuine base violation.
    std::set<std::pair<std::string, std::string>> base;
    for (const DimensionRef& ref : fact.dimension_refs) {
      if (!base.insert({ref.dimension, ref.level}).second) {
        Add(&out, ViolationKind::kBase, fact.name,
            "fact references dimension '" + ref.dimension + "' level '" +
                ref.level + "' twice");
      }
      auto dim = schema.GetDimension(ref.dimension);
      if (!dim.ok()) {
        Add(&out, ViolationKind::kStructural, fact.name,
            "dangling dimension reference '" + ref.dimension + "'");
        continue;
      }
      const Level* level = (*dim)->FindLevel(ref.level);
      if (level == nullptr) {
        Add(&out, ViolationKind::kStructural, fact.name,
            "dimension '" + ref.dimension + "' has no level '" + ref.level +
                "'");
        continue;
      }
      if (onto != nullptr && !fact.concept_id.empty()) {
        auto path =
            onto->FindFunctionalPath(fact.concept_id, level->concept_id);
        if (!path.ok()) {
          Add(&out, ViolationKind::kSummarizability,
              fact.name + "->" + ref.dimension,
              "no to-one path from fact concept '" + fact.concept_id +
                  "' to level concept '" + level->concept_id + "'");
        }
      }
    }
  }

  std::set<std::string> dim_names;
  for (const Dimension& dim : schema.dimensions()) {
    if (!dim_names.insert(dim.name).second) {
      Add(&out, ViolationKind::kStructural, dim.name,
          "duplicate dimension name");
    }
    if (dim.levels.empty()) {
      Add(&out, ViolationKind::kStructural, dim.name,
          "dimension has no levels");
      continue;
    }
    std::set<std::string> level_names;
    std::set<std::string> level_concepts;
    for (const Level& level : dim.levels) {
      if (!level_names.insert(level.name).second) {
        Add(&out, ViolationKind::kStructural, dim.name + "." + level.name,
            "duplicate level name in hierarchy");
      }
      if (!level.concept_id.empty() &&
          !level_concepts.insert(level.concept_id).second) {
        Add(&out, ViolationKind::kStructural, dim.name + "." + level.name,
            "hierarchy visits concept '" + level.concept_id + "' twice");
      }
      if (onto != nullptr && !level.concept_id.empty() &&
          !onto->HasConcept(level.concept_id)) {
        Add(&out, ViolationKind::kStructural, dim.name + "." + level.name,
            "unknown concept '" + level.concept_id + "'");
      }
    }
    if (onto != nullptr) {
      for (size_t i = 0; i + 1 < dim.levels.size(); ++i) {
        const Level& lower = dim.levels[i];
        const Level& upper = dim.levels[i + 1];
        if (lower.concept_id.empty() || upper.concept_id.empty()) continue;
        if (!onto->HasConcept(lower.concept_id) ||
            !onto->HasConcept(upper.concept_id)) {
          continue;  // Already reported above.
        }
        auto path =
            onto->FindFunctionalPath(lower.concept_id, upper.concept_id);
        if (!path.ok()) {
          Add(&out, ViolationKind::kSummarizability,
              dim.name + "." + lower.name + "->" + upper.name,
              "rollup is not functional: no to-one path from '" +
                  lower.concept_id + "' to '" + upper.concept_id + "'");
        }
      }
    }
  }
  return out;
}

Status CheckSound(const MdSchema& schema, const ontology::Ontology* onto) {
  std::vector<Violation> violations = Validate(schema, onto);
  if (violations.empty()) return Status::OK();
  std::string message = "MD schema '" + schema.name() + "' is unsound:";
  size_t shown = 0;
  for (const Violation& v : violations) {
    if (shown++ == 3) {
      message += " (+" + std::to_string(violations.size() - 3) + " more)";
      break;
    }
    message += std::string(" [") + ViolationKindToString(v.kind) + " @ " +
               v.element + ": " + v.message + "]";
  }
  return Status::ValidationError(message);
}

}  // namespace quarry::md
