#ifndef QUARRY_CORE_QUARRY_H_
#define QUARRY_CORE_QUARRY_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/exec_context.h"
#include "common/result.h"
#include "core/admission.h"
#include "core/metadata_repository.h"
#include "core/telemetry.h"
#include "deployer/deployer.h"
#include "integrator/design_integrator.h"
#include "interpreter/interpreter.h"
#include "ontology/mapping.h"
#include "ontology/ontology.h"
#include "requirements/elicitor.h"
#include "requirements/requirement.h"
#include "storage/database.h"

namespace quarry::core {

/// Configuration of a Quarry instance.
struct QuarryConfig {
  integrator::MdIntegrationOptions md_options;
  etl::CostModelConfig etl_cost;
  std::string database_name = "demo";
  /// Gate in front of the Submit* entry points (docs/ROBUSTNESS.md §7).
  AdmissionOptions admission;
  /// How ETL runs execute (docs/ROBUSTNESS.md §8): `max_workers > 1` runs
  /// Deploy/Refresh flows on the wavefront scheduler. Applied to Refresh /
  /// SubmitRefresh always, and to DeployResilient / SubmitDeploy unless the
  /// caller's DeployOptions ask for parallelism themselves.
  etl::ExecOptions etl_exec;
};

/// \brief The end-to-end Quarry system (paper Fig. 1): wires together the
/// Requirements Elicitor, Requirements Interpreter, Design Integrator,
/// Design Deployer and the Communication & Metadata layer.
///
/// Lifecycle:
///   1. Create() over a domain ontology + source mappings + source data.
///   2. elicitor() assists users in phrasing information requirements.
///   3. AddRequirement() interprets the requirement into partial designs,
///      integrates them into the unified design (validating soundness and
///      satisfiability), and records every artifact (xRQ / partial and
///      unified xMD + xLM) in the metadata repository.
///   4. RemoveRequirement() / ChangeRequirement() accommodate evolution.
///   5. Deploy() emits SQL + ktr, creates the DW star schema and runs the
///      unified ETL to populate it.
class Quarry {
 public:
  /// Validates the mapping against the ontology, snapshots source table
  /// statistics for the cost models, registers the built-in exporters
  /// ("sql", "pdi", "xmd", "xlm") and stores ontology + mappings in the
  /// repository. `source` must outlive the instance.
  static Result<std::unique_ptr<Quarry>> Create(
      ontology::Ontology onto, ontology::SourceMapping mapping,
      const storage::Database* source, QuarryConfig config = {});

  /// Process-wide tracing + metrics surfaces (docs/OBSERVABILITY.md):
  /// Quarry::Telemetry().StartTracing() before a run,
  /// Quarry::Telemetry().WriteTo(dir) to export trace.json / metrics.prom /
  /// metrics.json afterwards. Static — telemetry spans every instance.
  static TelemetryHandle Telemetry() { return core::Telemetry(); }

  const ontology::Ontology& ontology() const { return *onto_; }
  const ontology::SourceMapping& mapping() const { return *mapping_; }
  req::Elicitor& elicitor() { return *elicitor_; }
  MetadataRepository& repository() { return repository_; }
  const MetadataRepository& repository() const { return repository_; }

  /// Makes the metadata repository crash-safe on `dir`
  /// (docs/ROBUSTNESS.md §6): the current state is checkpointed and every
  /// subsequent artifact write (AddRequirement, deployment records, ...)
  /// is WAL-logged with an fsync before it is acknowledged.
  Status EnableDurability(const std::string& dir);

  /// What startup recovery did when this instance was restored from a
  /// durable session directory (all-zero for fresh instances).
  const docstore::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  void set_recovery_stats(docstore::RecoveryStats stats) {
    recovery_stats_ = std::move(stats);
  }

  const md::MdSchema& schema() const { return design_->schema(); }
  const etl::Flow& flow() const { return design_->flow(); }
  const std::map<std::string, req::InformationRequirement>& requirements()
      const {
    return design_->requirements();
  }

  /// Interprets + integrates a requirement; stores xRQ, the partial xMD and
  /// xLM, and refreshes the unified xMD/xLM in the repository. `ctx`
  /// (nullable) carries the request's cancellation token / deadline /
  /// budgets through the interpreter and integrator.
  Result<integrator::IntegrationOutcome> AddRequirement(
      const req::InformationRequirement& ir, const ExecContext* ctx = nullptr);

  /// Parses the textual "ANALYZE ... MEASURE ... BY ... WHERE ..." notation
  /// (req::ParseRequirementQuery) and adds the resulting requirement.
  Result<integrator::IntegrationOutcome> AddRequirementFromQuery(
      std::string_view query_text, const ExecContext* ctx = nullptr);

  /// Removes a requirement and prunes the unified design.
  Status RemoveRequirement(const std::string& ir_id);

  /// Replaces an integrated requirement with a new definition.
  Result<integrator::IntegrationOutcome> ChangeRequirement(
      const req::InformationRequirement& ir, const ExecContext* ctx = nullptr);

  /// Deploys the unified design into `target`.
  Result<deployer::DeploymentReport> Deploy(storage::Database* target);

  /// Transactional deployment of the unified design into `target`
  /// (docs/ROBUSTNESS.md): per-node ETL retries, rollback (or best-effort
  /// partial keep) on failure, and a deployment record in the metadata
  /// repository. `options.database_name` and `options.metadata` are
  /// overridden with this instance's configuration and repository store;
  /// attach a request lifecycle via `options.context`.
  Result<deployer::DeploymentOutcome> DeployResilient(
      storage::Database* target, deployer::DeployOptions options = {});

  /// Incrementally refreshes an already-deployed `target` with whatever
  /// changed in the source since the last Deploy/Refresh (idempotent
  /// loaders skip known keys).
  Result<etl::ExecutionReport> Refresh(storage::Database* target,
                                       const ExecContext* ctx = nullptr);

  /// The gate in front of the Submit* entry points. Exposed so callers can
  /// observe load (in_flight / queue_depth) or share it across instances.
  AdmissionController& admission() { return *admission_; }

  // --- admission-gated entry points (docs/ROBUSTNESS.md §7) ---------------
  //
  // Each Submit* first passes the admission controller — waiting FIFO for a
  // slot, or failing fast with kOverloaded / kDeadlineExceeded / kCancelled
  // under load — then runs the corresponding operation with `ctx` attached.
  // Design mutations are serialized internally, so concurrent Submit*
  // callers are safe; the admission gate bounds how many of them pile up.

  Result<integrator::IntegrationOutcome> SubmitRequirement(
      const req::InformationRequirement& ir, const ExecContext* ctx = nullptr);

  Result<integrator::IntegrationOutcome> SubmitRequirementFromQuery(
      std::string_view query_text, const ExecContext* ctx = nullptr);

  Status SubmitRemoveRequirement(const std::string& ir_id,
                                 const ExecContext* ctx = nullptr);

  /// `options.context` is overridden with `ctx`.
  Result<deployer::DeploymentOutcome> SubmitDeploy(
      storage::Database* target, deployer::DeployOptions options = {},
      const ExecContext* ctx = nullptr);

  Result<etl::ExecutionReport> SubmitRefresh(storage::Database* target,
                                             const ExecContext* ctx = nullptr);

  /// Renders the unified MD schema via a registered exporter ("sql","xmd").
  Result<std::string> ExportSchema(const std::string& format) const;

  /// Renders the unified ETL flow via a registered exporter ("pdi","xlm").
  Result<std::string> ExportFlow(const std::string& format) const;

 private:
  Quarry(ontology::Ontology onto, ontology::SourceMapping mapping,
         const storage::Database* source, QuarryConfig config);

  Status RefreshUnifiedArtifacts();

  std::unique_ptr<ontology::Ontology> onto_;
  std::unique_ptr<ontology::SourceMapping> mapping_;
  const storage::Database* source_;
  QuarryConfig config_;
  std::unique_ptr<req::Elicitor> elicitor_;
  std::unique_ptr<interpreter::Interpreter> interpreter_;
  std::unique_ptr<integrator::DesignIntegrator> design_;
  MetadataRepository repository_;
  docstore::RecoveryStats recovery_stats_;
  std::unique_ptr<AdmissionController> admission_;
  /// Serializes the design-mutating body of Submit* calls: the engine
  /// itself is single-writer, the admission gate only bounds how many
  /// requests wait for it.
  std::mutex submit_mu_;
};

}  // namespace quarry::core

#endif  // QUARRY_CORE_QUARRY_H_
