file(REMOVE_RECURSE
  "CMakeFiles/etl_exec_test.dir/etl_exec_test.cc.o"
  "CMakeFiles/etl_exec_test.dir/etl_exec_test.cc.o.d"
  "etl_exec_test"
  "etl_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/etl_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
