
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ontology/mapping.cc" "src/CMakeFiles/quarry_ontology.dir/ontology/mapping.cc.o" "gcc" "src/CMakeFiles/quarry_ontology.dir/ontology/mapping.cc.o.d"
  "/root/repo/src/ontology/ontology.cc" "src/CMakeFiles/quarry_ontology.dir/ontology/ontology.cc.o" "gcc" "src/CMakeFiles/quarry_ontology.dir/ontology/ontology.cc.o.d"
  "/root/repo/src/ontology/tpch_ontology.cc" "src/CMakeFiles/quarry_ontology.dir/ontology/tpch_ontology.cc.o" "gcc" "src/CMakeFiles/quarry_ontology.dir/ontology/tpch_ontology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quarry_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/quarry_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
