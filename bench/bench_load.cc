// Closed-loop sustained-load harness for multi-tenant overload protection
// (docs/ROBUSTNESS.md §11; results in BENCH_serving.json "sustained_load").
//
// Two tenant classes against one Quarry instance serving TPC-H:
//   - "gold":   high priority, no quota — the well-behaved customer whose
//               latency we are defending;
//   - "bronze": low priority, token-bucket + in-flight-share quota — a
//               closed-loop flooder offering many times its quota.
//
// Phase A (quiesced) runs gold alone (plus background refresh churn, so
// both phases carry the same mixed query/refresh traffic); phase B adds
// the flooders. The harness reports per-priority-class p50/p99, the
// flooder's offered-vs-quota ratio, its shed rate and whether sheds carried
// retry-after hints, and the gold p99 isolation factor between phases.
//
// Plain main() binary (not google-benchmark): phases are wall-clock load
// scenarios, not microbenchmark loops. Flags:
//   --smoke         shorter phases + hard-assert the §11 invariants
//                   (exit 1 on violation) — tools/run_load_smoke.sh
//   --seed=N        datagen seed (default 77)
//   --quiesce_ms=N  phase A duration (default 3000; smoke 1500)
//   --flood_ms=N    phase B duration (default 5000; smoke 2500)
//   --flooders=N    bronze closed-loop threads (default 2)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/quarry.h"
#include "core/tenant.h"
#include "datagen/tpch.h"
#include "ontology/tpch_ontology.h"

namespace quarry {
namespace {

using core::Quarry;
using core::TenantQuota;
using core::TenantStatus;

constexpr double kBronzeRatePerSec = 20.0;

struct Options {
  bool smoke = false;
  int seed = 77;
  int quiesce_ms = 3000;
  int flood_ms = 5000;
  int flooders = 2;
};

Options ParseArgs(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto IntFlag = [&](const char* name, int* out) {
      const size_t len = std::strlen(name);
      if (arg.rfind(name, 0) == 0 && arg.size() > len && arg[len] == '=') {
        *out = std::atoi(arg.c_str() + len + 1);
        return true;
      }
      return false;
    };
    if (arg == "--smoke") {
      opts.smoke = true;
      opts.quiesce_ms = 1500;
      opts.flood_ms = 2500;
    } else if (IntFlag("--seed", &opts.seed) ||
               IntFlag("--quiesce_ms", &opts.quiesce_ms) ||
               IntFlag("--flood_ms", &opts.flood_ms) ||
               IntFlag("--flooders", &opts.flooders)) {
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opts;
}

double PercentileUs(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  auto rank = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (rank >= samples.size()) rank = samples.size() - 1;
  return samples[rank];
}

/// One tenant class's side of a load phase.
struct ClassStats {
  std::vector<double> latencies_us;  ///< Successful queries only.
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t shed_with_hint = 0;  ///< Sheds carrying a retry-after hint.
  int64_t errors = 0;
  std::vector<std::string> error_samples;
};

/// Closed-loop request generator: issue, record, think, repeat.
class Worker {
 public:
  Worker(Quarry* quarry, std::string tenant, int think_ms)
      : quarry_(quarry), tenant_(std::move(tenant)), think_ms_(think_ms) {}

  void Run(const std::atomic<bool>& done) {
    olap::CubeQuery query;
    query.fact = "fact_table_revenue";
    query.group_by = {"p_type"};
    query.measures = {{"revenue", md::AggFunc::kSum, "total"}};
    core::QueryOptions opts;
    opts.collect_profile = false;
    while (!done.load(std::memory_order_acquire)) {
      ExecContext ctx;
      ctx.set_tenant(tenant_);
      const auto start = std::chrono::steady_clock::now();
      auto result = quarry_->SubmitQuery(query, opts, &ctx);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      std::lock_guard<std::mutex> lock(mu_);
      if (result.ok()) {
        ++stats_.ok;
        stats_.latencies_us.push_back(us);
      } else if (result.status().IsOverloaded()) {
        ++stats_.shed;
        if (RetryAfterMillis(result.status()) > 0) ++stats_.shed_with_hint;
      } else {
        ++stats_.errors;
        if (stats_.error_samples.size() < 3) {
          stats_.error_samples.push_back(result.status().ToString());
        }
      }
      if (think_ms_ > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(think_ms_));
      }
    }
  }

  ClassStats TakeStats() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(stats_);
  }

 private:
  Quarry* quarry_;
  std::string tenant_;
  int think_ms_;
  std::mutex mu_;
  ClassStats stats_;
};

void MergeInto(ClassStats* into, ClassStats from) {
  into->latencies_us.insert(into->latencies_us.end(),
                            from.latencies_us.begin(),
                            from.latencies_us.end());
  into->ok += from.ok;
  into->shed += from.shed;
  into->shed_with_hint += from.shed_with_hint;
  into->errors += from.errors;
  for (auto& e : from.error_samples) {
    if (into->error_samples.size() < 3) {
      into->error_samples.push_back(std::move(e));
    }
  }
}

TenantStatus StatusOf(const Quarry& quarry, const std::string& id) {
  for (const TenantStatus& t : quarry.tenants().Snapshot()) {
    if (t.id == id) return t;
  }
  return {};
}

int failures = 0;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "SMOKE FAIL: %s\n", what);
    ++failures;
  }
}

}  // namespace

int Main(int argc, char** argv) {
  const Options opts = ParseArgs(argc, argv);

  // --- Setup: TPC-H source, revenue requirement, serving warehouse. -------
  storage::Database src;
  {
    auto status = datagen::PopulateTpch(
        &src, {0.002, static_cast<unsigned>(opts.seed)});
    if (!status.ok()) {
      std::fprintf(stderr, "datagen: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  auto quarry = Quarry::Create(ontology::BuildTpchOntology(),
                               ontology::BuildTpchMappings(), &src, {});
  if (!quarry.ok()) {
    std::fprintf(stderr, "create: %s\n", quarry.status().ToString().c_str());
    return 1;
  }
  req::InformationRequirement ir;
  ir.id = "ir_revenue";
  ir.name = "revenue";
  ir.focus_concept = "Lineitem";
  ir.measures.push_back(
      {"revenue", "Lineitem.l_extendedprice * (1 - Lineitem.l_discount)",
       md::AggFunc::kSum});
  ir.dimensions.push_back({"Part.p_type"});
  if (auto s = (*quarry)->AddRequirement(ir); !s.ok()) {
    std::fprintf(stderr, "requirement: %s\n",
                 s.status().ToString().c_str());
    return 1;
  }

  TenantQuota gold;
  gold.priority = Priority::kHigh;
  TenantQuota bronze;
  bronze.priority = Priority::kLow;
  bronze.rate_per_sec = kBronzeRatePerSec;
  bronze.burst = 5.0;
  bronze.max_in_flight = 1;
  TenantQuota ops;
  ops.priority = Priority::kNormal;
  (void)(*quarry)->RegisterTenant("gold", gold);
  (void)(*quarry)->RegisterTenant("bronze", bronze);
  (void)(*quarry)->RegisterTenant("ops", ops);

  auto deploy = (*quarry)->DeployServing();
  if (!deploy.ok() || !deploy->success) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deploy.status().ToString().c_str());
    return 1;
  }

  // Background refresh churn runs through BOTH phases, so the quiesced and
  // flooded numbers carry the same mixed query/refresh traffic and the
  // phase-B delta isolates the flooder's impact.
  std::atomic<bool> refresh_done{false};
  std::atomic<int64_t> refreshes_ok{0}, refreshes_failed{0};
  std::thread refresher([&] {
    int salt = 0;
    while (!refresh_done.load(std::memory_order_acquire)) {
      storage::Table* lineitem = *src.GetTable("lineitem");
      (void)lineitem->Insert(
          {storage::Value::Int(1), storage::Value::Int(500000 + salt),
           storage::Value::Int(1), storage::Value::Int(1),
           storage::Value::Int(3), storage::Value::Double(100.0),
           storage::Value::Double(0.0), storage::Value::Double(0.0),
           storage::Value::DateYmd(1995, 6, 1),
           storage::Value::String("N")});
      ++salt;
      ExecContext ctx;
      ctx.set_tenant("ops");
      if ((*quarry)->RefreshServing(&ctx).ok()) {
        refreshes_ok.fetch_add(1);
      } else {
        refreshes_failed.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });

  auto RunPhase = [&](int duration_ms, int flooders, ClassStats* gold_out,
                      ClassStats* bronze_out) {
    std::atomic<bool> done{false};
    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;
    // Gold: closed loop with a small think time — a steady interactive
    // customer, not a CPU-saturating spin.
    workers.push_back(std::make_unique<Worker>(quarry->get(), "gold", 5));
    // Flooders: near-zero think time, each offering ~hundreds of rps
    // against a 20/s bucket.
    for (int i = 0; i < flooders; ++i) {
      workers.push_back(std::make_unique<Worker>(quarry->get(), "bronze", 2));
    }
    threads.reserve(workers.size());
    for (auto& w : workers) {
      threads.emplace_back([&done, worker = w.get()] { worker->Run(done); });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
    done.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    MergeInto(gold_out, workers[0]->TakeStats());
    for (size_t i = 1; i < workers.size(); ++i) {
      MergeInto(bronze_out, workers[i]->TakeStats());
    }
  };

  // --- Phase A: quiesced (gold + refresh churn only). ---------------------
  ClassStats gold_quiesced, bronze_unused;
  RunPhase(opts.quiesce_ms, /*flooders=*/0, &gold_quiesced, &bronze_unused);

  // --- Phase B: flooded. --------------------------------------------------
  const TenantStatus bronze_before = StatusOf(**quarry, "bronze");
  const auto flood_start = std::chrono::steady_clock::now();
  ClassStats gold_flooded, bronze_flooded;
  RunPhase(opts.flood_ms, opts.flooders, &gold_flooded, &bronze_flooded);
  const double flood_secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - flood_start)
                                .count();

  refresh_done.store(true, std::memory_order_release);
  refresher.join();

  // --- Report. ------------------------------------------------------------
  const TenantStatus bronze_after = StatusOf(**quarry, "bronze");
  const double bronze_offered_rps =
      static_cast<double>(bronze_after.requests_total -
                          bronze_before.requests_total) /
      flood_secs;
  const double offered_over_quota = bronze_offered_rps / kBronzeRatePerSec;
  const int64_t bronze_attempts = bronze_flooded.ok + bronze_flooded.shed +
                                  bronze_flooded.errors;
  const double bronze_shed_rate =
      bronze_attempts > 0 ? static_cast<double>(bronze_flooded.shed) /
                                static_cast<double>(bronze_attempts)
                          : 0.0;
  const double gold_p50_a = PercentileUs(gold_quiesced.latencies_us, 0.50);
  const double gold_p99_a = PercentileUs(gold_quiesced.latencies_us, 0.99);
  const double gold_p50_b = PercentileUs(gold_flooded.latencies_us, 0.50);
  const double gold_p99_b = PercentileUs(gold_flooded.latencies_us, 0.99);
  const double isolation_factor =
      gold_p99_a > 0 ? gold_p99_b / gold_p99_a : 0.0;

  const TenantStatus gold_status = StatusOf(**quarry, "gold");

  std::printf(
      "{\n"
      "  \"bench\": \"bench_load\",\n"
      "  \"seed\": %d,\n"
      "  \"smoke\": %s,\n"
      "  \"refreshes\": { \"published\": %lld, \"failed\": %lld },\n"
      "  \"quiesced\": { \"duration_ms\": %d, \"gold_ok\": %lld, "
      "\"gold_shed\": %lld, \"gold_p50_us\": %.0f, \"gold_p99_us\": %.0f "
      "},\n"
      "  \"flooded\": {\n"
      "    \"duration_ms\": %d, \"flooders\": %d,\n"
      "    \"gold\": { \"ok\": %lld, \"shed\": %lld, \"p50_us\": %.0f, "
      "\"p99_us\": %.0f },\n"
      "    \"bronze\": { \"ok\": %lld, \"shed\": %lld, "
      "\"shed_with_retry_hint\": %lld, \"p50_us\": %.0f, \"p99_us\": %.0f "
      "},\n"
      "    \"bronze_offered_rps\": %.1f, \"bronze_quota_rps\": %.1f, "
      "\"offered_over_quota\": %.1f,\n"
      "    \"bronze_shed_rate\": %.3f\n"
      "  },\n"
      "  \"gold_p99_isolation_factor\": %.2f,\n"
      "  \"gold_tenant_gate_sheds\": %lld\n"
      "}\n",
      opts.seed, opts.smoke ? "true" : "false",
      static_cast<long long>(refreshes_ok.load()),
      static_cast<long long>(refreshes_failed.load()), opts.quiesce_ms,
      static_cast<long long>(gold_quiesced.ok),
      static_cast<long long>(gold_quiesced.shed), gold_p50_a, gold_p99_a,
      opts.flood_ms, opts.flooders, static_cast<long long>(gold_flooded.ok),
      static_cast<long long>(gold_flooded.shed), gold_p50_b, gold_p99_b,
      static_cast<long long>(bronze_flooded.ok),
      static_cast<long long>(bronze_flooded.shed),
      static_cast<long long>(bronze_flooded.shed_with_hint),
      PercentileUs(bronze_flooded.latencies_us, 0.50),
      PercentileUs(bronze_flooded.latencies_us, 0.99), bronze_offered_rps,
      kBronzeRatePerSec, offered_over_quota, bronze_shed_rate,
      isolation_factor,
      static_cast<long long>(gold_status.shed_rate_total +
                             gold_status.shed_in_flight_total +
                             gold_status.shed_breaker_total));

  for (const auto& e : gold_quiesced.error_samples) {
    std::fprintf(stderr, "gold error: %s\n", e.c_str());
  }
  for (const auto& e : gold_flooded.error_samples) {
    std::fprintf(stderr, "gold error: %s\n", e.c_str());
  }
  for (const auto& e : bronze_flooded.error_samples) {
    std::fprintf(stderr, "bronze error: %s\n", e.c_str());
  }

  if (opts.smoke) {
    // The §11 invariants, asserted deterministically (fixed seed, fixed
    // phase plan). Latency bounds stay structural — shed-rate, hint and
    // leak checks — plus a generous isolation ceiling, so the smoke holds
    // on loaded 1-vCPU CI hosts; the tighter 2x factor is a bench-report
    // number taken on a quiet box (BENCH_serving.json).
    Check(gold_quiesced.errors + gold_flooded.errors + bronze_flooded.errors ==
              0,
          "no non-overload errors in any class");
    Check(gold_quiesced.ok > 0 && gold_flooded.ok > 0,
          "gold made progress in both phases");
    Check(offered_over_quota >= 5.0,
          "flooder offered >= 5x its rate quota");
    Check(bronze_shed_rate >= 0.5,
          "flooder shed rate >= 0.5 (quota actually bites)");
    Check(bronze_flooded.shed_with_hint == bronze_flooded.shed,
          "every flooder shed carried a retry-after hint");
    Check(gold_status.shed_rate_total + gold_status.shed_in_flight_total +
                  gold_status.shed_breaker_total ==
              0,
          "gold never shed at the tenant gate");
    Check(isolation_factor > 0 && isolation_factor <= 5.0,
          "gold p99 within 5x of quiesced under flood (smoke ceiling)");
    for (const TenantStatus& t : (*quarry)->tenants().Snapshot()) {
      Check(t.in_flight == 0, "tenant in-flight returned to zero");
      Check(t.requests_total == t.admitted_total + t.shed_rate_total +
                                    t.shed_in_flight_total +
                                    t.shed_breaker_total,
            "tenant request accounting balances");
    }
    if (failures > 0) {
      std::fprintf(stderr, "%d smoke invariant(s) failed\n", failures);
      return 1;
    }
    std::fprintf(stderr, "load smoke: all invariants held\n");
  }
  return 0;
}

}  // namespace quarry

int main(int argc, char** argv) { return quarry::Main(argc, argv); }
