# Empty compiler generated dependencies file for quarry_xml.
# This may be replaced when dependencies are built.
