#include "obs/request_log.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace quarry::obs {
namespace {

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string FormatMicros(double micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", micros);
  return buf;
}

Counter& RecordsTotal() {
  static Counter& c = MetricsRegistry::Instance().counter(
      "quarry_request_log_records_total",
      "Request-completion records appended to the event log");
  return c;
}

Counter& SlowTotal() {
  static Counter& c = MetricsRegistry::Instance().counter(
      "quarry_request_log_slow_total",
      "Event-log records that crossed the slow-request threshold and kept "
      "their full profile");
  return c;
}

}  // namespace

std::string RequestRecord::ToJson() const {
  std::string out = "{\"request_id\":" + std::to_string(id);
  out += ",\"kind\":\"";
  JsonEscape(kind, &out);
  out += "\",\"lane\":\"";
  JsonEscape(lane, &out);
  out += "\",\"tenant\":\"";
  JsonEscape(tenant, &out);
  out += "\",\"status\":\"";
  JsonEscape(status, &out);
  out += "\",\"latency_micros\":" + FormatMicros(latency_micros);
  out += ",\"admission_wait_micros\":" + FormatMicros(admission_wait_micros);
  out += ",\"rows\":" + std::to_string(rows);
  out += ",\"generation\":" + std::to_string(generation);
  out += ",\"stale\":";
  out += stale ? "true" : "false";
  out += ",\"slowest_ops\":[";
  for (size_t i = 0; i < slowest_ops.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"node\":\"";
    JsonEscape(slowest_ops[i].node, &out);
    out += "\",\"micros\":" + FormatMicros(slowest_ops[i].micros) + "}";
  }
  out += "]";
  if (!profile_json.empty()) {
    // profile_json is already a serialized JSON object — embed it raw.
    out += ",\"profile\":" + profile_json;
  }
  out += "}";
  return out;
}

RequestLog& RequestLog::Instance() {
  static RequestLog* log = new RequestLog();
  return *log;
}

RequestLog::RequestLog(size_t capacity) {
  if (capacity == 0) capacity = 1;
  slots_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
  // Touch the families so they expose zeros before the first request.
  RecordsTotal();
  SlowTotal();
}

void RequestLog::Record(RequestRecord record) {
  bool slow = record.latency_micros >= slow_threshold_micros();
  if (!slow) record.profile_json.clear();
  RecordsTotal().Increment();
  if (slow && !record.profile_json.empty()) SlowTotal().Increment();

  uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = *slots_[(seq - 1) % slots_.size()];
  std::lock_guard<std::mutex> lock(slot.mu);
  // A slower writer that reserved an older sequence for this slot must not
  // clobber a newer record that already landed here after wrap-around.
  if (slot.seq > seq) return;
  slot.seq = seq;
  slot.record = std::move(record);
}

std::vector<RequestRecord> RequestLog::Snapshot() const {
  std::vector<std::pair<uint64_t, RequestRecord>> entries;
  entries.reserve(slots_.size());
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->seq == 0) continue;
    entries.emplace_back(slot->seq, slot->record);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<RequestRecord> out;
  out.reserve(entries.size());
  for (auto& e : entries) out.push_back(std::move(e.second));
  return out;
}

std::string RequestLog::ToJsonl() const {
  std::string out;
  for (const RequestRecord& record : Snapshot()) {
    out += record.ToJson();
    out += "\n";
  }
  return out;
}

void RequestLog::ResetForTest() {
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->seq = 0;
    slot->record = RequestRecord{};
  }
  next_.store(0, std::memory_order_relaxed);
  slow_threshold_micros_.store(kDefaultSlowThresholdMicros,
                               std::memory_order_relaxed);
}

}  // namespace quarry::obs
