// Request-lifecycle experiments (docs/ROBUSTNESS.md §7,
// BENCH_lifecycle.json):
//  - cancellation-check overhead: the unified ETL flow executed with no
//    ExecContext vs with an unbounded one attached (per-node pre-checks,
//    per-kCancelBatchRows cooperative polls and budget charges on the hot
//    path) — the acceptance bound is < 2% overhead;
//  - admission-gate throughput: Admit/Release cycles through a saturated
//    AdmissionController from 1..8 threads, measuring what the FIFO
//    queue + condvar cost under contention.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/exec_context.h"
#include "core/admission.h"
#include "core/quarry.h"
#include "datagen/tpch.h"
#include "deployer/sql_generator.h"
#include "etl/exec/executor.h"
#include "ontology/tpch_ontology.h"
#include "requirements/workload.h"
#include "storage/sql.h"

namespace {

using quarry::CancellationToken;
using quarry::Deadline;
using quarry::ExecContext;
using quarry::core::AdmissionController;
using quarry::core::Quarry;

quarry::storage::Database& SharedSource() {
  static quarry::storage::Database* db = [] {
    auto* d = new quarry::storage::Database("tpch");
    if (!quarry::datagen::PopulateTpch(d, {0.01, 77}).ok()) std::abort();
    return d;
  }();
  return *db;
}

struct Scenario {
  std::unique_ptr<Quarry> quarry;
  std::unique_ptr<quarry::storage::Database> empty_warehouse;
};

Scenario& SharedScenario() {
  static Scenario* s = [] {
    auto* scenario = new Scenario();
    auto q = Quarry::Create(quarry::ontology::BuildTpchOntology(),
                            quarry::ontology::BuildTpchMappings(),
                            &SharedSource());
    if (!q.ok()) std::abort();
    scenario->quarry = std::move(*q);
    quarry::req::WorkloadConfig config;
    config.num_requirements = 4;
    config.overlap = 0.6;
    config.seed = 21;
    for (const auto& ir : quarry::req::GenerateTpchWorkload(config)) {
      if (!scenario->quarry->AddRequirement(ir).ok()) std::abort();
    }
    auto ddl = quarry::deployer::GenerateSql(scenario->quarry->schema(),
                                             scenario->quarry->mapping(),
                                             SharedSource());
    if (!ddl.ok()) std::abort();
    auto warehouse = std::make_unique<quarry::storage::Database>();
    if (!quarry::storage::ExecuteSql(warehouse.get(), *ddl).ok()) {
      std::abort();
    }
    scenario->empty_warehouse = std::move(warehouse);
    return scenario;
  }();
  return *s;
}

// Baseline: the unified ETL flow with no lifecycle attached (ctx ==
// nullptr compiles the checks down to a null test per node).
void BM_EtlNoContext(benchmark::State& state) {
  Scenario& s = SharedScenario();
  for (auto _ : state) {
    auto target = s.empty_warehouse->Clone();
    quarry::etl::Executor executor(&SharedSource(), target.get());
    auto report = executor.Run(s.quarry->flow(), {}, nullptr, nullptr);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->rows_processed);
  }
}
BENCHMARK(BM_EtlNoContext)->Unit(benchmark::kMillisecond);

// Same flow with a live (never-firing) ExecContext: every node pre-checks,
// every row loop polls the token each kCancelBatchRows rows, every node
// output is charged against the (unlimited) budgets.
void BM_EtlWithContext(benchmark::State& state) {
  Scenario& s = SharedScenario();
  for (auto _ : state) {
    ExecContext ctx(CancellationToken(), Deadline::Infinite());
    auto target = s.empty_warehouse->Clone();
    quarry::etl::Executor executor(&SharedSource(), target.get());
    auto report = executor.Run(s.quarry->flow(), {}, nullptr, &ctx);
    if (!report.ok()) std::abort();
    benchmark::DoNotOptimize(report->rows_processed);
  }
}
BENCHMARK(BM_EtlWithContext)->Unit(benchmark::kMillisecond);

// Admit/Release cycles through a gate that is exactly at capacity for the
// thread count, so every admit contends on the mutex and most pass through
// the FIFO queue. Reported as cycles/second across all threads.
void BM_AdmissionSaturated(benchmark::State& state) {
  static AdmissionController* gate = nullptr;
  if (state.thread_index() == 0) {
    quarry::core::AdmissionOptions options;
    options.max_in_flight = std::max(1, state.threads() / 2);
    options.max_queue_depth = state.threads();
    gate = new AdmissionController(options);
  }
  for (auto _ : state) {
    auto ticket = gate->Admit();
    if (!ticket.ok()) std::abort();  // Queue is deep enough to never shed.
    benchmark::DoNotOptimize(ticket->held());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.counters["in_flight_limit"] =
        static_cast<double>(gate->options().max_in_flight);
  }
}
BENCHMARK(BM_AdmissionSaturated)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
